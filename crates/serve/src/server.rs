//! The cedar-serve server: reactor fleet, admission control, dedup,
//! batching dispatcher, and graceful drain.
//!
//! # Request path
//!
//! ```text
//! TCP bytes ──reactor──▶ Conn ──parse──▶ admission ──▶ JobQueue ──▶ dispatcher
//!                         ▲                 │  │                        │
//!                         │                 │  └─ dedup map (collapse)  └─ cedar-exec pool
//!                         │                 └─ CacheDir (memoize)            │
//!                         └──── ReactorLink (rendered reply bytes) ◀────────┘
//! ```
//!
//! Connections are owned by a small fixed set of reactor threads (see
//! [`crate::reactor`]); no thread is ever created per connection.
//! Requests that cannot be answered immediately (a `run` that misses
//! the cache, a `shutdown`) register a [`Waiter`] — reactor id,
//! connection token, and enough protocol context to render the reply —
//! and the dispatcher routes rendered bytes back through the owning
//! reactor's inbox when the job completes. One connection can have any
//! number of waiters outstanding; the binary protocol's correlation
//! ids (and the line protocol's `id` field) let clients pipeline.
//!
//! Identical in-flight requests collapse onto one execution: the first
//! arrival inserts an entry in the dedup map and queues a ticket, later
//! arrivals just add their waiter. Completed outcomes are memoized in a
//! [`CacheDir`] keyed by the spec's content hash — and because
//! [`JobOutcome::to_snapshot_bytes`] *is* the cache entry, the sealed
//! envelope is built once and shared (`Arc`) between the cache write
//! and every binary `Outcome` response, which forwards it verbatim.
//!
//! # Shutdown
//!
//! Graceful drain (`shutdown` op or [`ServerHandle::shutdown`]) closes
//! the queue: admission starts rejecting `run`s with a typed
//! `draining` reason, the dispatcher finishes the backlog, every
//! waiter gets its reply, the shutdown requesters get their acks, and
//! only then do the reactors flush and exit — deterministic in the
//! sense that every admitted job completes and every connection sees a
//! final reply. [`ServerHandle::kill`] is the hard variant: the
//! in-flight sweep stops at the next point boundary via `cedar-exec`
//! cancellation and queued jobs answer `cancelled`.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use cedar_exec::{run_sweep_streaming_on, CancelToken};
use cedar_obs::export::escape_json;
use cedar_snap::{CacheDir, Snapshot};

use crate::config::ServeConfig;
use crate::conn::{Conn, ConnToken, WireRequest};
use crate::job::{JobError, JobOutcome, JobSpec};
use crate::json::{self, Json};
use crate::proto::{ErrStatus, Request, Response};
use crate::queue::{JobQueue, JobTicket, PushError};
use crate::reactor::{Reactor, ReactorLink, ReactorMsg};
use crate::telemetry::ServeObs;

/// The terminal state of one request.
#[derive(Debug, Clone)]
pub enum JobReply {
    /// The job produced an outcome (`cached` marks a memoized hit).
    Done {
        /// The measurement.
        outcome: JobOutcome,
        /// Whether it came from the disk cache rather than execution.
        cached: bool,
    },
    /// The job failed in a typed way.
    Failed(JobError),
}

/// Protocol context a waiter needs to render its reply later.
#[derive(Debug, Clone)]
pub(crate) enum ReplyCtx {
    /// Line-JSON: echo the request's `id`, observe latency from
    /// `received_us`.
    Json {
        id: Option<String>,
        received_us: u64,
    },
    /// Binary: echo the correlation id.
    Binary { corr: u64, received_us: u64 },
}

/// One registered reply obligation: which connection (on which
/// reactor) is owed an answer, and in what protocol.
#[derive(Debug)]
pub(crate) struct Waiter {
    reactor: usize,
    token: ConnToken,
    ctx: ReplyCtx,
    admitted_at: Instant,
}

/// How one admitted job resolved, shared by every waiter on its key.
pub(crate) enum Resolution {
    /// The job produced an outcome. `envelope` is the complete sealed
    /// CSNP snapshot of it — cache-entry bytes — shared so binary
    /// responses forward it without re-encoding.
    Done {
        outcome: JobOutcome,
        envelope: Arc<Vec<u8>>,
        cached: bool,
    },
    /// The job failed in a typed way.
    Failed(JobError),
}

struct InFlight {
    waiters: Vec<Waiter>,
}

struct Lifecycle {
    drained: Mutex<bool>,
    done: Condvar,
}

pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) obs: ServeObs,
    queue: JobQueue,
    dedup: Mutex<HashMap<String, InFlight>>,
    shutdown_waiters: Mutex<Vec<Waiter>>,
    draining: AtomicBool,
    kill: CancelToken,
    cache: Option<CacheDir>,
    seq: AtomicU64,
    next_token: AtomicU64,
    next_reactor: AtomicUsize,
    conns_open: AtomicU64,
    links: OnceLock<Vec<ReactorLink>>,
    lifecycle: Lifecycle,
    addr: SocketAddr,
}

impl Shared {
    pub(crate) fn link(&self, id: usize) -> &ReactorLink {
        &self.links.get().expect("links initialized before spawn")[id]
    }

    fn links(&self) -> &[ReactorLink] {
        self.links.get().expect("links initialized before spawn")
    }

    /// A fresh connection token, unique across all reactors.
    pub(crate) fn mint_token(&self) -> ConnToken {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Round-robin target reactor for a fresh connection.
    pub(crate) fn route_accept(&self) -> usize {
        self.next_reactor.fetch_add(1, Ordering::Relaxed) % self.links().len()
    }

    pub(crate) fn conn_opened(&self) {
        let n = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.obs.set_gauge("serve.conns.open", n as f64);
    }

    pub(crate) fn conn_closed(&self) {
        let n = self.conns_open.fetch_sub(1, Ordering::Relaxed) - 1;
        self.obs.set_gauge("serve.conns.open", n as f64);
    }

    fn route_reply(&self, reactor: usize, token: ConnToken, bytes: Vec<u8>, close_after: bool) {
        self.link(reactor).send(ReactorMsg::Reply {
            token,
            bytes,
            close_after,
        });
    }

    /// Renders `res` for one waiter and routes the bytes to its
    /// reactor. Response counters and the latency histogram tick here,
    /// once per *reply*, exactly as the thread-per-connection server
    /// counted them.
    fn resolve_waiter(&self, waiter: &Waiter, res: &Resolution) {
        let bytes = match &waiter.ctx {
            ReplyCtx::Json { id, received_us } => {
                render_resolution_json(id.as_deref(), res, self, *received_us).into_bytes()
            }
            ReplyCtx::Binary { corr, received_us } => {
                render_resolution_binary(*corr, res, self, *received_us)
            }
        };
        self.route_reply(waiter.reactor, waiter.token, bytes, false);
    }

    /// Resolves `key` for every registered waiter and retires it from
    /// the dedup map.
    fn complete(&self, key: &str, res: &Resolution) {
        let entry = self.dedup.lock().expect("dedup lock poisoned").remove(key);
        if let Some(inflight) = entry {
            for waiter in &inflight.waiters {
                self.resolve_waiter(waiter, res);
            }
        }
    }

    /// Tells every waiter's connection that its job entered execution,
    /// so the conn state machine can report `Executing`.
    fn notify_started(&self, key: &str) {
        let dedup = self.dedup.lock().expect("dedup lock poisoned");
        if let Some(inflight) = dedup.get(key) {
            for waiter in &inflight.waiters {
                self.link(waiter.reactor).send(ReactorMsg::Started {
                    token: waiter.token,
                });
            }
        }
    }

    /// Resolves every waiter that has been pending longer than
    /// `reply_timeout` with a typed `Stalled` — the backstop for a
    /// wedged dispatcher. The dedup entry itself stays: the ticket may
    /// still complete for waiters that arrive later.
    pub(crate) fn sweep_stalled(&self, now: Instant) {
        let timeout = self.cfg.reply_timeout;
        let mut stalled = Vec::new();
        {
            let mut dedup = self.dedup.lock().expect("dedup lock poisoned");
            for inflight in dedup.values_mut() {
                let mut i = 0;
                while i < inflight.waiters.len() {
                    if now.duration_since(inflight.waiters[i].admitted_at) >= timeout {
                        stalled.push(inflight.waiters.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if stalled.is_empty() {
            return;
        }
        let res = Resolution::Failed(JobError::Stalled(
            "reply channel timed out — dispatcher wedged?".into(),
        ));
        for waiter in &stalled {
            self.resolve_waiter(waiter, &res);
        }
    }

    /// The earliest instant [`sweep_stalled`](Shared::sweep_stalled)
    /// could have work, for sizing reactor 0's poll timeout.
    pub(crate) fn next_waiter_deadline(&self) -> Option<Instant> {
        let timeout = self.cfg.reply_timeout;
        let dedup = self.dedup.lock().expect("dedup lock poisoned");
        dedup
            .values()
            .flat_map(|inflight| &inflight.waiters)
            .map(|w| w.admitted_at + timeout)
            .min()
    }

    /// Registers a `shutdown` requester and starts the drain. Acks go
    /// out when the dispatcher reports drained — or immediately, if it
    /// already has.
    fn register_shutdown(&self, waiter: Waiter) {
        self.shutdown_waiters
            .lock()
            .expect("shutdown waiters poisoned")
            .push(waiter);
        self.begin_drain();
        if *self
            .lifecycle
            .drained
            .lock()
            .expect("lifecycle lock poisoned")
        {
            self.flush_shutdown_acks();
        }
    }

    /// Answers every pending `shutdown` requester and closes their
    /// connections after the ack flushes.
    fn flush_shutdown_acks(&self) {
        let waiters = std::mem::take(
            &mut *self
                .shutdown_waiters
                .lock()
                .expect("shutdown waiters poisoned"),
        );
        for waiter in waiters {
            let bytes = match waiter.ctx {
                ReplyCtx::Json { .. } => {
                    b"{\"status\":\"ok\",\"op\":\"shutdown\",\"drained\":true}\n".to_vec()
                }
                ReplyCtx::Binary { corr, .. } => Response::ShutdownAck {
                    corr,
                    drained: true,
                }
                .encode(),
            };
            self.route_reply(waiter.reactor, waiter.token, bytes, true);
        }
    }

    fn mark_drained(&self) {
        *self
            .lifecycle
            .drained
            .lock()
            .expect("lifecycle lock poisoned") = true;
        self.lifecycle.done.notify_all();
    }

    fn wait_drained(&self) {
        let mut drained = self
            .lifecycle
            .drained
            .lock()
            .expect("lifecycle lock poisoned");
        while !*drained {
            drained = self
                .lifecycle
                .done
                .wait(drained)
                .expect("lifecycle lock poisoned");
        }
    }

    /// Starts the graceful drain: reject new work, let the dispatcher
    /// finish the backlog.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// A running server and the handles to stop it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    reactors: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's observability surface.
    #[must_use]
    pub fn obs(&self) -> &ServeObs {
        &self.shared.obs
    }

    /// Gracefully drains and stops the server: queued jobs finish,
    /// waiters get replies, then the reactors flush and exit.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.shared.wait_drained();
        self.join_threads();
    }

    /// Blocks until the server stops on its own — i.e. until a client
    /// sends the `shutdown` op and its drain completes. This is the
    /// server binary's main loop.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Hard-stops the server: the in-flight sweep cancels at the next
    /// point boundary and queued jobs answer `cancelled`.
    pub fn kill(mut self) {
        self.shared.kill.cancel();
        self.shared.begin_drain();
        self.shared.wait_drained();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.dispatcher.take() {
            let _ = t.join();
        }
        for t in self.reactors.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.dispatcher.is_some() || !self.reactors.is_empty() {
            self.shared.kill.cancel();
            self.shared.begin_drain();
            self.shared.wait_drained();
            self.join_threads();
        }
    }
}

/// Binds, spawns the dispatcher and the reactor fleet, and returns.
///
/// # Errors
///
/// Returns the underlying I/O error if the bind, the wakeup pipes, or
/// the cache directory fails.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let cache = match &cfg.cache_dir {
        Some(dir) => Some(CacheDir::new(dir.clone())?),
        None => None,
    };
    let reactors_n = cfg.reactor_threads.max(1);
    let mut links = Vec::with_capacity(reactors_n);
    let mut wake_rxs = Vec::with_capacity(reactors_n);
    for _ in 0..reactors_n {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        links.push(ReactorLink::new(tx));
        wake_rxs.push(rx);
    }
    let shared = Arc::new(Shared {
        queue: JobQueue::new(cfg.queue_capacity),
        obs: ServeObs::new(),
        dedup: Mutex::new(HashMap::new()),
        shutdown_waiters: Mutex::new(Vec::new()),
        draining: AtomicBool::new(false),
        kill: CancelToken::new(),
        cache,
        seq: AtomicU64::new(0),
        next_token: AtomicU64::new(0),
        next_reactor: AtomicUsize::new(0),
        conns_open: AtomicU64::new(0),
        links: OnceLock::new(),
        lifecycle: Lifecycle {
            drained: Mutex::new(false),
            done: Condvar::new(),
        },
        addr,
        cfg,
    });
    let Ok(()) = shared.links.set(links) else {
        unreachable!("links set exactly once at startup")
    };

    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || dispatch_loop(&shared))?
    };
    let mut reactors = Vec::with_capacity(reactors_n);
    let mut listener = Some(listener);
    for (id, wake_rx) in wake_rxs.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        // Reactor 0 owns the listener and deals accepts to the rest.
        let listener = listener.take();
        reactors.push(
            std::thread::Builder::new()
                .name(format!("serve-reactor-{id}"))
                .spawn(move || Reactor::new(shared, id, listener, wake_rx).run())?,
        );
    }

    Ok(ServerHandle {
        shared,
        dispatcher: Some(dispatcher),
        reactors,
    })
}

/// How admission answered one `run`.
enum Admission {
    /// Answer now (spec error, draining, cache hit).
    Immediate(Resolution),
    /// A waiter is registered; the reply arrives via the reactor
    /// inbox. The caller must mark the connection `admitted`.
    Pending,
}

/// Routes one parsed request from a reactor thread. Immediate answers
/// are buffered straight onto the connection; queued work registers a
/// waiter and returns, leaving the connection free to pipeline.
pub(crate) fn handle_wire_request(
    shared: &Arc<Shared>,
    reactor_id: usize,
    conn: &mut Conn,
    request: WireRequest,
) {
    let now = Instant::now();
    match request {
        WireRequest::Http(path) => {
            // A plain HTTP scraper is welcome: one exposition per
            // connection, then close (Connection: close). Scrapes are
            // not requests in the serving sense and stay out of
            // `serve.requests.received`.
            let (status, ctype, body) = match path.as_str() {
                "/metrics" => (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    shared.obs.prometheus(),
                ),
                "/trace" => ("200 OK", "application/json", shared.obs.chrome_trace()),
                _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
            };
            let mut reply = Vec::with_capacity(body.len() + 128);
            let _ = write!(
                reply,
                "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            conn.respond(&reply, now);
            conn.mark_close_after_flush();
        }
        WireRequest::Line(line) => handle_line(shared, reactor_id, conn, &line, now),
        WireRequest::Binary(req) => handle_binary(shared, reactor_id, conn, req, now),
    }
}

fn handle_line(shared: &Arc<Shared>, reactor_id: usize, conn: &mut Conn, line: &str, now: Instant) {
    let received_us = shared.obs.now_us();
    shared.obs.inc("serve.requests.received");
    let parsed = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            shared.obs.inc("serve.responses.invalid");
            let reply = render_error(None, &JobError::Invalid(format!("bad json: {e}")));
            conn.respond(reply.as_bytes(), now);
            return;
        }
    };
    let id = parsed.get("id").and_then(Json::as_str).map(str::to_owned);
    let op = parsed.get("op").and_then(Json::as_str).unwrap_or("run");
    match op {
        "ping" => {
            let reply = format!(
                "{{\"status\":\"ok\",\"op\":\"ping\",\"draining\":{}}}\n",
                shared.draining.load(Ordering::SeqCst)
            );
            conn.respond(reply.as_bytes(), now);
        }
        "metrics" => {
            let reply = format!(
                "{{\"status\":\"ok\",\"op\":\"metrics\",\"prometheus\":\"{}\"}}\n",
                escape_json(&shared.obs.prometheus())
            );
            conn.respond(reply.as_bytes(), now);
        }
        "trace" => {
            let reply = format!(
                "{{\"status\":\"ok\",\"op\":\"trace\",\"chrome_trace\":{}}}\n",
                // The exporter pretty-prints one event per line; the
                // line protocol needs one line total. Newlines outside
                // strings are insignificant JSON whitespace
                // (escape_json encodes the ones inside), so flattening
                // is loss-free.
                shared.obs.chrome_trace().replace('\n', " ")
            );
            conn.respond(reply.as_bytes(), now);
        }
        "shutdown" => {
            conn.admitted();
            shared.register_shutdown(Waiter {
                reactor: reactor_id,
                token: conn.token(),
                ctx: ReplyCtx::Json { id, received_us },
                admitted_at: now,
            });
        }
        "run" => {
            let spec = match parsed.get("job") {
                Some(job) => JobSpec::from_json(job),
                None => Err(JobError::Invalid("job object missing".into())),
            };
            let priority = parsed
                .get("priority")
                .and_then(Json::as_u64)
                .map_or(1, |p| u8::try_from(p.min(2)).expect("clamped"));
            let deadline_ms = parsed.get("deadline_ms").and_then(Json::as_u64);
            let waiter = Waiter {
                reactor: reactor_id,
                token: conn.token(),
                ctx: ReplyCtx::Json {
                    id: id.clone(),
                    received_us,
                },
                admitted_at: now,
            };
            match admit_run(shared, spec, priority, deadline_ms, waiter) {
                Admission::Immediate(res) => {
                    let reply = render_resolution_json(id.as_deref(), &res, shared, received_us);
                    conn.respond(reply.as_bytes(), now);
                }
                Admission::Pending => conn.admitted(),
            }
        }
        other => {
            shared.obs.inc("serve.responses.invalid");
            let reply = render_error(
                id.as_deref(),
                &JobError::Invalid(format!("unknown op {other:?}")),
            );
            conn.respond(reply.as_bytes(), now);
        }
    }
}

fn handle_binary(
    shared: &Arc<Shared>,
    reactor_id: usize,
    conn: &mut Conn,
    req: Request,
    now: Instant,
) {
    let received_us = shared.obs.now_us();
    shared.obs.inc("serve.requests.received");
    match req {
        Request::Ping { corr } => {
            let frame = Response::Pong {
                corr,
                draining: shared.draining.load(Ordering::SeqCst),
            }
            .encode();
            conn.respond(&frame, now);
        }
        Request::Metrics { corr } => {
            let frame = Response::MetricsText {
                corr,
                prometheus: shared.obs.prometheus(),
            }
            .encode();
            conn.respond(&frame, now);
        }
        Request::Shutdown { corr } => {
            conn.admitted();
            shared.register_shutdown(Waiter {
                reactor: reactor_id,
                token: conn.token(),
                ctx: ReplyCtx::Binary { corr, received_us },
                admitted_at: now,
            });
        }
        Request::Run {
            corr,
            priority,
            deadline_ms,
            spec,
        } => {
            // The codec restored the shape; the bounds still need the
            // same validation the JSON path gets from `from_json`.
            let spec = spec.validate().map(|()| spec);
            let waiter = Waiter {
                reactor: reactor_id,
                token: conn.token(),
                ctx: ReplyCtx::Binary { corr, received_us },
                admitted_at: now,
            };
            match admit_run(shared, spec, priority.min(2), deadline_ms, waiter) {
                Admission::Immediate(res) => {
                    let frame = render_resolution_binary(corr, &res, shared, received_us);
                    conn.respond(&frame, now);
                }
                Admission::Pending => conn.admitted(),
            }
        }
    }
}

/// Admission control for one `run`, shared by both protocols: spec
/// errors, the draining gate, the memoization cache, the dedup map,
/// and finally the queue.
fn admit_run(
    shared: &Arc<Shared>,
    spec: Result<JobSpec, JobError>,
    priority: u8,
    deadline_ms: Option<u64>,
    waiter: Waiter,
) -> Admission {
    let spec = match spec {
        Ok(s) => s,
        Err(e) => return Admission::Immediate(Resolution::Failed(e)),
    };
    if shared.draining.load(Ordering::SeqCst) {
        return Admission::Immediate(Resolution::Failed(JobError::Rejected("draining".into())));
    }
    let key = spec.key();

    // Memoized? Serve the stored envelope without touching the queue.
    // The bytes come back checksum-verified; a decode failure (schema
    // skew from an older build) is just a miss.
    if let Some(cache) = &shared.cache {
        if let Some(bytes) = cache.load_bytes(&key) {
            if let Ok(outcome) = JobOutcome::from_snapshot_bytes(&bytes) {
                shared.obs.inc("serve.cache.hits");
                return Admission::Immediate(Resolution::Done {
                    outcome,
                    envelope: Arc::new(bytes),
                    cached: true,
                });
            }
        }
    }

    let mut owner = false;
    {
        let mut dedup = shared.dedup.lock().expect("dedup lock poisoned");
        match dedup.get_mut(&key) {
            Some(inflight) => {
                inflight.waiters.push(waiter);
                shared.obs.inc("serve.dedup.coalesced");
            }
            None => {
                dedup.insert(
                    key.clone(),
                    InFlight {
                        waiters: vec![waiter],
                    },
                );
                owner = true;
            }
        }
    }
    if owner {
        let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let ticket = JobTicket {
            seq,
            key: key.clone(),
            spec,
            priority,
            enqueued_at: Instant::now(),
            deadline,
        };
        if let Err(err) = shared.queue.push(ticket) {
            let reason = match err {
                PushError::Full => "queue full",
                PushError::Closed => "draining",
            };
            shared.obs.inc("serve.queue.rejected");
            // Resolves the waiter registered just above, through the
            // reactor inbox like any other completion.
            shared.complete(&key, &Resolution::Failed(JobError::Rejected(reason.into())));
        } else {
            shared
                .obs
                .set_gauge("serve.queue.depth", shared.queue.depth() as f64);
        }
    }
    Admission::Pending
}

fn dispatch_loop(shared: &Arc<Shared>) {
    while let Some(batch) = shared.queue.pop_batch(shared.cfg.batch_max) {
        shared
            .obs
            .set_gauge("serve.queue.depth", shared.queue.depth() as f64);
        let now = Instant::now();
        let now_us = shared.obs.now_us();
        let mut live: Vec<JobTicket> = Vec::with_capacity(batch.len());
        for ticket in batch {
            let waited_us =
                u64::try_from(ticket.enqueued_at.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.obs.observe_us("serve.queue.wait_us", waited_us);
            shared.obs.span(
                ticket.seq,
                "queue",
                now_us.saturating_sub(waited_us),
                now_us,
            );
            if ticket.deadline.is_some_and(|d| d <= now) {
                shared.obs.inc("serve.jobs.expired");
                shared.complete(&ticket.key, &Resolution::Failed(JobError::Expired));
            } else {
                live.push(ticket);
            }
        }
        if live.is_empty() {
            continue;
        }
        for ticket in &live {
            shared.notify_started(&ticket.key);
        }
        let max_net_cycles = shared.cfg.max_net_cycles;
        // Completions stream out one by one from worker threads — a
        // fast job's waiters get their bytes while a slow batchmate is
        // still executing. `finished` tracks which tickets the
        // streaming callback already resolved so a cancelled sweep
        // completes exactly the remainder: every ticket answers
        // exactly once.
        let finished: Vec<AtomicBool> = live.iter().map(|_| AtomicBool::new(false)).collect();
        let outcome = run_sweep_streaming_on(
            shared.cfg.workers,
            live.clone(),
            |ticket| {
                // The deadline may have passed while earlier batch
                // members ran; re-check at the last possible moment.
                if ticket.deadline.is_some_and(|d| d <= Instant::now()) {
                    return (Err(JobError::Expired), 0);
                }
                let begin = Instant::now();
                let result = ticket.spec.execute(max_net_cycles);
                let service_us = u64::try_from(begin.elapsed().as_micros()).unwrap_or(u64::MAX);
                (result, service_us)
            },
            &shared.kill,
            |idx, (result, service_us)| {
                finished[idx].store(true, Ordering::SeqCst);
                finish_ticket(shared, &live[idx], result, *service_us);
            },
        );
        if outcome.is_err() {
            // Cancelled mid-batch: points already streamed out above
            // stay answered; everything else answers `cancelled`.
            for (idx, ticket) in live.iter().enumerate() {
                if !finished[idx].load(Ordering::SeqCst) {
                    shared.complete(&ticket.key, &Resolution::Failed(JobError::Cancelled));
                }
            }
        }
    }
    // Queue closed and empty: resolve any stragglers (admission lost a
    // race with close) so no waiter blocks forever, then report
    // drained, ack the shutdown requesters, and release the reactors.
    let keys: Vec<String> = shared
        .dedup
        .lock()
        .expect("dedup lock poisoned")
        .keys()
        .cloned()
        .collect();
    for key in keys {
        shared.complete(&key, &Resolution::Failed(JobError::Cancelled));
    }
    shared.mark_drained();
    shared.flush_shutdown_acks();
    for link in shared.links() {
        link.send(ReactorMsg::DrainComplete);
    }
}

/// Books one completed (or failed) execution: counters, trace span,
/// cache write, waiter resolution. Runs on a worker thread, streamed
/// per completion.
fn finish_ticket(
    shared: &Arc<Shared>,
    ticket: &JobTicket,
    result: &Result<JobOutcome, JobError>,
    service_us: u64,
) {
    let end_us = shared.obs.now_us();
    let res = match result {
        Ok(outcome) => {
            shared.obs.inc("serve.jobs.executed");
            shared.obs.observe_us("serve.job.service_us", service_us);
            shared.obs.span(
                ticket.seq,
                "execute",
                end_us.saturating_sub(service_us),
                end_us,
            );
            // One seal: the same envelope bytes become the cache entry
            // and every binary response's payload.
            let envelope = Arc::new(outcome.to_snapshot_bytes());
            if let Some(cache) = &shared.cache {
                if cache.store_bytes(&ticket.key, &envelope).is_ok() {
                    shared.obs.inc("serve.cache.stores");
                }
            }
            Resolution::Done {
                outcome: *outcome,
                envelope,
                cached: false,
            }
        }
        Err(JobError::Expired) => {
            shared.obs.inc("serve.jobs.expired");
            Resolution::Failed(JobError::Expired)
        }
        Err(e) => Resolution::Failed(e.clone()),
    };
    shared.complete(&ticket.key, &res);
}

fn num(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "0".to_owned()
    }
}

fn render_resolution_json(
    id: Option<&str>,
    res: &Resolution,
    shared: &Shared,
    received_us: u64,
) -> String {
    let latency_us = shared.obs.now_us().saturating_sub(received_us);
    shared
        .obs
        .observe_us("serve.request.latency_us", latency_us);
    match res {
        Resolution::Done {
            outcome, cached, ..
        } => {
            let status = if outcome.degraded { "degraded" } else { "ok" };
            shared.obs.inc(&format!("serve.responses.{status}"));
            let id_field = id.map_or(String::new(), |i| format!("\"id\":\"{}\",", escape_json(i)));
            format!(
                "{{{id_field}\"status\":\"{status}\",\"cached\":{cached},\
                 \"latency\":{},\"interarrival\":{},\"bandwidth\":{},\
                 \"net_cycles\":{},\"words_dropped\":{},\"retries\":{},\"failed\":{}}}\n",
                num(outcome.latency),
                num(outcome.interarrival),
                num(outcome.bandwidth),
                outcome.net_cycles,
                outcome.words_dropped,
                outcome.retries,
                outcome.failed,
            )
        }
        Resolution::Failed(err) => {
            shared.obs.inc(&format!("serve.responses.{}", err.status()));
            render_error(id, err)
        }
    }
}

fn render_resolution_binary(
    corr: u64,
    res: &Resolution,
    shared: &Shared,
    received_us: u64,
) -> Vec<u8> {
    let latency_us = shared.obs.now_us().saturating_sub(received_us);
    shared
        .obs
        .observe_us("serve.request.latency_us", latency_us);
    match res {
        Resolution::Done {
            outcome,
            envelope,
            cached,
        } => {
            let status = if outcome.degraded { "degraded" } else { "ok" };
            shared.obs.inc(&format!("serve.responses.{status}"));
            Response::Outcome {
                corr,
                cached: *cached,
                envelope: envelope.as_ref().clone(),
            }
            .encode()
        }
        Resolution::Failed(err) => {
            shared.obs.inc(&format!("serve.responses.{}", err.status()));
            Response::Error {
                corr,
                status: ErrStatus::from_job_error(err),
                reason: err.reason(),
            }
            .encode()
        }
    }
}

fn render_error(id: Option<&str>, err: &JobError) -> String {
    let id_field = id.map_or(String::new(), |i| format!("\"id\":\"{}\",", escape_json(i)));
    format!(
        "{{{id_field}\"status\":\"{}\",\"reason\":\"{}\"}}\n",
        err.status(),
        escape_json(&err.reason())
    )
}
