//! Service configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Tunables for one [`crate::server::Server`] instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Admission capacity of the job queue; pushes beyond it are shed
    /// with a typed rejection.
    pub queue_capacity: usize,
    /// Worker threads the dispatcher fans each batch across (the
    /// `cedar-exec` pool width).
    pub workers: usize,
    /// Most jobs the dispatcher pulls per batch.
    pub batch_max: usize,
    /// Simulated-network cycle budget per job.
    pub max_net_cycles: u64,
    /// Directory for cross-run memoization; `None` disables the disk
    /// cache (in-flight dedup still applies).
    pub cache_dir: Option<PathBuf>,
    /// How long a connection handler waits for its job's reply before
    /// giving up (a server-bug backstop, not a job deadline).
    pub reply_timeout: Duration,
    /// Budget for finishing a request line once its first byte has
    /// arrived. A connection holding a *partial* line open longer than
    /// this (a slow-loris, a wedged client) is answered with a typed
    /// `timeout` line and closed. Connections that are merely idle —
    /// zero bytes of a next request — are never reaped.
    pub line_timeout: Duration,
    /// Kernel send timeout for reply writes. A client that stops
    /// reading while the server owes it bytes is reaped once a write
    /// blocks this long.
    pub write_timeout: Duration,
    /// Readiness-loop threads multiplexing the connections. Reactor 0
    /// also owns the listener; two threads keep accept latency flat
    /// while one core's worth of connections churns.
    pub reactor_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            queue_capacity: 64,
            workers: 4,
            batch_max: 8,
            max_net_cycles: 16_000_000,
            cache_dir: None,
            reply_timeout: Duration::from_secs(60),
            line_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            reactor_threads: 2,
        }
    }
}
