//! The readiness loop: a small fixed set of reactor threads
//! multiplexing every connection over `poll(2)`.
//!
//! Each reactor owns a private set of nonblocking sockets and their
//! [`Conn`] state machines. Reactor 0 additionally owns the (also
//! nonblocking) listener and deals new connections round-robin across
//! the fleet. Everything else in the server — the dispatcher, the
//! worker pool, admission bookkeeping on other reactors — talks to a
//! reactor through its [`ReactorLink`]: a mutex-guarded inbox plus a
//! one-byte wakeup pipe that interrupts the reactor's `poll`.
//!
//! ```text
//!            ┌────────────────────────── reactor thread ──┐
//!  listener ─┤ poll([wakeup, listener, conn fds...])      │
//!  wakeup  ──┤   ├─ drain inbox (Adopt/Started/Reply/...) │
//!            │   ├─ accept burst → round-robin Adopt      │
//!            │   ├─ read pump → Conn::on_bytes → admit    │
//!            │   ├─ write pump ← Conn outbuf              │
//!            │   └─ reap pass (loris / stuck writers)     │
//!            └────────────────────────────────────────────┘
//! ```
//!
//! Interest sets are rebuilt from connection state every iteration:
//! `POLLIN` while the connection wants more requests (dropped under
//! outbuf backpressure), `POLLOUT` only while reply bytes are owed —
//! which is what keeps an idle connection from busy-waking on a
//! permanently writable socket, and what makes the
//! `serve.reactor.wakeups` counter a meaningful bound to assert on.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::conn::{Conn, ConnProto, ConnToken, Reap};
use crate::proto::{ErrStatus, Response};
use crate::server::{handle_wire_request, Shared};
use crate::sys::{poll_fds, PollFd, POLLIN, POLLOUT};

/// Longest a stopping reactor waits for final reply bytes to flush
/// before force-closing the stragglers.
const STOP_FLUSH_GRACE: Duration = Duration::from_secs(5);

/// Work delivered to a reactor from outside its thread.
pub(crate) enum ReactorMsg {
    /// Take ownership of a freshly accepted connection.
    Adopt(TcpStream),
    /// A request this connection admitted has started executing.
    Started {
        /// The owning connection.
        token: ConnToken,
    },
    /// A rendered reply for one of this reactor's connections.
    Reply {
        /// The owning connection.
        token: ConnToken,
        /// Wire-ready bytes (a JSON line or a sealed CSRV frame).
        bytes: Vec<u8>,
        /// Close the connection once these bytes flush.
        close_after: bool,
    },
    /// The dispatcher drained: flush what's owed, then exit.
    DrainComplete,
}

/// A reactor's externally visible half: an inbox and a wakeup pipe.
pub(crate) struct ReactorLink {
    inbox: Mutex<VecDeque<ReactorMsg>>,
    wake: UnixStream,
}

impl ReactorLink {
    pub(crate) fn new(wake: UnixStream) -> Self {
        ReactorLink {
            inbox: Mutex::new(VecDeque::new()),
            wake,
        }
    }

    /// Enqueues `msg` and pokes the reactor out of `poll`. A failed
    /// (would-block) pipe write means a wakeup is already pending,
    /// which is exactly as good as delivering another.
    pub(crate) fn send(&self, msg: ReactorMsg) {
        self.inbox
            .lock()
            .expect("reactor inbox poisoned")
            .push_back(msg);
        let _ = (&self.wake).write(&[1u8]);
    }

    fn take_all(&self) -> VecDeque<ReactorMsg> {
        std::mem::take(&mut *self.inbox.lock().expect("reactor inbox poisoned"))
    }
}

struct Entry {
    stream: TcpStream,
    conn: Conn,
}

/// One readiness-loop thread. See the module docs.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    id: usize,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: HashMap<ConnToken, Entry>,
    stopping: bool,
    stop_deadline: Option<Instant>,
}

impl Reactor {
    pub(crate) fn new(
        shared: Arc<Shared>,
        id: usize,
        listener: Option<TcpListener>,
        wake_rx: UnixStream,
    ) -> Self {
        Reactor {
            shared,
            id,
            listener,
            wake_rx,
            conns: HashMap::new(),
            stopping: false,
            stop_deadline: None,
        }
    }

    pub(crate) fn run(mut self) {
        let line_timeout = self.shared.cfg.line_timeout;
        let write_timeout = self.shared.cfg.write_timeout;
        let mut fds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<ConnToken> = Vec::new();
        loop {
            // Rebuild the interest set from connection state.
            fds.clear();
            tokens.clear();
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            let listen_slot = self.listener.as_ref().map(|l| {
                fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                fds.len() - 1
            });
            let conn_base = fds.len();
            for (token, entry) in &self.conns {
                let mut events = 0i16;
                if entry.conn.wants_read() {
                    events |= POLLIN;
                }
                if entry.conn.wants_write() {
                    events |= POLLOUT;
                }
                if events == 0 {
                    continue;
                }
                fds.push(PollFd::new(entry.stream.as_raw_fd(), events));
                tokens.push(*token);
            }

            // Sleep until traffic, a message, or the earliest deadline.
            let now = Instant::now();
            let mut deadline = self.stop_deadline;
            for entry in self.conns.values() {
                if let Some(d) = entry.conn.next_deadline(line_timeout, write_timeout) {
                    deadline = Some(deadline.map_or(d, |x: Instant| x.min(d)));
                }
            }
            if self.id == 0 {
                if let Some(d) = self.shared.next_waiter_deadline() {
                    deadline = Some(deadline.map_or(d, |x: Instant| x.min(d)));
                }
            }
            let timeout = deadline.map(|d| d.saturating_duration_since(now));
            if poll_fds(&mut fds, timeout).is_err() {
                // poll(2) only fails here for resource exhaustion;
                // back off a beat rather than spin on the error.
                std::thread::sleep(Duration::from_millis(1));
            }
            self.shared.obs.inc("serve.reactor.wakeups");
            let now = Instant::now();

            // 1. Wakeup pipe + inbox. The pipe is drained fully so one
            //    byte keeps meaning "check your inbox", never a queue.
            if fds[0].ready(POLLIN) {
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }
            let touched = self.drain_inbox(now);
            for token in touched {
                self.flush_now(token, now);
            }

            // 2. Accept burst, dealt round-robin across reactors.
            if let Some(slot) = listen_slot {
                if fds[slot].ready(POLLIN) {
                    self.accept_ready();
                }
            }

            // 3. Per-connection I/O for every fd the kernel flagged.
            for (i, token) in tokens.clone().into_iter().enumerate() {
                let pfd = fds[conn_base + i];
                self.conn_ready(token, pfd.ready(POLLIN), pfd.ready(POLLOUT), now);
            }

            // 4. Reap clocks: slow-loris reads, stuck writers.
            self.reap_pass(now, line_timeout, write_timeout);

            // 5. Reactor 0 also sweeps waiters the dispatcher lost.
            if self.id == 0 {
                self.shared.sweep_stalled(now);
            }

            // 6. Drain-complete exit: close everything idle, give the
            //    rest a bounded grace to flush.
            if self.stopping {
                self.listener = None;
                let done: Vec<ConnToken> = self
                    .conns
                    .iter()
                    .filter(|(_, e)| e.conn.flushed() && e.conn.inflight() == 0)
                    .map(|(t, _)| *t)
                    .collect();
                for token in done {
                    self.close_conn(token);
                }
                let expired = self.stop_deadline.is_some_and(|d| d <= Instant::now());
                if self.conns.is_empty() || expired {
                    let leftover: Vec<ConnToken> = self.conns.keys().copied().collect();
                    for token in leftover {
                        self.close_conn(token);
                    }
                    return;
                }
            }
        }
    }

    fn drain_inbox(&mut self, now: Instant) -> Vec<ConnToken> {
        let msgs = self.shared.link(self.id).take_all();
        let mut touched = Vec::new();
        for msg in msgs {
            match msg {
                ReactorMsg::Adopt(stream) => self.adopt(stream),
                ReactorMsg::Started { token } => {
                    if let Some(entry) = self.conns.get_mut(&token) {
                        entry.conn.started();
                    }
                }
                ReactorMsg::Reply {
                    token,
                    bytes,
                    close_after,
                } => {
                    // A missing connection means the client hung up
                    // before its reply; the work is already counted.
                    if let Some(entry) = self.conns.get_mut(&token) {
                        entry.conn.resolve(&bytes, now);
                        if close_after {
                            entry.conn.mark_close_after_flush();
                        }
                        touched.push(token);
                    }
                }
                ReactorMsg::DrainComplete => {
                    self.stopping = true;
                    self.stop_deadline =
                        Some(now + self.shared.cfg.write_timeout.min(STOP_FLUSH_GRACE));
                }
            }
        }
        touched
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // One-frame requests and replies are far smaller than a
        // segment; letting Nagle batch them just adds delayed-ACK
        // stalls to every latency sample.
        let _ = stream.set_nodelay(true);
        let token = self.shared.mint_token();
        self.shared.obs.inc("serve.conns.accepted");
        self.shared.conn_opened();
        self.conns.insert(
            token,
            Entry {
                stream,
                conn: Conn::new(token),
            },
        );
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let target = self.shared.route_accept();
                    if target == self.id {
                        self.adopt(stream);
                    } else {
                        self.shared.link(target).send(ReactorMsg::Adopt(stream));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                // Aborted handshakes and transient errors: the next
                // POLLIN will retry whatever is still pending.
                Err(_) => return,
            }
        }
    }

    /// Pumps one ready connection; removes it if the peer is gone.
    fn conn_ready(&mut self, token: ConnToken, readable: bool, writable: bool, now: Instant) {
        let Some(entry) = self.conns.get_mut(&token) else {
            return;
        };
        let mut dead = false;
        if readable && entry.conn.wants_read() {
            dead = pump_read(&self.shared, self.id, entry, now);
        }
        if !dead && (writable || entry.conn.wants_write()) {
            dead = pump_write(entry, now);
        }
        if dead {
            self.close_conn(token);
        }
    }

    /// Immediate write attempt after an injected reply, so a completed
    /// job's bytes go out this iteration instead of after one more
    /// poll round-trip.
    fn flush_now(&mut self, token: ConnToken, now: Instant) {
        let Some(entry) = self.conns.get_mut(&token) else {
            return;
        };
        if pump_write(entry, now) {
            self.close_conn(token);
        }
    }

    fn reap_pass(&mut self, now: Instant, line_timeout: Duration, write_timeout: Duration) {
        let mut to_close: Vec<ConnToken> = Vec::new();
        for (token, entry) in &mut self.conns {
            match entry.conn.tick(now, line_timeout, write_timeout) {
                Some(Reap::StalledRead) => {
                    self.shared.obs.inc("serve.conn.reaped_read");
                    match entry.conn.proto() {
                        ConnProto::Line => entry.conn.respond(
                            b"{\"status\":\"timeout\",\"reason\":\"request line stalled; connection reaped\"}\n",
                            now,
                        ),
                        ConnProto::Binary => {
                            let frame = Response::Error {
                                corr: 0,
                                status: ErrStatus::Timeout,
                                reason: "request frame stalled; connection reaped".to_owned(),
                            }
                            .encode();
                            entry.conn.respond(&frame, now);
                        }
                        // A stalled HTTP header block or a conn that
                        // never sent a byte has no protocol to answer
                        // in; it just closes.
                        ConnProto::Http | ConnProto::Unknown => {}
                    }
                    entry.conn.mark_close_after_flush();
                    if pump_write(entry, now) {
                        to_close.push(*token);
                    }
                }
                Some(Reap::StalledWrite) => {
                    self.shared.obs.inc("serve.conn.reaped_write");
                    to_close.push(*token);
                }
                None => {}
            }
        }
        for token in to_close {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: ConnToken) {
        if self.conns.remove(&token).is_some() {
            self.shared.conn_closed();
        }
    }
}

/// Reads until the socket runs dry, feeding the state machine and
/// admitting every complete request. Returns true when the connection
/// must be torn down immediately (EOF or a hard I/O error).
fn pump_read(shared: &Arc<Shared>, reactor_id: usize, entry: &mut Entry, now: Instant) -> bool {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match entry.stream.read(&mut buf) {
            Ok(0) => return true,
            Ok(n) => {
                match entry.conn.on_bytes(&buf[..n], now) {
                    Ok(requests) => {
                        for request in requests {
                            handle_wire_request(shared, reactor_id, &mut entry.conn, request);
                        }
                    }
                    Err(err) => {
                        // Typed garbage: answer with a best-effort
                        // error frame and close — the stream position
                        // past a corrupt frame is unreliable.
                        shared.obs.inc("serve.proto.corrupt");
                        shared.obs.inc("serve.responses.invalid");
                        let frame = Response::Error {
                            corr: 0,
                            status: ErrStatus::Invalid,
                            reason: err.to_string(),
                        }
                        .encode();
                        entry.conn.respond(&frame, now);
                        entry.conn.mark_close_after_flush();
                        return pump_write(entry, now);
                    }
                }
                if !entry.conn.wants_read() {
                    // Backpressure or a shutdown in the pipeline:
                    // leave the rest in the kernel buffer.
                    return pump_write(entry, now);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return pump_write(entry, now),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
}

/// Writes until flushed or the socket refuses. Returns true when the
/// connection is finished (flushed a closing conn, or the peer died).
fn pump_write(entry: &mut Entry, now: Instant) -> bool {
    while entry.conn.wants_write() {
        match entry.stream.write(entry.conn.writable()) {
            Ok(0) => return true,
            Ok(n) => entry.conn.did_write(n, now),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
    entry.conn.closing() && entry.conn.flushed()
}
