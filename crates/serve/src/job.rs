//! Job specifications and their deterministic execution.
//!
//! A job is one self-contained simulation experiment — the same units
//! the bench harness sweeps (Table-2 kernel cells, degraded-mode grid
//! points, hot-spot fractions, machine-zoo hotspot cells), sized by
//! the request. Execution is a
//! pure function of the spec: same spec, same [`JobOutcome`], bit for
//! bit, which is what makes request dedup and cross-run memoization
//! sound.
//!
//! Fault semantics follow `cedar-faults`: a degraded job that loses
//! words to its injected fault plan *completes* with a typed
//! degraded-mode outcome (recovery costs included), and even a
//! watchdog-stalled simulation surfaces as a typed [`JobError`], never
//! as a dead connection or a crashed server.

use cedar_faults::{CedarError, FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
use cedar_sim::watchdog::Watchdog;
use cedar_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::json::Json;

/// Hard cap on requested CEs — the Cedar fabric's port count.
pub const MAX_CES: u32 = 32;

/// Hard cap on requested prefetch blocks, bounding per-job cost.
pub const MAX_BLOCKS: u32 = 64;

/// Watchdog budget for fault-injected jobs, in network cycles. Far
/// beyond any recoverable stall; tripping means the job's machine
/// genuinely wedged, which the server reports as a typed error.
pub const WATCHDOG_BUDGET: u64 = 4_000_000;

/// Cache/dedup namespace for job outcomes. Bump the suffix when the
/// execution recipe changes so stale entries self-invalidate.
pub const CACHE_NAMESPACE: &str = "serve.job/1";

/// The Table-2 kernels a `table2` job may name.
pub const KERNELS: [&str; 4] = ["TM", "CG", "VF", "RK"];

/// Hard cap on a `zoo` job's per-CE request count, bounding the
/// simulated machines' per-job cost.
pub const MAX_ZOO_REQUESTS: u32 = 256;

/// One request's simulation work. Rates and fractions are carried in
/// parts-per-million so specs hash and compare exactly — two requests
/// for "2% faults" always share a dedup key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// A Table-2 kernel cell: the named kernel's prefetch stream on a
    /// healthy fabric.
    Table2 {
        /// Kernel index into [`KERNELS`].
        kernel: u8,
        /// Active CEs (1..=32).
        ces: u32,
        /// Prefetch blocks per CE (job size).
        blocks: u32,
    },
    /// A degraded-mode grid point: the RK-style stream against a
    /// seeded fault plan.
    Degraded {
        /// Link-drop / sync-loss rate in parts per million.
        rate_ppm: u32,
        /// Active CEs (1..=32).
        ces: u32,
        /// Prefetch blocks per CE (job size).
        blocks: u32,
        /// Fault-schedule seed.
        seed: u64,
    },
    /// A synchronization hot-spot point: `hot_ppm` of requests hammer
    /// module 0.
    Hotspot {
        /// Hot fraction in parts per million.
        hot_ppm: u32,
        /// Active CEs (1..=32).
        ces: u32,
        /// Prefetch blocks per CE (job size).
        blocks: u32,
    },
    /// A machine-zoo hotspot point: one cell of the `cedar-zoo`
    /// cross-machine study, on any machine of the roster. Cedar and
    /// the combining Ultra run the real fabric; the analytic machines
    /// evaluate their serialization curves.
    Zoo {
        /// [`cedar_zoo::Machine`] tag.
        machine: u8,
        /// Processors to drive (1..=32).
        ces: u32,
        /// Requests each CE issues (job size, 1..=[`MAX_ZOO_REQUESTS`]).
        requests: u32,
        /// Hot fraction in parts per million.
        hot_ppm: u32,
    },
}

/// The result of one executed job — the Table-2-shaped measurement
/// plus the fault-recovery costs that make an outcome "degraded".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// Whether faults touched this run (drops, retries or failures):
    /// the typed degraded-mode marker.
    pub degraded: bool,
    /// Mean first-word latency, CE cycles.
    pub latency: f64,
    /// Mean interarrival between streamed words, CE cycles.
    pub interarrival: f64,
    /// Delivered bandwidth, words per CE cycle.
    pub bandwidth: f64,
    /// Simulated network cycles the experiment ran.
    pub net_cycles: u64,
    /// Words eaten by faulted links.
    pub words_dropped: u64,
    /// Requests reissued after a timeout.
    pub retries: u64,
    /// Requests abandoned after the retry budget.
    pub failed: u64,
}

cedar_snap::snapshot_struct!(JobOutcome {
    degraded,
    latency,
    interarrival,
    bandwidth,
    net_cycles,
    words_dropped,
    retries,
    failed,
});

/// Why a request did not produce a [`JobOutcome`]. Every variant maps
/// to a typed wire status — the server never answers a bad or unlucky
/// request with a dropped connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The request was malformed or out of bounds.
    Invalid(String),
    /// Admission control refused the job (queue full or draining).
    Rejected(String),
    /// The job's deadline passed before execution started.
    Expired,
    /// The server was shut down hard before the job ran.
    Cancelled,
    /// The simulation itself wedged (watchdog trip) — a typed error,
    /// not a 500.
    Stalled(String),
}

impl JobError {
    /// The wire `status` string of this error.
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            JobError::Invalid(_) => "invalid",
            JobError::Rejected(_) => "rejected",
            JobError::Expired => "expired",
            JobError::Cancelled => "cancelled",
            JobError::Stalled(_) => "error",
        }
    }

    /// The wire `reason` string of this error.
    #[must_use]
    pub fn reason(&self) -> String {
        match self {
            JobError::Invalid(m) | JobError::Rejected(m) | JobError::Stalled(m) => m.clone(),
            JobError::Expired => "deadline expired before execution".to_owned(),
            JobError::Cancelled => "server shut down before execution".to_owned(),
        }
    }
}

impl JobSpec {
    /// Parses the `job` object of a request line.
    ///
    /// # Errors
    ///
    /// Returns a [`JobError::Invalid`] naming the offending field.
    pub fn from_json(job: &Json) -> Result<JobSpec, JobError> {
        let ty = job
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| JobError::Invalid("job.type missing".into()))?;
        let ces = field_u32(job, "ces", 8)?;
        let blocks = field_u32(job, "blocks", 4)?;
        let spec = match ty {
            "table2" => {
                let name = job
                    .get("kernel")
                    .and_then(Json::as_str)
                    .ok_or_else(|| JobError::Invalid("job.kernel missing".into()))?;
                let kernel = KERNELS
                    .iter()
                    .position(|&k| k == name)
                    .ok_or_else(|| JobError::Invalid(format!("unknown kernel {name:?}")))?;
                JobSpec::Table2 {
                    kernel: kernel as u8,
                    ces,
                    blocks,
                }
            }
            "degraded" => JobSpec::Degraded {
                rate_ppm: field_ppm(job, "rate")?,
                ces,
                blocks,
                seed: job.get("seed").and_then(Json::as_u64).unwrap_or(0xCEDA),
            },
            "hotspot" => JobSpec::Hotspot {
                hot_ppm: field_ppm(job, "fraction")?,
                ces,
                blocks,
            },
            "zoo" => {
                let name = job
                    .get("machine")
                    .and_then(Json::as_str)
                    .ok_or_else(|| JobError::Invalid("job.machine missing".into()))?;
                let machine = cedar_zoo::Machine::from_name(name)
                    .ok_or_else(|| JobError::Invalid(format!("unknown machine {name:?}")))?;
                JobSpec::Zoo {
                    machine: machine.tag(),
                    ces,
                    requests: field_u32(job, "requests", 16)?,
                    hot_ppm: field_ppm(job, "fraction")?,
                }
            }
            other => return Err(JobError::Invalid(format!("unknown job type {other:?}"))),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the structural bounds the fabric enforces by panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`JobError::Invalid`] naming the offending field.
    pub fn validate(&self) -> Result<(), JobError> {
        let ces = match *self {
            JobSpec::Table2 { ces, .. }
            | JobSpec::Degraded { ces, .. }
            | JobSpec::Hotspot { ces, .. }
            | JobSpec::Zoo { ces, .. } => ces,
        };
        if ces == 0 || ces > MAX_CES {
            return Err(JobError::Invalid(format!(
                "job.ces must be in 1..={MAX_CES}, got {ces}"
            )));
        }
        match *self {
            JobSpec::Table2 { blocks, .. }
            | JobSpec::Degraded { blocks, .. }
            | JobSpec::Hotspot { blocks, .. } => {
                if blocks == 0 || blocks > MAX_BLOCKS {
                    return Err(JobError::Invalid(format!(
                        "job.blocks must be in 1..={MAX_BLOCKS}, got {blocks}"
                    )));
                }
            }
            JobSpec::Zoo {
                machine, requests, ..
            } => {
                if cedar_zoo::Machine::from_tag(machine).is_none() {
                    return Err(JobError::Invalid(format!("unknown machine tag {machine}")));
                }
                if requests == 0 || requests > MAX_ZOO_REQUESTS {
                    return Err(JobError::Invalid(format!(
                        "job.requests must be in 1..={MAX_ZOO_REQUESTS}, got {requests}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The job's content-addressed dedup/memoization key. Identical
    /// experiment requests — whatever their request ids, priorities or
    /// deadlines — collapse onto one key.
    #[must_use]
    pub fn key(&self) -> String {
        self.snapshot_key(CACHE_NAMESPACE)
    }

    /// A short human-readable description for logs.
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            JobSpec::Table2 {
                kernel,
                ces,
                blocks,
            } => format!(
                "table2 {} ces={ces} blocks={blocks}",
                KERNELS[kernel as usize]
            ),
            JobSpec::Degraded {
                rate_ppm,
                ces,
                blocks,
                seed,
            } => format!(
                "degraded rate={}ppm ces={ces} blocks={blocks} seed={seed:#x}",
                rate_ppm
            ),
            JobSpec::Hotspot {
                hot_ppm,
                ces,
                blocks,
            } => format!("hotspot frac={hot_ppm}ppm ces={ces} blocks={blocks}"),
            JobSpec::Zoo {
                machine,
                ces,
                requests,
                hot_ppm,
            } => format!(
                "zoo {} ces={ces} requests={requests} frac={hot_ppm}ppm",
                cedar_zoo::Machine::from_tag(machine).map_or("?", cedar_zoo::Machine::name)
            ),
        }
    }

    fn traffic(&self) -> PrefetchTraffic {
        match *self {
            JobSpec::Table2 { kernel, blocks, .. } => match KERNELS[kernel as usize] {
                "TM" => PrefetchTraffic::tridiagonal_matvec(blocks),
                "CG" => PrefetchTraffic::conjugate_gradient(blocks),
                "VF" => PrefetchTraffic::vector_load(blocks),
                "RK" => PrefetchTraffic::rk_aggressive(blocks),
                other => unreachable!("validated kernel {other}"),
            },
            JobSpec::Degraded { blocks, .. } => {
                let mut t = PrefetchTraffic::rk_aggressive(4);
                t.blocks = blocks;
                t
            }
            JobSpec::Hotspot {
                hot_ppm, blocks, ..
            } => PrefetchTraffic::sync_hotspot(blocks, f64::from(hot_ppm) / 1e6),
            JobSpec::Zoo { .. } => unreachable!("zoo jobs run the combining fabric"),
        }
    }

    /// Executes the job on a freshly built fabric. Pure: same spec and
    /// budget, same outcome, whatever thread runs it.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Stalled`] if the watchdog trips on a
    /// fault-injected run.
    pub fn execute(&self, max_net_cycles: u64) -> Result<JobOutcome, JobError> {
        if let JobSpec::Zoo {
            machine,
            ces,
            requests,
            hot_ppm,
        } = *self
        {
            let machine = cedar_zoo::Machine::from_tag(machine)
                .ok_or_else(|| JobError::Invalid(format!("unknown machine tag {machine}")))?;
            let point =
                cedar_zoo::hotspot_point(machine, ces as usize, u64::from(requests), hot_ppm);
            return Ok(JobOutcome {
                degraded: false,
                latency: point.latency_ce,
                interarrival: 0.0,
                bandwidth: point.bandwidth,
                net_cycles: point.net_cycles,
                words_dropped: 0,
                retries: 0,
                failed: 0,
            });
        }
        let ces = match *self {
            JobSpec::Table2 { ces, .. }
            | JobSpec::Degraded { ces, .. }
            | JobSpec::Hotspot { ces, .. } => ces as usize,
            JobSpec::Zoo { .. } => unreachable!("handled above"),
        };
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = match *self {
            JobSpec::Degraded { rate_ppm, seed, .. } => {
                let rate = f64::from(rate_ppm) / 1e6;
                let cfg = if rate == 0.0 {
                    FaultConfig::none(seed)
                } else {
                    FaultConfig::degraded(seed, rate)
                };
                let plan = FaultPlan::generate(&cfg, &MachineShape::cedar())
                    .map_err(|e| JobError::Invalid(e.to_string()))?;
                fabric.attach_faults(plan, RetryPolicy::fabric());
                let mut dog = Watchdog::new(WATCHDOG_BUDGET, "serve degraded job");
                match fabric.run_watched_experiment(ces, self.traffic(), max_net_cycles, &mut dog) {
                    Ok(report) => report,
                    Err(CedarError::Stalled(report)) => {
                        return Err(JobError::Stalled(format!("watchdog tripped: {report}")))
                    }
                    Err(other) => return Err(JobError::Stalled(other.to_string())),
                }
            }
            _ => fabric.run_prefetch_experiment(ces, self.traffic(), max_net_cycles),
        };
        let degraded = report.retries() > 0
            || report.failed_requests() > 0
            || report.words_dropped() > 0
            || report.module_discards() > 0
            || !report.completed();
        Ok(JobOutcome {
            degraded,
            latency: report.mean_first_word_latency_ce(),
            interarrival: report.mean_interarrival_ce(),
            bandwidth: report.words_per_ce_cycle(),
            net_cycles: report.total_net_cycles,
            words_dropped: report.words_dropped(),
            retries: report.retries(),
            failed: report.failed_requests(),
        })
    }
}

fn field_u32(job: &Json, key: &str, default: u32) -> Result<u32, JobError> {
    match job.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| JobError::Invalid(format!("job.{key} must be a small integer"))),
    }
}

fn field_ppm(job: &Json, key: &str) -> Result<u32, JobError> {
    match job.get(key) {
        None => Ok(0),
        Some(v) => {
            let f = v
                .as_f64()
                .ok_or_else(|| JobError::Invalid(format!("job.{key} must be a number")))?;
            if !(0.0..=1.0).contains(&f) {
                return Err(JobError::Invalid(format!(
                    "job.{key} must be in [0, 1], got {f}"
                )));
            }
            Ok((f * 1e6).round() as u32)
        }
    }
}

impl Snapshot for JobSpec {
    fn snap(&self, w: &mut SnapWriter) {
        match *self {
            JobSpec::Table2 {
                kernel,
                ces,
                blocks,
            } => {
                w.put_u8(0);
                w.put_u8(kernel);
                w.put_u32(ces);
                w.put_u32(blocks);
            }
            JobSpec::Degraded {
                rate_ppm,
                ces,
                blocks,
                seed,
            } => {
                w.put_u8(1);
                w.put_u32(rate_ppm);
                w.put_u32(ces);
                w.put_u32(blocks);
                w.put_u64(seed);
            }
            JobSpec::Hotspot {
                hot_ppm,
                ces,
                blocks,
            } => {
                w.put_u8(2);
                w.put_u32(hot_ppm);
                w.put_u32(ces);
                w.put_u32(blocks);
            }
            JobSpec::Zoo {
                machine,
                ces,
                requests,
                hot_ppm,
            } => {
                w.put_u8(3);
                w.put_u8(machine);
                w.put_u32(ces);
                w.put_u32(requests);
                w.put_u32(hot_ppm);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(JobSpec::Table2 {
                kernel: r.get_u8()?,
                ces: r.get_u32()?,
                blocks: r.get_u32()?,
            }),
            1 => Ok(JobSpec::Degraded {
                rate_ppm: r.get_u32()?,
                ces: r.get_u32()?,
                blocks: r.get_u32()?,
                seed: r.get_u64()?,
            }),
            2 => Ok(JobSpec::Hotspot {
                hot_ppm: r.get_u32()?,
                ces: r.get_u32()?,
                blocks: r.get_u32()?,
            }),
            3 => Ok(JobSpec::Zoo {
                machine: r.get_u8()?,
                ces: r.get_u32()?,
                requests: r.get_u32()?,
                hot_ppm: r.get_u32()?,
            }),
            _ => Err(SnapError::Invalid("unknown JobSpec tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec(line: &str) -> Result<JobSpec, JobError> {
        JobSpec::from_json(&json::parse(line).unwrap())
    }

    #[test]
    fn parses_every_job_type() {
        let t = spec(r#"{"type":"table2","kernel":"RK","ces":8,"blocks":2}"#).unwrap();
        assert_eq!(
            t,
            JobSpec::Table2 {
                kernel: 3,
                ces: 8,
                blocks: 2
            }
        );
        let d = spec(r#"{"type":"degraded","rate":0.02,"ces":8,"blocks":2,"seed":7}"#).unwrap();
        assert_eq!(
            d,
            JobSpec::Degraded {
                rate_ppm: 20_000,
                ces: 8,
                blocks: 2,
                seed: 7
            }
        );
        let h = spec(r#"{"type":"hotspot","fraction":0.05,"ces":4}"#).unwrap();
        assert_eq!(
            h,
            JobSpec::Hotspot {
                hot_ppm: 50_000,
                ces: 4,
                blocks: 4
            }
        );
        let z = spec(r#"{"type":"zoo","machine":"ultra","ces":8,"requests":32,"fraction":0.25}"#)
            .unwrap();
        assert_eq!(
            z,
            JobSpec::Zoo {
                machine: 5,
                ces: 8,
                requests: 32,
                hot_ppm: 250_000
            }
        );
    }

    #[test]
    fn rejects_out_of_bounds_typed() {
        for bad in [
            r#"{"type":"mystery"}"#,
            r#"{"type":"table2","kernel":"XX"}"#,
            r#"{"type":"table2","kernel":"RK","ces":64}"#,
            r#"{"type":"hotspot","ces":0}"#,
            r#"{"type":"hotspot","blocks":1000}"#,
            r#"{"type":"hotspot","fraction":1.5}"#,
            r#"{"type":"degraded","rate":-0.1}"#,
            r#"{"type":"zoo"}"#,
            r#"{"type":"zoo","machine":"cray2"}"#,
            r#"{"type":"zoo","machine":"ultra","ces":64}"#,
            r#"{"type":"zoo","machine":"ultra","ces":0}"#,
            r#"{"type":"zoo","machine":"cedar","requests":0}"#,
            r#"{"type":"zoo","machine":"cedar","requests":1000}"#,
            r#"{"type":"zoo","machine":"t3d","fraction":2.0}"#,
        ] {
            let err = spec(bad).expect_err(bad);
            assert!(matches!(err, JobError::Invalid(_)), "{bad}: {err:?}");
        }
    }

    #[test]
    fn identical_specs_share_a_key_distinct_ones_do_not() {
        let a = spec(r#"{"type":"hotspot","fraction":0.05,"ces":4,"blocks":2}"#).unwrap();
        let b = spec(r#"{"type":"hotspot","ces":4,"fraction":0.05,"blocks":2}"#).unwrap();
        assert_eq!(a.key(), b.key(), "field order must not matter");
        let c = spec(r#"{"type":"hotspot","fraction":0.06,"ces":4,"blocks":2}"#).unwrap();
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn zoo_specs_dedup_on_content_not_spelling() {
        let a = spec(r#"{"type":"zoo","machine":"ultra","ces":8,"requests":32,"fraction":0.25}"#)
            .unwrap();
        let b = spec(r#"{"type":"zoo","fraction":0.25,"requests":32,"ces":8,"machine":"ultra"}"#)
            .unwrap();
        assert_eq!(a.key(), b.key(), "field order must not matter");
        for different in [
            r#"{"type":"zoo","machine":"cedar","ces":8,"requests":32,"fraction":0.25}"#,
            r#"{"type":"zoo","machine":"ultra","ces":16,"requests":32,"fraction":0.25}"#,
            r#"{"type":"zoo","machine":"ultra","ces":8,"requests":64,"fraction":0.25}"#,
        ] {
            assert_ne!(a.key(), spec(different).unwrap().key(), "{different}");
        }
        // Zoo keys live in the same namespace as every other family
        // and must never collide with a structurally similar hotspot.
        let h = spec(r#"{"type":"hotspot","fraction":0.25,"ces":8,"blocks":32}"#).unwrap();
        assert_ne!(a.key(), h.key());
    }

    #[test]
    fn zoo_execution_is_deterministic_and_combining_shows_up() {
        let ultra =
            spec(r#"{"type":"zoo","machine":"ultra","ces":8,"requests":16,"fraction":0.25}"#)
                .unwrap();
        let a = ultra.execute(8_000_000).unwrap();
        let b = ultra.execute(8_000_000).unwrap();
        assert_eq!(a, b);
        assert!(!a.degraded);
        assert!(a.bandwidth > 0.0 && a.net_cycles > 0);
        let cedar =
            spec(r#"{"type":"zoo","machine":"cedar","ces":8,"requests":16,"fraction":0.25}"#)
                .unwrap()
                .execute(8_000_000)
                .unwrap();
        assert!(
            a.bandwidth > cedar.bandwidth,
            "combining must beat the plain omega on hot traffic"
        );
        // Analytic machines answer instantly with their curve value.
        let t3d = spec(r#"{"type":"zoo","machine":"t3d","ces":8,"requests":16,"fraction":0.25}"#)
            .unwrap()
            .execute(8_000_000)
            .unwrap();
        assert!(t3d.bandwidth > 0.0);
        assert_eq!(t3d.net_cycles, 0);
    }

    #[test]
    fn specs_round_trip_through_snapshots() {
        for line in [
            r#"{"type":"table2","kernel":"TM","ces":16,"blocks":8}"#,
            r#"{"type":"degraded","rate":0.05,"ces":8,"blocks":2,"seed":99}"#,
            r#"{"type":"hotspot","fraction":0.25,"ces":32,"blocks":4}"#,
            r#"{"type":"zoo","machine":"t3","ces":16,"requests":8,"fraction":0.5}"#,
        ] {
            let s = spec(line).unwrap();
            let bytes = s.to_snapshot_bytes();
            assert_eq!(JobSpec::from_snapshot_bytes(&bytes).unwrap(), s);
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let s = spec(r#"{"type":"hotspot","fraction":0.05,"ces":4,"blocks":2}"#).unwrap();
        let a = s.execute(8_000_000).unwrap();
        let b = s.execute(8_000_000).unwrap();
        assert_eq!(a, b);
        assert!(!a.degraded);
        assert!(a.latency > 0.0 && a.bandwidth > 0.0);
    }

    #[test]
    fn faulted_job_reports_typed_degradation() {
        let s = spec(r#"{"type":"degraded","rate":0.05,"ces":8,"blocks":4}"#).unwrap();
        let o = s.execute(32_000_000).unwrap();
        assert!(o.degraded, "5% drops must mark the outcome degraded");
        assert!(o.words_dropped > 0 && o.retries > 0);
        let healthy = spec(r#"{"type":"degraded","rate":0.0,"ces":8,"blocks":4}"#)
            .unwrap()
            .execute(32_000_000)
            .unwrap();
        assert!(!healthy.degraded, "rate 0 is the healthy baseline");
    }
}
