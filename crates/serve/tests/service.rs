//! End-to-end integration tests: a real server on an ephemeral port,
//! real TCP clients, and assertions against the server's own counters.

use std::time::Duration;

use cedar_serve::config::ServeConfig;
use cedar_serve::loadgen::Client;
use cedar_serve::server::{start, ServerHandle};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cedar-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_on_any_port(mut cfg: ServeConfig) -> (ServerHandle, String) {
    cfg.addr = "127.0.0.1:0".to_owned();
    let handle = start(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn status(reply: &cedar_serve::json::Json) -> String {
    reply
        .get("status")
        .and_then(cedar_serve::json::Json::as_str)
        .unwrap_or("?")
        .to_owned()
}

#[test]
fn burst_of_identical_requests_executes_exactly_once() {
    let cache = scratch("dedup");
    let (handle, addr) = start_on_any_port(ServeConfig {
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    });
    const BURST: usize = 12;
    let line = r#"{"op":"run","job":{"type":"table2","kernel":"RK","ces":4,"blocks":2}}"#;
    let statuses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    status(&c.request(line).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(statuses.iter().all(|s| s == "ok"), "{statuses:?}");
    let obs = handle.obs();
    assert_eq!(
        obs.counter_value("serve.jobs.executed"),
        1,
        "identical burst must collapse to one execution \
         (coalesced={}, cache hits={})",
        obs.counter_value("serve.dedup.coalesced"),
        obs.counter_value("serve.cache.hits"),
    );
    assert_eq!(
        obs.counter_value("serve.dedup.coalesced") + obs.counter_value("serve.cache.hits"),
        (BURST - 1) as u64,
        "every other request was coalesced or served from cache"
    );

    // A second burst after completion is pure disk cache.
    let mut c = Client::connect(&addr).unwrap();
    for _ in 0..3 {
        assert_eq!(status(&c.request(line).unwrap()), "ok");
    }
    assert_eq!(obs.counter_value("serve.jobs.executed"), 1);
    assert!(obs.counter_value("serve.cache.hits") >= 3);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn fault_injected_jobs_degrade_without_harming_healthy_ones() {
    let (handle, addr) = start_on_any_port(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    for i in 0..10 {
        let (line, faulty) = if i % 5 == 0 {
            (
                format!(
                    "{{\"op\":\"run\",\"job\":{{\"type\":\"degraded\",\"rate\":0.05,\
                     \"ces\":4,\"blocks\":1,\"seed\":{i}}}}}"
                ),
                true,
            )
        } else {
            (
                format!(
                    "{{\"op\":\"run\",\"job\":{{\"type\":\"hotspot\",\
                     \"fraction\":0.00{i},\"ces\":2,\"blocks\":1}}}}"
                ),
                false,
            )
        };
        let s = status(&c.request(&line).unwrap());
        if faulty {
            assert!(
                s == "degraded" || s == "ok",
                "typed reply expected, got {s}"
            );
        } else {
            assert_eq!(s, "ok", "healthy request must not be harmed by the mix");
        }
    }
    assert_eq!(handle.obs().counter_value("serve.responses.invalid"), 0);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_admitted_job() {
    // One worker and batch size one: submitted jobs genuinely queue,
    // and the drain has real backlog to finish.
    let (handle, addr) = start_on_any_port(ServeConfig {
        workers: 1,
        batch_max: 1,
        ..ServeConfig::default()
    });
    const JOBS: usize = 6;
    let workers: Vec<_> = (0..JOBS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let line = format!(
                    "{{\"op\":\"run\",\"job\":{{\"type\":\"hotspot\",\
                     \"fraction\":0.0{i}1,\"ces\":4,\"blocks\":2}}}}"
                );
                status(&c.request(&line).unwrap())
            })
        })
        .collect();
    // Let the jobs reach the queue, then drain.
    std::thread::sleep(Duration::from_millis(150));
    let mut control = Client::connect(&addr).unwrap();
    let reply = control.request(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(
        reply
            .get("drained")
            .and_then(cedar_serve::json::Json::as_bool),
        Some(true)
    );
    for w in workers {
        let s = w.join().unwrap();
        assert!(
            s == "ok" || s == "rejected" || s == "cancelled",
            "every job admitted before the drain must resolve typed, got {s:?}"
        );
    }
    handle.join();
}

#[test]
fn deadline_zero_expires_before_execution() {
    let (handle, addr) = start_on_any_port(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    let reply = c
        .request(
            r#"{"op":"run","deadline_ms":0,"job":{"type":"table2","kernel":"VF","ces":2,"blocks":1}}"#,
        )
        .unwrap();
    assert_eq!(status(&reply), "expired");
    assert_eq!(handle.obs().counter_value("serve.jobs.expired"), 1);
    assert_eq!(handle.obs().counter_value("serve.jobs.executed"), 0);
    handle.shutdown();
}

#[test]
fn zero_capacity_queue_rejects_with_backpressure() {
    let (handle, addr) = start_on_any_port(ServeConfig {
        queue_capacity: 0,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(&addr).unwrap();
    let reply = c
        .request(r#"{"op":"run","job":{"type":"table2","kernel":"TM","ces":2,"blocks":1}}"#)
        .unwrap();
    assert_eq!(status(&reply), "rejected");
    assert_eq!(handle.obs().counter_value("serve.queue.rejected"), 1);
    handle.shutdown();
}

#[test]
fn malformed_lines_get_typed_replies_and_the_connection_survives() {
    let (handle, addr) = start_on_any_port(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    for bad in [
        "this is not json",
        r#"{"op":"transmogrify"}"#,
        r#"{"op":"run"}"#,
        r#"{"op":"run","job":{"type":"table2","kernel":"ZZ"}}"#,
        r#"{"op":"run","job":{"type":"table2","kernel":"RK","ces":999}}"#,
    ] {
        let s = status(&c.request(bad).unwrap());
        assert_eq!(s, "invalid", "{bad:?}");
    }
    // The connection still works after five protocol errors.
    let ping = c.request(r#"{"op":"ping"}"#).unwrap();
    assert_eq!(status(&ping), "ok");
    // All five bad lines count: two at the protocol layer (bad json,
    // unknown op) and three typed `invalid` run replies.
    assert_eq!(handle.obs().counter_value("serve.responses.invalid"), 5);
    handle.shutdown();
}

#[test]
fn http_get_serves_a_prometheus_exposition() {
    use std::io::{Read, Write};
    let (handle, addr) = start_on_any_port(ServeConfig::default());
    // Generate one request so counters are non-trivial.
    let mut c = Client::connect(&addr).unwrap();
    let _ = c.request(r#"{"op":"run","job":{"type":"table2","kernel":"CG","ces":2,"blocks":1}}"#);
    let mut http = std::net::TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("header/body split");
    let parsed = cedar_obs::export::parse_prometheus(body).unwrap();
    let received = cedar_obs::export::sanitize_name("serve.requests.received");
    assert!(parsed.get(&received).copied().unwrap_or(0.0) >= 1.0);
    handle.shutdown();
}

#[test]
fn trace_export_is_valid_chrome_json() {
    let (handle, addr) = start_on_any_port(ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    let _ = c.request(r#"{"op":"run","job":{"type":"table2","kernel":"TM","ces":2,"blocks":1}}"#);
    let reply = c.request(r#"{"op":"trace"}"#).unwrap();
    assert_eq!(status(&reply), "ok");
    assert!(
        reply.get("chrome_trace").is_some(),
        "trace op must embed the export"
    );
    handle.shutdown();
}

#[test]
fn slow_loris_partial_line_is_reaped_with_a_typed_timeout() {
    use std::io::{Read, Write};
    let (handle, addr) = start_on_any_port(ServeConfig {
        line_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut loris = std::net::TcpStream::connect(&addr).unwrap();
    // Half a request line, then a slow drip that never reaches the
    // newline: progress bytes must not reset the per-line budget.
    loris.write_all(b"{\"op\":\"run\",\"job\":{").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let _ = loris.write_all(b"\"ty");
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut text = String::new();
    loris.read_to_string(&mut text).unwrap();
    assert!(
        text.contains("\"timeout\""),
        "reaped connection must get a typed timeout line, got {text:?}"
    );
    assert_eq!(handle.obs().counter_value("serve.conn.reaped_read"), 1);
    handle.shutdown();
}

#[test]
fn idle_connections_outlive_the_line_timeout() {
    let (handle, addr) = start_on_any_port(ServeConfig {
        line_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(status(&c.request(r#"{"op":"ping"}"#).unwrap()), "ok");
    // Many line-timeouts of silence between requests: idleness is not
    // a stalled line and must never be reaped.
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(status(&c.request(r#"{"op":"ping"}"#).unwrap()), "ok");
    assert_eq!(handle.obs().counter_value("serve.conn.reaped_read"), 0);
    handle.shutdown();
}

#[test]
fn half_line_disconnect_is_a_clean_close_not_a_wedge() {
    use std::io::Write;
    let (handle, addr) = start_on_any_port(ServeConfig {
        line_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    for _ in 0..4 {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        let _ = s.write_all(b"{\"op\":\"ping\"");
        drop(s);
    }
    // The server keeps serving honest clients throughout.
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(status(&c.request(r#"{"op":"ping"}"#).unwrap()), "ok");
    handle.shutdown();
}

#[test]
fn client_that_stops_reading_is_reaped_by_the_write_timeout() {
    use std::io::Write;
    let (handle, addr) = start_on_any_port(ServeConfig {
        write_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    // Pump metrics requests without ever reading a reply: the kernel
    // buffers fill, the server's reply write blocks past the timeout,
    // and the connection is reaped instead of wedging its handler.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.set_write_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while handle.obs().counter_value("serve.conn.reaped_write") == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "server never reaped the non-reading client"
        );
        if s.write_all(b"{\"op\":\"metrics\"}\n").is_err() {
            // Connection already torn down server-side; wait for the
            // counter to reflect it.
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    handle.shutdown();
}

#[test]
fn kill_stops_the_server_with_typed_cancellations() {
    let (handle, addr) = start_on_any_port(ServeConfig {
        workers: 1,
        batch_max: 1,
        ..ServeConfig::default()
    });
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let line = format!(
                    "{{\"op\":\"run\",\"job\":{{\"type\":\"hotspot\",\
                     \"fraction\":0.0{i}7,\"ces\":4,\"blocks\":2}}}}"
                );
                c.request(&line).map(|r| status(&r))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    handle.kill();
    for client in clients {
        // A connection torn down by process exit (Err) is acceptable
        // for requests that never reached admission.
        if let Ok(s) = client.join().unwrap() {
            assert!(
                s == "ok" || s == "cancelled" || s == "rejected",
                "kill must resolve jobs typed, got {s:?}"
            );
        }
    }
}
