//! The binary-protocol test battery.
//!
//! Three layers, cheapest first:
//!
//! 1. **In-process frame fuzzing** — no sockets, fully deterministic:
//!    every frame type round-trips across payload sizes up to the
//!    64 KiB request cap; every one-byte corruption of a valid frame
//!    is rejected with a typed error; every truncation leaves the
//!    incremental scanner waiting, never wedged or panicking.
//! 2. **Partial-I/O regressions** — a live server fed one byte at a
//!    time, and a client reading one byte at a time, with the
//!    `serve.reactor.wakeups` counter asserting the readiness loop
//!    does a bounded amount of work per frame (a busy-poll regression
//!    turns this number unbounded).
//! 3. **A mixed-protocol soak** — line-JSON and binary clients on the
//!    same listener while adversarial connections die mid-frame, send
//!    garbage, or stall into the reap path; every healthy request gets
//!    a terminal reply and every unique job executes exactly once.
//!
//! Everything here must pass unchanged under `CEDAR_THREADS=1` and
//! `CEDAR_THREADS=4`; the server's pool width is pinned by config, so
//! the only nondeterminism is scheduling, which the assertions are
//! insensitive to.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cedar_serve::config::ServeConfig;
use cedar_serve::job::{JobOutcome, JobSpec};
use cedar_serve::loadgen::{BinClient, Client};
use cedar_serve::proto::{
    decode_frame, ErrStatus, FrameScanner, ProtoError, Request, Response, MAX_REQUEST_PAYLOAD,
    MAX_RESPONSE_PAYLOAD,
};
use cedar_serve::server::{start, ServerHandle};
use cedar_snap::Snapshot;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cedar-proto-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_on_any_port(mut cfg: ServeConfig) -> (ServerHandle, String) {
    cfg.addr = "127.0.0.1:0".to_owned();
    let handle = start(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn hotspot(ppm: u32) -> JobSpec {
    JobSpec::Hotspot {
        hot_ppm: ppm,
        ces: 1,
        blocks: 1,
    }
}

/// A spread of payload sizes from empty through the request cap,
/// including off-by-one sizes around powers of two.
const SIZES: [usize; 12] = [0, 1, 2, 3, 7, 13, 64, 255, 1024, 4095, 16 * 1024, 64 * 1024];

fn filler(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(31) ^ (i >> 8)) as u8)
        .collect()
}

#[test]
fn every_frame_type_round_trips_across_payload_sizes() {
    // Requests: every variant, corner-case correlation ids.
    let requests = [
        Request::Ping { corr: 0 },
        Request::Metrics { corr: u64::MAX },
        Request::Shutdown { corr: 1 },
        Request::Run {
            corr: 0xDEAD_BEEF,
            priority: 2,
            deadline_ms: Some(0),
            spec: hotspot(999_999),
        },
        Request::Run {
            corr: 9,
            priority: 0,
            deadline_ms: None,
            spec: JobSpec::Degraded {
                rate_ppm: 1,
                ces: 8,
                blocks: 4,
                seed: u64::MAX,
            },
        },
    ];
    for req in requests {
        let frame = req.encode();
        let payload = decode_frame(&frame, MAX_REQUEST_PAYLOAD).unwrap();
        assert_eq!(Request::decode(payload).unwrap(), req);
    }
    // Responses: every variant, with the variable-length ones swept
    // across the size spread (the Outcome envelope and the Prometheus
    // text are the two payloads that actually grow in production).
    for n in SIZES {
        let resps = [
            Response::Pong {
                corr: n as u64,
                draining: n % 2 == 0,
            },
            Response::Outcome {
                corr: 1,
                cached: true,
                envelope: filler(n),
            },
            Response::Error {
                corr: 2,
                status: ErrStatus::Timeout,
                reason: "x".repeat(n.min(4096)),
            },
            Response::MetricsText {
                corr: 3,
                prometheus: "m".repeat(n),
            },
            Response::ShutdownAck {
                corr: 4,
                drained: true,
            },
        ];
        for resp in resps {
            let frame = resp.encode();
            let payload = decode_frame(&frame, MAX_RESPONSE_PAYLOAD).unwrap();
            assert_eq!(Response::decode(payload).unwrap(), resp, "size {n}");
        }
    }
}

#[test]
fn every_one_byte_corruption_is_rejected_typed() {
    let frames: Vec<(Vec<u8>, u64)> = vec![
        (Request::Ping { corr: 7 }.encode(), MAX_REQUEST_PAYLOAD),
        (
            Request::Run {
                corr: 42,
                priority: 1,
                deadline_ms: Some(250),
                spec: hotspot(123_456),
            }
            .encode(),
            MAX_REQUEST_PAYLOAD,
        ),
        (
            Response::Outcome {
                corr: 8,
                cached: false,
                envelope: filler(64),
            }
            .encode(),
            MAX_RESPONSE_PAYLOAD,
        ),
    ];
    for (frame, cap) in &frames {
        let good_payload = decode_frame(frame, *cap).unwrap().to_vec();
        for pos in 0..frame.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = frame.clone();
                bad[pos] ^= flip;
                // The complete-buffer decoder must reject every
                // corruption with a typed error — magic, version and
                // length flips at the header, checksum mismatches
                // everywhere else. Never a panic, never an Ok.
                let err = decode_frame(&bad, *cap)
                    .err()
                    .unwrap_or_else(|| panic!("corruption at byte {pos} (^{flip:#x}) accepted"));
                assert!(
                    matches!(err, ProtoError::Corrupt(_) | ProtoError::Oversize { .. }),
                    "byte {pos} ^{flip:#x}: {err}"
                );
                // The incremental scanner gets the same bytes. It may
                // legitimately *wait* (a corrupt length field can
                // declare a longer, still-under-cap frame) but must
                // never panic, spin, or yield the original payload.
                let mut s = FrameScanner::new(*cap);
                s.extend(&bad);
                for _ in 0..4 {
                    match s.next_frame() {
                        Ok(Some(p)) => assert_ne!(p, good_payload, "byte {pos} ^{flip:#x}"),
                        Ok(None) => {
                            assert!(s.mid_frame(), "byte {pos} ^{flip:#x}");
                            break;
                        }
                        Err(_) => break,
                    }
                }
            }
        }
    }
}

#[test]
fn every_truncation_waits_and_every_prefix_is_garbage_free() {
    let frame = Request::Run {
        corr: 3,
        priority: 0,
        deadline_ms: None,
        spec: hotspot(777),
    }
    .encode();
    for cut in 0..frame.len() {
        // A truncated buffer is not a frame.
        assert!(
            decode_frame(&frame[..cut], MAX_REQUEST_PAYLOAD).is_err(),
            "cut {cut}"
        );
        // The scanner waits for the rest rather than erroring: every
        // strict prefix of a valid frame is a valid partial frame.
        let mut s = FrameScanner::new(MAX_REQUEST_PAYLOAD);
        s.extend(&frame[..cut]);
        assert_eq!(s.next_frame().unwrap(), None, "cut {cut}");
        assert_eq!(s.mid_frame(), cut > 0);
        // Completing the frame yields exactly the payload.
        s.extend(&frame[cut..]);
        let payload = s.next_frame().unwrap().expect("completed frame");
        assert_eq!(Request::decode(&payload).unwrap().corr(), 3);
        assert_eq!(s.buffered(), 0);
    }
}

#[test]
fn one_byte_writes_reach_the_dispatcher_with_bounded_wakeups() {
    let cache = scratch("drip");
    let (handle, addr) = start_on_any_port(ServeConfig {
        cache_dir: Some(cache.clone()),
        workers: 2,
        ..ServeConfig::default()
    });
    let obs = handle.obs();
    let frame = Request::Run {
        corr: 11,
        priority: 1,
        deadline_ms: None,
        spec: hotspot(101_010),
    }
    .encode();
    let before = obs.counter_value("serve.reactor.wakeups");
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    // Drip the frame one byte at a time, each its own segment: the
    // worst-case read fragmentation the reactor can see.
    for b in &frame {
        stream.write_all(std::slice::from_ref(b)).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut scanner = FrameScanner::new(MAX_RESPONSE_PAYLOAD);
    let mut byte = [0u8; 1];
    let reply = loop {
        if let Some(p) = scanner.next_frame().unwrap() {
            break Response::decode(&p).unwrap();
        }
        assert_ne!(stream.read(&mut byte).unwrap(), 0, "server closed early");
        scanner.extend(&byte);
    };
    match reply {
        Response::Outcome {
            corr,
            cached,
            envelope,
        } => {
            assert_eq!(corr, 11);
            assert!(!cached);
            JobOutcome::from_snapshot_bytes(&envelope).expect("sealed outcome envelope");
        }
        other => panic!("expected Outcome, got {other:?}"),
    }
    // The readiness loop should wake roughly once per delivered byte
    // plus a constant for accept/dispatch traffic. A busy-poll
    // regression (level-triggered POLLOUT registered while nothing is
    // owed, a zero poll timeout) blows this bound by orders of
    // magnitude.
    let wakeups = obs.counter_value("serve.reactor.wakeups") - before;
    assert!(wakeups >= 3, "counter not wired: {wakeups}");
    assert!(
        wakeups <= (frame.len() as u64) * 3 + 96,
        "unbounded wakeups: {wakeups} for a {}-byte frame",
        frame.len()
    );
    drop(stream);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn one_byte_reads_drain_a_large_metrics_frame() {
    let (handle, addr) = start_on_any_port(ServeConfig::default());
    let mut client = BinClient::connect(&addr).unwrap();
    // Prime a request so the exposition is non-trivial.
    match client.request(&Request::Ping { corr: 1 }).unwrap() {
        Response::Pong { corr, draining } => {
            assert_eq!(corr, 1);
            assert!(!draining);
        }
        other => panic!("expected Pong, got {other:?}"),
    }
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(&Request::Metrics { corr: 2 }.encode())
        .unwrap();
    let mut scanner = FrameScanner::new(MAX_RESPONSE_PAYLOAD);
    let mut byte = [0u8; 1];
    let reply = loop {
        if let Some(p) = scanner.next_frame().unwrap() {
            break Response::decode(&p).unwrap();
        }
        assert_ne!(stream.read(&mut byte).unwrap(), 0, "server closed early");
        scanner.extend(&byte);
    };
    match reply {
        Response::MetricsText { corr, prometheus } => {
            assert_eq!(corr, 2);
            assert!(
                prometheus.contains("serve_requests_received"),
                "exposition missing serve counters"
            );
            assert!(prometheus.len() > 512, "suspiciously small exposition");
        }
        other => panic!("expected MetricsText, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn pipelined_requests_on_one_connection_all_complete() {
    let cache = scratch("pipeline");
    let (handle, addr) = start_on_any_port(ServeConfig {
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    });
    const DEPTH: u64 = 8;
    let mut stream = TcpStream::connect(&addr).unwrap();
    // Write all eight Run frames back-to-back before reading anything:
    // the correlation ids are what let the replies come back in
    // completion order rather than submission order.
    let mut batch = Vec::new();
    for corr in 0..DEPTH {
        batch.extend_from_slice(
            &Request::Run {
                corr,
                priority: (corr % 3) as u8,
                deadline_ms: None,
                spec: hotspot(500_000 + corr as u32),
            }
            .encode(),
        );
    }
    stream.write_all(&batch).unwrap();
    let mut scanner = FrameScanner::new(MAX_RESPONSE_PAYLOAD);
    let mut seen = std::collections::BTreeSet::new();
    let mut buf = [0u8; 4096];
    while seen.len() < DEPTH as usize {
        while let Some(p) = scanner.next_frame().unwrap() {
            match Response::decode(&p).unwrap() {
                Response::Outcome { corr, envelope, .. } => {
                    JobOutcome::from_snapshot_bytes(&envelope).expect("sealed outcome");
                    assert!(seen.insert(corr), "duplicate reply for corr {corr}");
                }
                other => panic!("expected Outcome, got {other:?}"),
            }
        }
        if seen.len() == DEPTH as usize {
            break;
        }
        let n = stream.read(&mut buf).unwrap();
        assert_ne!(n, 0, "server closed with {} replies outstanding", DEPTH);
        scanner.extend(&buf[..n]);
    }
    assert_eq!(seen, (0..DEPTH).collect());
    assert_eq!(handle.obs().counter_value("serve.jobs.executed"), DEPTH);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

/// Waits until `counter` reaches `want` or the deadline passes.
fn await_counter(handle: &ServerHandle, counter: &str, want: u64, patience: Duration) -> u64 {
    let deadline = Instant::now() + patience;
    loop {
        let have = handle.obs().counter_value(counter);
        if have >= want || Instant::now() >= deadline {
            return have;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn mixed_protocol_soak_drops_nothing_and_executes_exactly_once() {
    let cache = scratch("soak");
    let (handle, addr) = start_on_any_port(ServeConfig {
        cache_dir: Some(cache.clone()),
        queue_capacity: 256,
        workers: 4,
        line_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    });

    const JSON_WORKERS: usize = 4;
    const BIN_WORKERS: usize = 4;
    const PER_WORKER: usize = 6;
    // One spec requested by every protocol at once: the exactly-once
    // witness. ppm 333_333 == fraction 0.333333 on the JSON side.
    const SHARED_PPM: u32 = 333_333;

    let (healthy_failures, lorises): (Vec<String>, Vec<TcpStream>) = std::thread::scope(|scope| {
        let mut tasks = Vec::new();
        // Line-JSON workers: unique fractions 1001..=1024 ppm.
        for w in 0..JSON_WORKERS {
            let addr = addr.clone();
            tasks.push(scope.spawn(move || {
                let mut failures = Vec::new();
                let mut c = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => return vec![format!("json {w}: connect: {e}")],
                };
                for i in 0..PER_WORKER {
                    let ppm = 1001 + (w * PER_WORKER + i) as u32;
                    let line = format!(
                        r#"{{"op":"run","job":{{"type":"hotspot","fraction":{},"ces":1,"blocks":1}}}}"#,
                        ppm as f64 / 1e6
                    );
                    match c.request(&line) {
                        Ok(reply) => {
                            let status = reply
                                .get("status")
                                .and_then(cedar_serve::json::Json::as_str)
                                .unwrap_or("?")
                                .to_owned();
                            if status != "ok" {
                                failures.push(format!("json {w}.{i}: status {status}"));
                            }
                        }
                        Err(e) => failures.push(format!("json {w}.{i}: {e}")),
                    }
                }
                // The shared spec, through the line protocol.
                let shared = format!(
                    r#"{{"op":"run","job":{{"type":"hotspot","fraction":{},"ces":1,"blocks":1}}}}"#,
                    f64::from(SHARED_PPM) / 1e6
                );
                match c.request(&shared) {
                    Ok(reply)
                        if reply
                            .get("status")
                            .and_then(cedar_serve::json::Json::as_str)
                            == Some("ok") => {}
                    Ok(reply) => failures.push(format!("json {w} shared: {reply:?}")),
                    Err(e) => failures.push(format!("json {w} shared: {e}")),
                }
                failures
            }));
        }
        // Binary workers: unique ppm 2001..=2024, disjoint from JSON.
        for w in 0..BIN_WORKERS {
            let addr = addr.clone();
            tasks.push(scope.spawn(move || {
                let mut failures = Vec::new();
                let mut c = match BinClient::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => return vec![format!("bin {w}: connect: {e}")],
                };
                for i in 0..PER_WORKER {
                    let ppm = 2001 + (w * PER_WORKER + i) as u32;
                    let corr = (w * PER_WORKER + i) as u64;
                    match c.request(&Request::Run {
                        corr,
                        priority: 1,
                        deadline_ms: None,
                        spec: hotspot(ppm),
                    }) {
                        Ok(Response::Outcome {
                            corr: echoed,
                            envelope,
                            ..
                        }) => {
                            if echoed != corr {
                                failures.push(format!("bin {w}.{i}: corr {echoed} != {corr}"));
                            }
                            if JobOutcome::from_snapshot_bytes(&envelope).is_err() {
                                failures.push(format!("bin {w}.{i}: bad envelope"));
                            }
                        }
                        Ok(other) => failures.push(format!("bin {w}.{i}: {other:?}")),
                        Err(e) => failures.push(format!("bin {w}.{i}: {e}")),
                    }
                }
                match c.request(&Request::Run {
                    corr: 9_000 + w as u64,
                    priority: 0,
                    deadline_ms: None,
                    spec: hotspot(SHARED_PPM),
                }) {
                    Ok(Response::Outcome { .. }) => {}
                    Ok(other) => failures.push(format!("bin {w} shared: {other:?}")),
                    Err(e) => failures.push(format!("bin {w} shared: {e}")),
                }
                failures
            }));
        }
        // Adversaries, concurrent with the healthy load.
        let adversary = {
            let addr = addr.clone();
            scope.spawn(move || {
                // Three binary slow-lorises: a partial frame, held
                // open. Reaped by the line_timeout clock.
                let lorises: Vec<TcpStream> = (0..3)
                    .map(|_| {
                        let mut s = TcpStream::connect(&addr).unwrap();
                        s.write_all(b"CSRV").unwrap();
                        s
                    })
                    .collect();
                // Two connections that die mid-frame: a kill, not a
                // drop of anything healthy.
                for _ in 0..2 {
                    let mut s = TcpStream::connect(&addr).unwrap();
                    let frame = Request::Ping { corr: 1 }.encode();
                    s.write_all(&frame[..frame.len() / 2]).unwrap();
                    drop(s);
                }
                // Two half-line JSON clients that die, and one line of
                // garbage that gets a typed invalid reply.
                for _ in 0..2 {
                    let mut s = TcpStream::connect(&addr).unwrap();
                    s.write_all(b"{\"op\":\"ru").unwrap();
                    drop(s);
                }
                {
                    let mut s = TcpStream::connect(&addr).unwrap();
                    s.write_all(b"this is not json\n").unwrap();
                    let mut reply = String::new();
                    let mut r = std::io::BufReader::new(&mut s);
                    std::io::BufRead::read_line(&mut r, &mut reply).unwrap();
                    assert!(reply.contains("\"invalid\""), "{reply}");
                }
                // Two binary corruptions: version skew after a valid
                // magic — a typed corrupt error frame, then close.
                for _ in 0..2 {
                    let mut s = TcpStream::connect(&addr).unwrap();
                    s.write_all(b"CSRV\xFFgarbage").unwrap();
                    let mut scanner = FrameScanner::new(MAX_RESPONSE_PAYLOAD);
                    let mut buf = [0u8; 1024];
                    let reply = loop {
                        if let Some(p) = scanner.next_frame().unwrap() {
                            break Response::decode(&p).unwrap();
                        }
                        let n = s.read(&mut buf).unwrap();
                        assert_ne!(n, 0, "no typed reply before close");
                        scanner.extend(&buf[..n]);
                    };
                    match reply {
                        Response::Error { status, .. } => {
                            assert_eq!(status, ErrStatus::Invalid);
                        }
                        other => panic!("expected Error, got {other:?}"),
                    }
                }
                // A valid Run sent by a client that dies before the
                // reply: a duplicate of the shared spec, so it changes
                // no execution counts.
                {
                    let mut s = TcpStream::connect(&addr).unwrap();
                    s.write_all(
                        &Request::Run {
                            corr: 77,
                            priority: 1,
                            deadline_ms: None,
                            spec: hotspot(SHARED_PPM),
                        }
                        .encode(),
                    )
                    .unwrap();
                    drop(s);
                }
                lorises
            })
        };
        let lorises = adversary.join().unwrap();
        let failures: Vec<String> = tasks.into_iter().flat_map(|t| t.join().unwrap()).collect();
        // The lorises outlive the scope: an early drop is an EOF
        // mid-frame (a silent close), not the stall reap under test.
        (failures, lorises)
    });
    assert!(
        healthy_failures.is_empty(),
        "healthy requests dropped or failed:\n{}",
        healthy_failures.join("\n")
    );

    // Exactly once: every unique spec executed a single time, however
    // many protocols, connections and retries asked for it.
    let unique = (JSON_WORKERS * PER_WORKER + BIN_WORKERS * PER_WORKER + 1) as u64;
    assert_eq!(
        handle.obs().counter_value("serve.jobs.executed"),
        unique,
        "coalesced={} cache_hits={}",
        handle.obs().counter_value("serve.dedup.coalesced"),
        handle.obs().counter_value("serve.cache.hits")
    );
    // The lorises reap on the stall clock; the corrupt frames were
    // counted as they arrived.
    let reaped = await_counter(
        &handle,
        "serve.conn.reaped_read",
        3,
        Duration::from_secs(10),
    );
    assert!(reaped >= 3, "lorises never reaped: {reaped}");
    assert!(handle.obs().counter_value("serve.proto.corrupt") >= 2);
    drop(lorises);

    // Finish through the binary drain path: the ack only comes back
    // once the dispatcher has drained, on a connection that stays
    // readable throughout.
    let mut c = BinClient::connect(&addr).unwrap();
    match c.request(&Request::Shutdown { corr: 5 }).unwrap() {
        Response::ShutdownAck { corr, drained } => {
            assert_eq!(corr, 5);
            assert!(drained);
        }
        other => panic!("expected ShutdownAck, got {other:?}"),
    }
    handle.join();
    let _ = std::fs::remove_dir_all(&cache);
}
