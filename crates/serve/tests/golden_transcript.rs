//! Backward-compat golden: the PR-5 line-JSON session, byte for byte.
//!
//! `golden/line_session.requests.txt` is a transcript recorded against
//! the original thread-per-connection server; every reply it produced
//! is committed in `golden/line_session.replies.txt`. Replies carry
//! only deterministic simulation fields (no timestamps), so any
//! compatible server must reproduce the reply stream byte-identically.
//!
//! Regenerate (only when the wire format intentionally changes) with
//! `CEDAR_GOLDEN_REGEN=1 cargo test -p cedar-serve --test golden_transcript`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use cedar_serve::config::ServeConfig;
use cedar_serve::server::start;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn line_json_session_is_byte_identical_to_the_committed_golden() {
    let requests = std::fs::read_to_string(golden_dir().join("line_session.requests.txt")).unwrap();
    let cache = std::env::temp_dir().join(format!("cedar-serve-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut replies = String::new();
    for line in requests.lines() {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.ends_with('\n'),
            "truncated reply to {line:?}: {reply:?}"
        );
        replies.push_str(&reply);
    }
    drop(writer);
    // The transcript ends with the shutdown op, so the server drains
    // and exits on its own.
    handle.join();
    let _ = std::fs::remove_dir_all(&cache);

    let golden_path = golden_dir().join("line_session.replies.txt");
    if std::env::var_os("CEDAR_GOLDEN_REGEN").is_some() {
        std::fs::write(&golden_path, &replies).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "missing golden replies — run once with CEDAR_GOLDEN_REGEN=1 to record the transcript",
    );
    assert_eq!(
        replies, golden,
        "line-JSON replies drifted from the recorded PR-5 session"
    );
}
