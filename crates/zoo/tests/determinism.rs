//! The zoo's reproducibility contract: thread counts, cache state,
//! and repeat runs must never change a single bit of the sweep.

use cedar_snap::{CacheDir, Snapshot};
use cedar_zoo::cell::{run_cached_on, specs, CACHE_NAMESPACE};
use cedar_zoo::judge::{judge, render_report};

fn scratch(name: &str) -> CacheDir {
    let dir = std::env::temp_dir().join(format!("cedar-zoo-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CacheDir::new(dir).unwrap()
}

fn cleanup(cache: &CacheDir) {
    let _ = std::fs::remove_dir_all(cache.root());
}

fn sweep_bytes(cells: &[cedar_zoo::ZooCell]) -> Vec<u8> {
    let mut out = Vec::new();
    for c in cells {
        out.extend(c.to_snapshot_bytes());
    }
    out
}

#[test]
fn one_thread_and_four_threads_agree_bit_for_bit() {
    let serial = run_cached_on(1, None, true);
    let parallel = run_cached_on(4, None, true);
    assert_eq!(sweep_bytes(&serial), sweep_bytes(&parallel));
}

#[test]
fn warm_cache_run_is_byte_identical_to_cold() {
    let cache = scratch("warm");
    let cold = run_cached_on(2, Some(&cache), true);
    let warm = run_cached_on(2, Some(&cache), true);
    assert_eq!(sweep_bytes(&cold), sweep_bytes(&warm));
    // Verdicts and the rendered report follow suit.
    assert_eq!(
        render_report(&judge(&cold, true)),
        render_report(&judge(&warm, true))
    );
    cleanup(&cache);
}

#[test]
fn cache_population_matches_the_spec_matrix() {
    let cache = scratch("census");
    let cells = run_cached_on(2, Some(&cache), true);
    let matrix = specs(true);
    assert_eq!(cells.len(), matrix.len());
    for spec in &matrix {
        let key = spec.snapshot_key(CACHE_NAMESPACE);
        assert!(
            cache.load_bytes(&key).is_some(),
            "cell {key} missing from the cache"
        );
    }
    cleanup(&cache);
}
