//! Zoo sweep cells: one (machine, workload) measurement.
//!
//! Every cell is a pure function of its [`ZooCellSpec`], so the whole
//! matrix runs as a content-addressed-cached `cedar-exec` sweep: the
//! spec's canonical snapshot under [`CACHE_NAMESPACE`] keys the cell,
//! a warm re-run is served byte-identically from disk, and the same
//! key dedups work between the report bin, the serve job family, and
//! the cluster coordinator.

use cedar_baselines::cm5::Cm5Model;
use cedar_baselines::cray1;
use cedar_baselines::t3::T3Model;
use cedar_baselines::t3d::T3dModel;
use cedar_baselines::workstation::{Workstation, ANCHORS};
use cedar_baselines::ymp;
use cedar_core::params::CedarParams;
use cedar_core::system::CedarSystem;
use cedar_kernels::cg;
use cedar_net::combining::{run_hotspot, CombiningConfig, HotspotTraffic};
use cedar_perfect::manual::{fig3_cedar_efficiencies, fig3_width};
use cedar_perfect::model::ExecutionModel;
use cedar_perfect::versions::Version;
use cedar_snap::CacheDir;

use crate::machine::{Machine, MACHINES};

/// Cache namespace for zoo cells. Bump the `/1` on any change to the
/// cell computation or encoding.
pub const CACHE_NAMESPACE: &str = "zoo.cell/1";

/// The four workloads every machine is measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Perfect ensemble through the portable/compiled path (PPT2
    /// rates; the cell also carries the PPT3 portable/tuned pair).
    PerfectCompiled,
    /// Perfect ensemble at each machine's best effort (PPT1
    /// speedups).
    PerfectManual,
    /// A (processors, problem-size) grid (PPT4).
    Scalability,
    /// Synchronization hotspot bandwidth at rising hot fractions —
    /// the workload where combining is decisive.
    SyncHotspot,
}

/// Every workload, in cell order.
pub const WORKLOADS: [Workload; 4] = [
    Workload::PerfectCompiled,
    Workload::PerfectManual,
    Workload::Scalability,
    Workload::SyncHotspot,
];

impl Workload {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::PerfectCompiled => "perfect-compiled",
            Workload::PerfectManual => "perfect-manual",
            Workload::Scalability => "scalability",
            Workload::SyncHotspot => "sync-hotspot",
        }
    }

    /// Stable numeric tag for snapshots.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Workload::PerfectCompiled => 0,
            Workload::PerfectManual => 1,
            Workload::Scalability => 2,
            Workload::SyncHotspot => 3,
        }
    }

    /// The inverse of [`Workload::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Workload> {
        WORKLOADS.iter().copied().find(|w| w.tag() == tag)
    }
}

/// One sweep input: which machine, which workload, and whether the
/// smoke-scaled (CI-sized) simulation grid is in force. `smoke` is
/// part of the spec — and therefore the cache key — because it
/// changes the simulated cells' results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZooCellSpec {
    /// [`Machine::tag`] of the machine.
    pub machine: u8,
    /// [`Workload::tag`] of the workload.
    pub workload: u8,
    /// Smoke-scaled simulation sizes.
    pub smoke: bool,
}

cedar_snap::snapshot_struct!(ZooCellSpec {
    machine,
    workload,
    smoke,
});

/// One measured cell. `primary` is the workload's headline vector
/// (rates, speedups, or bandwidths); `aux` carries the workload's
/// secondary vector (the PPT3 portable/tuned pair, PPT4 rates, or
/// hotspot latencies + combined-word counts).
#[derive(Debug, Clone, PartialEq)]
pub struct ZooCell {
    /// Echo of the spec's machine tag.
    pub machine: u8,
    /// Echo of the spec's workload tag.
    pub workload: u8,
    /// Headline measurement vector.
    pub primary: Vec<f64>,
    /// Secondary measurement vector.
    pub aux: Vec<f64>,
}

cedar_snap::snapshot_struct!(ZooCell {
    machine,
    workload,
    primary,
    aux,
});

/// The full spec matrix: every machine × every workload.
#[must_use]
pub fn specs(smoke: bool) -> Vec<ZooCellSpec> {
    let mut out = Vec::new();
    for m in MACHINES {
        for w in WORKLOADS {
            out.push(ZooCellSpec {
                machine: m.tag(),
                workload: w.tag(),
                smoke,
            });
        }
    }
    out
}

/// Hot fractions (ppm) the hotspot workload sweeps, uniform first.
pub const HOT_PPMS: [u32; 3] = [0, 250_000, 500_000];

/// The CG scalability grid Cedar is judged on — the same grid as
/// `cedar-bench`'s Table-style PPT4 study (`ppt4::cedar_verdict`),
/// duplicated here because `cedar-bench` depends on this crate; the
/// facade-level `zoo_cedar_identity` test holds the two bit-identical.
pub const CEDAR_PROCS: [usize; 5] = [2, 4, 8, 16, 32];
/// Problem sizes of the Cedar CG grid.
pub const CEDAR_SIZES: [usize; 6] = [1_000, 4_000, 10_000, 16_000, 48_000, 172_000];

/// The (processors, problem size) coordinates of a machine's
/// scalability grid, in the exact order the cell's `primary`/`aux`
/// vectors are laid out.
#[must_use]
pub fn scalability_coords(machine: Machine, smoke: bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    match machine {
        Machine::Cedar => {
            for &p in &CEDAR_PROCS {
                for &n in &CEDAR_SIZES {
                    out.push((p, n));
                }
            }
        }
        Machine::Ymp8 => {
            for p in [2usize, 4, 8] {
                for n in [10_000usize, 100_000] {
                    out.push((p, n));
                }
            }
        }
        Machine::Cray1 | Machine::Workstation => {
            for n in [1_000usize, 10_000, 100_000] {
                out.push((1, n));
            }
        }
        Machine::Cm5 => {
            for p in [32usize, 256, 512] {
                for _bw in [3usize, 11] {
                    for n in [16_384usize, 65_536, 262_144] {
                        out.push((p, n));
                    }
                }
            }
        }
        Machine::Ultra => {
            let requests: [usize; 2] = if smoke { [8, 24] } else { [32, 128] };
            for p in [8usize, 16, 32] {
                for r in requests {
                    out.push((p, r));
                }
            }
        }
        Machine::T3d => {
            for p in [16usize, 32, 64] {
                for n in [65_536usize, 331_776, 1_048_576] {
                    out.push((p, n));
                }
            }
        }
        Machine::T3 => {
            for p in [4usize, 8, 16] {
                for n in [100_000usize, 1_000_000] {
                    out.push((p, n));
                }
            }
        }
    }
    out
}

/// Runs one cell. Pure and deterministic: byte-identical for the
/// same spec regardless of thread count, host, or cache state.
///
/// # Panics
///
/// Panics if the spec's machine or workload tag is unknown.
#[must_use]
pub fn run_cell(spec: ZooCellSpec) -> ZooCell {
    let machine = Machine::from_tag(spec.machine).expect("unknown machine tag");
    let workload = Workload::from_tag(spec.workload).expect("unknown workload tag");
    let (primary, aux) = match workload {
        Workload::PerfectCompiled => perfect_compiled(machine),
        Workload::PerfectManual => (perfect_manual(machine), Vec::new()),
        Workload::Scalability => scalability(machine, spec.smoke),
        Workload::SyncHotspot => sync_hotspot(machine, spec.smoke),
    };
    ZooCell {
        machine: spec.machine,
        workload: spec.workload,
        primary,
        aux,
    }
}

/// Runs the whole matrix as a cached parallel sweep.
#[must_use]
pub fn run_cached(cache: Option<&CacheDir>, smoke: bool) -> Vec<ZooCell> {
    cedar_exec::run_sweep_cached(cache, CACHE_NAMESPACE, specs(smoke), run_cell)
}

/// [`run_cached`] with an explicit thread count (the determinism
/// tests pit 1 against 4).
#[must_use]
pub fn run_cached_on(threads: usize, cache: Option<&CacheDir>, smoke: bool) -> Vec<ZooCell> {
    cedar_exec::run_sweep_cached_on(threads, cache, CACHE_NAMESPACE, specs(smoke), run_cell)
}

fn calibrated_model() -> ExecutionModel {
    ExecutionModel::calibrate(&mut CedarSystem::new(CedarParams::paper()))
}

/// The RS/6000 anchor is the zoo's workstation.
fn anchor() -> Workstation {
    ANCHORS[2]
}

/// PPT2 rate ensemble plus the PPT3 (portable ++ tuned) pair.
fn perfect_compiled(machine: Machine) -> (Vec<f64>, Vec<f64>) {
    match machine {
        Machine::Cedar => {
            let model = calibrated_model();
            let rates = model.cedar_mflops_ensemble();
            let tuned = manual_mflops(&model);
            (rates.clone(), concat(rates, tuned))
        }
        Machine::Ultra => {
            // Cedar's hardware with in-network fetch-and-add: the
            // compiled path prices synchronization at the cheap
            // (NoSync) cost — that is precisely what combining buys.
            let model = calibrated_model();
            let rates: Vec<f64> = model
                .codes()
                .iter()
                .map(|c| model.mflops(c, Version::NoSync))
                .collect();
            let tuned: Vec<f64> = model
                .codes()
                .iter()
                .map(|c| model.mflops(c, Version::Manual))
                .collect();
            (rates.clone(), concat(rates, tuned))
        }
        Machine::Ymp8 => {
            let model = calibrated_model();
            let rates = model.ymp_mflops_ensemble();
            // Restructuring recovery = automatic (Table 6) over
            // manual (Figure 3) efficiency, code by code.
            let portable: Vec<f64> = rates
                .iter()
                .zip(ymp::TABLE6_EFFICIENCIES.iter().zip(&ymp::FIG3_EFFICIENCIES))
                .map(|(&r, (auto, man))| r * (auto.efficiency / man.efficiency).min(1.0))
                .collect();
            (rates.clone(), concat(portable, rates))
        }
        Machine::Cray1 => {
            let rates = cray1::rates();
            let portable: Vec<f64> = rates
                .iter()
                .zip(CRAY1_RECOVERY)
                .map(|(&r, f)| r * f)
                .collect();
            (rates.clone(), concat(portable, rates))
        }
        Machine::Cm5 => {
            // The CM-5's Perfect-shaped ensemble: its matvec rate
            // shaped by the scalar spread (no vector cliff on
            // SPARC nodes), judged with CM Fortran recovery.
            let m = Cm5Model::paper();
            let base = m.matvec_mflops(262_144, 11, 32);
            let rates: Vec<f64> = cedar_baselines::workstation::RELATIVE_RATES
                .iter()
                .map(|rel| base * rel / 0.75)
                .collect();
            let portable: Vec<f64> = rates
                .iter()
                .zip(CM5_RECOVERY)
                .map(|(&r, f)| r * f)
                .collect();
            (rates.clone(), concat(portable, rates))
        }
        Machine::Workstation => {
            let rates = anchor().rates();
            let portable: Vec<f64> = rates.iter().map(|r| r * 0.95).collect();
            (rates.clone(), concat(portable, rates))
        }
        Machine::T3d => {
            let m = T3dModel::paper();
            (m.tuned_rates(), concat(m.portable_rates(), m.tuned_rates()))
        }
        Machine::T3 => {
            let m = T3Model::paper();
            (m.rates(), concat(m.rates(), m.tuned_rates()))
        }
    }
}

/// PPT1 speedup ensemble at each machine's best effort.
fn perfect_manual(machine: Machine) -> Vec<f64> {
    match machine {
        Machine::Cedar => {
            // Exactly the judging_machines PPT1 input: Figure 3
            // efficiencies times each code's machine width.
            let model = calibrated_model();
            fig3_cedar_efficiencies(&model)
                .iter()
                .map(|p| p.efficiency * fig3_width(p.name) as f64)
                .collect()
        }
        Machine::Ultra => {
            let model = calibrated_model();
            model
                .codes()
                .iter()
                .map(|c| model.improvement(c, Version::NoSync))
                .collect()
        }
        Machine::Ymp8 => ymp::FIG3_EFFICIENCIES
            .iter()
            .map(|e| e.efficiency * 8.0)
            .collect(),
        // Uniprocessors deliver their own performance by definition;
        // the interesting judgments land in PPT2/PPT3.
        Machine::Cray1 | Machine::Workstation => vec![1.0; 13],
        Machine::Cm5 => {
            let m = Cm5Model::paper();
            let mut out = Vec::new();
            for bw in [3usize, 11] {
                for n in [16_384usize, 65_536, 262_144] {
                    out.push(m.speedup(n, bw, 32));
                }
            }
            out
        }
        Machine::T3d => T3dModel::paper().tuned_speedups(),
        Machine::T3 => T3Model::paper().speedups(16),
    }
}

/// PPT4 grid: speedups in `primary`, rates in `aux`, laid out in
/// [`scalability_coords`] order.
fn scalability(machine: Machine, smoke: bool) -> (Vec<f64>, Vec<f64>) {
    let coords = scalability_coords(machine, smoke);
    let mut speedups = Vec::with_capacity(coords.len());
    let mut rates = Vec::with_capacity(coords.len());
    match machine {
        Machine::Cedar => {
            let mut sys = CedarSystem::new(CedarParams::paper());
            for &(p, n) in &coords {
                speedups.push(cg::speedup(&mut sys, n, p));
                rates.push(cg::simulate_iteration(&mut sys, n, p).mflops);
            }
        }
        Machine::Ymp8 => {
            for &(p, n) in &coords {
                let s = ymp_autotask_speedup(p, n);
                speedups.push(s);
                rates.push(s * 55.0 * size_factor(n));
            }
        }
        Machine::Cray1 => {
            // Vector startup: N=1K runs at a third of the asymptotic
            // rate, which fails the 2x size-stability bound — the
            // Cray-1 is fast, not stable. The speedup axis is
            // trivially 1.
            for &(_, n) in &coords {
                speedups.push(1.0);
                rates.push(12.0 * size_factor(n));
            }
        }
        Machine::Workstation => {
            for &(_, _) in &coords {
                speedups.push(1.0);
                rates.push(anchor().scale_mflops);
            }
        }
        Machine::Cm5 => {
            let m = Cm5Model::paper();
            // Coordinate order interleaves the two bandwidths; walk
            // the same loops to stay aligned.
            for p in [32usize, 256, 512] {
                for bw in [3usize, 11] {
                    for n in [16_384usize, 65_536, 262_144] {
                        speedups.push(m.speedup(n, bw, p));
                        rates.push(m.matvec_mflops(n, bw, p));
                    }
                }
            }
        }
        Machine::Ultra => {
            // Simulated: hotspot throughput scaling on the combining
            // fabric, against the single-CE run at each request
            // count.
            let requests: [usize; 2] = if smoke { [8, 24] } else { [32, 128] };
            let mut base = Vec::new();
            for r in requests {
                base.push(ultra_bandwidth(1, r as u64));
            }
            for &(p, r) in &coords {
                let bw = ultra_bandwidth(p, r as u64);
                let b = base[requests.iter().position(|&x| x == r).expect("known size")];
                speedups.push(bw / b);
                rates.push(bw);
            }
        }
        Machine::T3d => {
            let m = T3dModel::paper();
            for &(p, n) in &coords {
                speedups.push(m.speedup(n, p));
                rates.push(m.sweep_mflops(n, p));
            }
        }
        Machine::T3 => {
            let m = T3Model::paper();
            for &(p, n) in &coords {
                speedups.push(m.speedup(n, p));
                rates.push(m.sweep_mflops(n, p));
            }
        }
    }
    (speedups, rates)
}

/// Hotspot bandwidths at [`HOT_PPMS`] in `primary`; `aux` is, for
/// the simulated machines, the mean latencies (CE cycles) followed
/// by the combined-request counts at each fraction.
fn sync_hotspot(machine: Machine, smoke: bool) -> (Vec<f64>, Vec<f64>) {
    match machine {
        Machine::Cedar => simulated_hotspot(CombiningConfig::plain(), smoke),
        Machine::Ultra => simulated_hotspot(CombiningConfig::ultra(16), smoke),
        _ => {
            let (base, serialization) = analytic_hotspot_profile(machine);
            let p = machine.processors() as f64;
            let primary = HOT_PPMS
                .iter()
                .map(|&ppm| {
                    let f = f64::from(ppm) / 1e6;
                    base / (1.0 + serialization * f * (p - 1.0))
                })
                .collect();
            (primary, Vec::new())
        }
    }
}

/// (uniform-traffic bandwidth in requests per CE cycle, hotspot
/// serialization coefficient) for the analytic machines.
fn analytic_hotspot_profile(machine: Machine) -> (f64, f64) {
    match machine {
        // Shared registers make YMP sync cheap but serial.
        Machine::Ymp8 => (6.0, 0.3),
        // Uniprocessors have no hot spot.
        Machine::Cray1 | Machine::Workstation => (1.0, 0.0),
        // The CM-5's dedicated control network absorbs most of it.
        Machine::Cm5 => (16.0, 1.0),
        // Remote atomics serialize at the owning node.
        Machine::T3d => (19.2, 4.0),
        // NUMA atomics, softened by multithreading.
        Machine::T3 => (9.6, 2.0),
        Machine::Cedar | Machine::Ultra => unreachable!("simulated machines"),
    }
}

fn simulated_hotspot(cfg: CombiningConfig, smoke: bool) -> (Vec<f64>, Vec<f64>) {
    let requests = if smoke { 32 } else { 128 };
    let mut bws = Vec::new();
    let mut latencies = Vec::new();
    let mut combined = Vec::new();
    for &ppm in &HOT_PPMS {
        let report = run_hotspot(
            cfg,
            32,
            HotspotTraffic {
                requests_per_ce: requests,
                hot_ppm: ppm,
                window: 4,
            },
            50_000_000,
        );
        assert!(report.all_completed(), "hotspot run hit the cycle budget");
        bws.push(report.bandwidth());
        latencies.push(report.mean_latency_ce());
        combined.push(report.words_combined as f64);
    }
    latencies.extend(combined);
    (bws, latencies)
}

/// One servable hotspot measurement — what a `cedar-serve` `zoo` job
/// returns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotPoint {
    /// Delivered bandwidth: requests per CE cycle (simulated) or the
    /// analytic curve value.
    pub bandwidth: f64,
    /// Mean request latency in CE cycles (0 for analytic machines).
    pub latency_ce: f64,
    /// Simulated network cycles (0 for analytic machines).
    pub net_cycles: u64,
    /// Requests absorbed by combining.
    pub combined: u64,
}

/// Computes one hotspot point for any zoo machine: the simulated
/// machines (Cedar, Ultra) run the combining fabric; the analytic
/// machines evaluate their serialization curve at `ces` processors.
///
/// # Panics
///
/// Panics if a simulated run exhausts its cycle budget (bounded by
/// `requests_per_ce`, which callers must cap).
#[must_use]
pub fn hotspot_point(
    machine: Machine,
    ces: usize,
    requests_per_ce: u64,
    hot_ppm: u32,
) -> HotspotPoint {
    match machine {
        Machine::Cedar | Machine::Ultra => {
            let cfg = if machine == Machine::Ultra {
                CombiningConfig::ultra(16)
            } else {
                CombiningConfig::plain()
            };
            let report = run_hotspot(
                cfg,
                ces,
                HotspotTraffic {
                    requests_per_ce,
                    hot_ppm,
                    window: 4,
                },
                50_000_000,
            );
            assert!(report.all_completed(), "zoo hotspot job hit the budget");
            HotspotPoint {
                bandwidth: report.bandwidth(),
                latency_ce: report.mean_latency_ce(),
                net_cycles: report.net_cycles,
                combined: report.words_combined,
            }
        }
        _ => {
            let (base, serialization) = analytic_hotspot_profile(machine);
            let f = f64::from(hot_ppm) / 1e6;
            HotspotPoint {
                bandwidth: base / (1.0 + serialization * f * (ces as f64 - 1.0)),
                latency_ce: 0.0,
                net_cycles: 0,
                combined: 0,
            }
        }
    }
}

/// Hotspot bandwidth of the Ultra fabric at `p` CEs (the PPT4 axis).
fn ultra_bandwidth(ces: usize, requests: u64) -> f64 {
    let report = run_hotspot(
        CombiningConfig::ultra(16),
        ces,
        HotspotTraffic {
            requests_per_ce: requests,
            hot_ppm: 250_000,
            window: 4,
        },
        50_000_000,
    );
    assert!(report.all_completed(), "ultra scaling run hit the budget");
    report.bandwidth()
}

/// Manually optimized Cedar MFLOPS: the 12 calibrated codes at their
/// manual versions plus SPICE at its published rate (the paper ships
/// no manual SPICE).
fn manual_mflops(model: &ExecutionModel) -> Vec<f64> {
    let mut out: Vec<f64> = model
        .codes()
        .iter()
        .map(|c| model.mflops(c, Version::Manual))
        .collect();
    let ensemble = model.cedar_mflops_ensemble();
    out.push(*ensemble.last().expect("SPICE closes the ensemble"));
    out
}

/// Autotasked YMP speedup: Amdahl with a size-dependent serial
/// fraction (documented reconstruction — autotasking parallelized
/// the big loops, small problems keep proportionally more serial
/// glue).
fn ymp_autotask_speedup(p: usize, n: usize) -> f64 {
    let serial_fraction = 0.08 + 200.0 / n as f64;
    p as f64 / (1.0 + (p as f64 - 1.0) * serial_fraction)
}

/// Rate roll-off at small problem sizes (vector startup / pipeline
/// fill): severe enough at N=1K to trip the 2× size-stability bound.
fn size_factor(n: usize) -> f64 {
    1.0 / (1.0 + 2_000.0 / n as f64)
}

/// Per-code fraction of the tuned Cray-1 rate its vectorizing
/// compiler recovered (documented reconstruction: mature vectorizer,
/// irregular codes excepted).
const CRAY1_RECOVERY: [f64; 13] = [
    0.75, 0.90, 0.70, 0.80, 0.90, 0.60, 0.70, 0.75, 0.50, 0.80, 0.55, 0.60, 0.95,
];

/// Per-code CM Fortran recovery on the CM-5 (documented
/// reconstruction: data-parallel compilation suits the regular
/// codes, abandons the irregular ones).
const CM5_RECOVERY: [f64; 13] = [
    0.55, 0.65, 0.45, 0.50, 0.70, 0.35, 0.50, 0.60, 0.40, 0.55, 0.25, 0.30, 0.60,
];

fn concat(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    a.extend(b);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_snap::Snapshot;

    #[test]
    fn spec_matrix_covers_every_cell_once() {
        let all = specs(false);
        assert_eq!(all.len(), MACHINES.len() * WORKLOADS.len());
        let mut keys: Vec<String> = all
            .iter()
            .map(|s| s.snapshot_key(CACHE_NAMESPACE))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), all.len(), "cell keys must be distinct");
    }

    #[test]
    fn smoke_changes_only_simulated_cell_keys() {
        for (full, smoke) in specs(false).into_iter().zip(specs(true)) {
            assert_ne!(
                full.snapshot_key(CACHE_NAMESPACE),
                smoke.snapshot_key(CACHE_NAMESPACE),
                "smoke is part of the key"
            );
        }
    }

    #[test]
    fn analytic_cells_are_cheap_and_deterministic() {
        let spec = ZooCellSpec {
            machine: Machine::T3d.tag(),
            workload: Workload::Scalability.tag(),
            smoke: true,
        };
        let a = run_cell(spec);
        let b = run_cell(spec);
        assert_eq!(a, b);
        assert_eq!(
            a.primary.len(),
            scalability_coords(Machine::T3d, true).len()
        );
    }

    #[test]
    fn compiled_cells_carry_the_ppt3_pair() {
        for m in [Machine::Cray1, Machine::T3, Machine::Workstation] {
            let cell = run_cell(ZooCellSpec {
                machine: m.tag(),
                workload: Workload::PerfectCompiled.tag(),
                smoke: true,
            });
            assert_eq!(cell.aux.len(), 2 * cell.primary.len());
        }
    }

    #[test]
    fn cells_round_trip_through_snapshots() {
        let cell = run_cell(ZooCellSpec {
            machine: Machine::Workstation.tag(),
            workload: Workload::SyncHotspot.tag(),
            smoke: true,
        });
        let bytes = cell.to_snapshot_bytes();
        let back = ZooCell::from_snapshot_bytes(&bytes).expect("round trip");
        assert_eq!(cell, back);
    }
}
