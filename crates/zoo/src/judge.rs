//! Judging: cells in, Practical Parallelism verdicts out.
//!
//! The judge is a pure function of the cell vectors, so a cached warm
//! sweep reaches exactly the verdicts of the cold one. Cedar's own
//! PPT1–PPT4 inputs are the very vectors `examples/judging_machines`
//! and `cedar-bench`'s PPT4 study compute, so its verdicts here are
//! bit-identical to the existing judgments (held by the facade's
//! `zoo_cedar_identity` test).

use cedar_metrics::ppt::{ppt1, ppt2, ppt3, ppt4, ppt5, PptSummary, ScalabilityPoint};

use crate::cell::{scalability_coords, Workload, ZooCell, HOT_PPMS};
use crate::machine::{Machine, MACHINES};

/// Exceptions granted to every machine's PPT2 stability judgment
/// (the paper's "stable with a small number of exceptions").
pub const PPT2_EXCEPTIONS: usize = 2;

/// One machine's verdict sheet.
#[derive(Debug, Clone)]
pub struct MachineVerdict {
    /// Which machine.
    pub machine: Machine,
    /// The five Practical Parallelism Test verdicts.
    pub summary: PptSummary,
    /// Hotspot bandwidth (requests per CE cycle equivalent) at each
    /// entry of [`HOT_PPMS`].
    pub hotspot_bandwidth: Vec<f64>,
    /// Requests absorbed by combining at each hot fraction (zero for
    /// every machine without combining hardware).
    pub words_combined: Vec<f64>,
}

impl MachineVerdict {
    /// Bandwidth retained at the hottest fraction relative to uniform
    /// traffic — the tree-saturation survival score.
    #[must_use]
    pub fn hotspot_retention(&self) -> f64 {
        let base = self.hotspot_bandwidth[0];
        let hot = *self
            .hotspot_bandwidth
            .last()
            .expect("hotspot sweep is never empty");
        if base > 0.0 {
            hot / base
        } else {
            0.0
        }
    }
}

/// Finds the cell of one (machine, workload) pair.
fn cell(cells: &[ZooCell], machine: Machine, workload: Workload) -> &ZooCell {
    cells
        .iter()
        .find(|c| c.machine == machine.tag() && c.workload == workload.tag())
        .unwrap_or_else(|| panic!("missing cell {}/{}", machine.name(), workload.name()))
}

/// Judges one machine from its four cells.
#[must_use]
pub fn judge_machine(cells: &[ZooCell], machine: Machine, smoke: bool) -> MachineVerdict {
    let compiled = cell(cells, machine, Workload::PerfectCompiled);
    let manual = cell(cells, machine, Workload::PerfectManual);
    let grid = cell(cells, machine, Workload::Scalability);
    let hot = cell(cells, machine, Workload::SyncHotspot);

    let ppt1 = ppt1(&manual.primary, machine.processors());
    let ppt2 = ppt2(&compiled.primary, PPT2_EXCEPTIONS);
    let (portable, best) = compiled.aux.split_at(compiled.aux.len() / 2);
    let ppt3 = ppt3(portable, best);

    let coords = scalability_coords(machine, smoke);
    assert_eq!(coords.len(), grid.primary.len(), "grid layout drifted");
    let points: Vec<ScalabilityPoint> = coords
        .iter()
        .zip(&grid.primary)
        .map(|(&(p, n), &speedup)| ScalabilityPoint {
            processors: p,
            problem_size: n,
            speedup,
        })
        .collect();
    let ppt4 = ppt4(&points, &grid.aux);
    let ppt5 = ppt5(&machine.complexity());

    let n = HOT_PPMS.len();
    let words_combined = if hot.aux.len() == 2 * n {
        hot.aux[n..].to_vec()
    } else {
        vec![0.0; n]
    };
    MachineVerdict {
        machine,
        summary: PptSummary {
            ppt1,
            ppt2,
            ppt3,
            ppt4,
            ppt5,
        },
        hotspot_bandwidth: hot.primary.clone(),
        words_combined,
    }
}

/// Judges the whole zoo, in [`MACHINES`] order.
#[must_use]
pub fn judge(cells: &[ZooCell], smoke: bool) -> Vec<MachineVerdict> {
    MACHINES
        .iter()
        .map(|&m| judge_machine(cells, m, smoke))
        .collect()
}

/// Hot-fraction bandwidth advantage of the combining machine over the
/// plain-omega Cedar: `ultra_bw / cedar_bw` at the hottest swept
/// fraction. Combining earns its keep iff this exceeds 1.
#[must_use]
pub fn combining_gain(verdicts: &[MachineVerdict]) -> f64 {
    let find = |m: Machine| {
        verdicts
            .iter()
            .find(|v| v.machine == m)
            .unwrap_or_else(|| panic!("{} missing from verdicts", m.name()))
    };
    let ultra = find(Machine::Ultra);
    let cedar = find(Machine::Cedar);
    let last = HOT_PPMS.len() - 1;
    ultra.hotspot_bandwidth[last] / cedar.hotspot_bandwidth[last]
}

/// Renders the cross-machine matrix as fixed-width text (the report
/// binary's stdout body).
#[must_use]
pub fn render_report(verdicts: &[MachineVerdict]) -> String {
    let mut out = String::new();
    out.push_str(
        "machine      PPT1 PPT2 PPT3 PPT4 PPT5  passed  eff   In(K,2)  hot-retain  combined\n",
    );
    for v in verdicts {
        let s = &v.summary;
        let mark = |b: bool| if b { "pass" } else { "FAIL" };
        out.push_str(&format!(
            "{:<12} {:<4} {:<4} {:<4} {:<4} {:<4}  {}/5     {:.3} {:>8.1}  {:>9.2}  {:>8.0}\n",
            v.machine.name(),
            mark(s.ppt1.passes),
            mark(s.ppt2.passes),
            mark(s.ppt3.passes),
            mark(!s.ppt4.any_unacceptable && s.ppt4.size_stable),
            mark(s.ppt5.passes),
            s.passed(),
            s.efficiency_score(),
            s.ppt2.report.instability,
            v.hotspot_retention(),
            v.words_combined.iter().sum::<f64>(),
        ));
    }
    let gain = combining_gain(verdicts);
    out.push_str(&format!(
        "\ncombining gain on the hotspot (ultra vs cedar, hottest fraction): {gain:.2}x\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::run_cached;

    fn smoke_verdicts() -> Vec<MachineVerdict> {
        judge(&run_cached(None, true), true)
    }

    #[test]
    fn every_machine_gets_all_five_verdicts() {
        let verdicts = smoke_verdicts();
        assert_eq!(verdicts.len(), MACHINES.len());
        for v in &verdicts {
            assert_eq!(v.hotspot_bandwidth.len(), HOT_PPMS.len());
            assert!(v.summary.passed() <= 5);
            assert!(v.summary.efficiency_score() > 0.0);
            assert!(v.summary.efficiency_score() <= 1.0);
        }
    }

    #[test]
    fn combining_beats_plain_cedar_on_the_hotspot() {
        let verdicts = smoke_verdicts();
        assert!(
            combining_gain(&verdicts) > 1.0,
            "the combining network must outrun the plain omega on hot traffic"
        );
    }

    #[test]
    fn only_combining_machines_combine() {
        for v in smoke_verdicts() {
            let combined: f64 = v.words_combined.iter().sum();
            if v.machine == Machine::Ultra {
                assert!(combined > 0.0, "ultra must actually combine");
            } else {
                assert_eq!(combined, 0.0, "{} must not combine", v.machine.name());
            }
        }
    }

    #[test]
    fn uniprocessors_are_stable_but_unjudgeable_on_ppt1() {
        let verdicts = smoke_verdicts();
        let ws = verdicts
            .iter()
            .find(|v| v.machine == Machine::Workstation)
            .expect("workstation is in the zoo");
        // Speedup 1 on 1 processor is High-band by definition.
        assert!(ws.summary.ppt1.passes);
        assert!(ws.summary.ppt2.passes, "the anchor is the stability story");
    }

    #[test]
    fn report_renders_every_machine_and_the_gain() {
        let text = render_report(&smoke_verdicts());
        for m in MACHINES {
            assert!(text.contains(m.name()), "report must mention {}", m.name());
        }
        assert!(text.contains("combining gain"));
    }
}
