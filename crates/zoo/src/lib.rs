//! `cedar-zoo` — a machine-model zoo judged by the paper's Practical
//! Parallelism Tests (ROADMAP item 4).
//!
//! §4.3 of the paper sketches how the PPTs would rank machines beyond
//! Cedar; this crate carries the sketch out. A unified roster
//! ([`machine::Machine`]) spans the simulated Cedar itself, the
//! paper's analytic baselines (Cray YMP/8, Cray-1, CM-5, the
//! workstation anchor), and three machines reconstructed from the
//! related work:
//!
//! * **ultra** — an NYU Ultracomputer-style machine: Cedar's own
//!   `cedar-net` stages with pairwise fetch-and-add combining enabled
//!   at the switches, simulated (not modeled) on the hotspot workload
//!   where combining is decisive;
//! * **t3d** — a Cray T3D-style MIMD NUMA message-passing machine,
//!   calibrated from its lattice-QCD communication/compute ratios;
//! * **t3** — a SPARC T3-style massively multithreaded NUMA machine.
//!
//! Every machine is measured on four workloads ([`cell::Workload`]):
//! the Perfect ensemble through the portable compiler path, the same
//! ensemble at best manual effort, a (processors × problem size)
//! scalability grid, and a synchronization hotspot sweep. Each
//! (machine, workload) pair is one pure [`cell::ZooCellSpec`] →
//! [`cell::ZooCell`] function, so the whole matrix runs as a
//! content-addressed-cached parallel `cedar-exec` sweep
//! ([`cell::run_cached`]): warm re-runs are byte-identical and served
//! from disk.
//!
//! [`judge`] turns the cells into per-machine [`judge::MachineVerdict`]s
//! scoring all five PPTs — including PPT5 (reimplementability), which
//! the earlier crates deferred and which [`machine::Machine::complexity`]
//! now grounds in model-complexity proxies. Cedar's PPT1–PPT4 inputs
//! are the very vectors `examples/judging_machines` and `cedar-bench`
//! compute, so its verdicts are bit-identical to the established
//! judgments.
//!
//! # Examples
//!
//! ```
//! use cedar_zoo::{cell, judge, machine::Machine};
//!
//! let cells = cell::run_cached(None, true); // smoke-sized, uncached
//! let verdicts = judge::judge(&cells, true);
//! assert_eq!(verdicts.len(), 8);
//! assert!(judge::combining_gain(&verdicts) > 1.0);
//! let cedar = &verdicts[0];
//! assert_eq!(cedar.machine, Machine::Cedar);
//! assert!(cedar.summary.ppt1.passes);
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod judge;
pub mod machine;

pub use cell::{
    hotspot_point, run_cached, run_cached_on, HotspotPoint, ZooCell, ZooCellSpec, CACHE_NAMESPACE,
};
pub use judge::{combining_gain, judge, render_report, MachineVerdict};
pub use machine::{Machine, MACHINES};
