//! The zoo roster: every machine the report judges.

use cedar_metrics::ModelComplexity;

/// A machine in the zoo. The first five are the paper's own cast;
/// the last three extend it along the directions PAPERS.md names:
/// the NYU Ultracomputer (Cedar's network with combining switched
/// on), the Cray T3D (MIMD NUMA message passing), and a SPARC
/// T3-style massively multithreaded NUMA machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    /// The simulated Cedar itself.
    Cedar,
    /// Cray YMP/8 (transcribed Table 3 ratios + reconstructions).
    Ymp8,
    /// Cray-1 (documented reconstruction).
    Cray1,
    /// Thinking Machines CM-5 (analytic banded-matvec model).
    Cm5,
    /// The RS/6000-class workstation stability anchor.
    Workstation,
    /// Ultracomputer-style: Cedar's stages with fetch-and-add
    /// combining, simulated on the real `cedar-net` machinery.
    Ultra,
    /// Cray T3D-style MIMD NUMA message passing, QCD-calibrated.
    T3d,
    /// SPARC T3-style massively multithreaded NUMA.
    T3,
}

/// Every machine, in report order.
pub const MACHINES: [Machine; 8] = [
    Machine::Cedar,
    Machine::Ymp8,
    Machine::Cray1,
    Machine::Cm5,
    Machine::Workstation,
    Machine::Ultra,
    Machine::T3d,
    Machine::T3,
];

impl Machine {
    /// Stable wire name (used by job specs, report JSON, and track
    /// metrics).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Machine::Cedar => "cedar",
            Machine::Ymp8 => "ymp8",
            Machine::Cray1 => "cray1",
            Machine::Cm5 => "cm5",
            Machine::Workstation => "workstation",
            Machine::Ultra => "ultra",
            Machine::T3d => "t3d",
            Machine::T3 => "t3",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Machine> {
        MACHINES.iter().copied().find(|m| m.name() == name)
    }

    /// Stable numeric tag for snapshots.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Machine::Cedar => 0,
            Machine::Ymp8 => 1,
            Machine::Cray1 => 2,
            Machine::Cm5 => 3,
            Machine::Workstation => 4,
            Machine::Ultra => 5,
            Machine::T3d => 6,
            Machine::T3 => 7,
        }
    }

    /// The inverse of [`Machine::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Machine> {
        MACHINES.iter().copied().find(|m| m.tag() == tag)
    }

    /// Processor count used for band classification.
    #[must_use]
    pub fn processors(self) -> usize {
        match self {
            Machine::Cedar | Machine::Ultra | Machine::Cm5 => 32,
            Machine::Ymp8 => 8,
            Machine::Cray1 | Machine::Workstation => 1,
            Machine::T3d => 64,
            Machine::T3 => 16,
        }
    }

    /// PPT5 reimplementability proxies. The counts are structural
    /// facts about each model: how many numbers had to be calibrated,
    /// how many mechanisms have no commodity equivalent, and how much
    /// of the machine is off-the-shelf. Cedar and the Crays fail —
    /// their performance lives in bespoke hardware — and the
    /// combining machine fails hardest relative to its network
    /// ambition, which is the classic objection to combining
    /// switches. The commodity-node machines (CM-5 shell, T3D shell
    /// around Alphas, T3, workstation) pass.
    #[must_use]
    pub fn complexity(self) -> ModelComplexity {
        match self {
            Machine::Cedar => ModelComplexity {
                calibrated_parameters: 12,
                custom_mechanisms: 4,
                commodity_parts_pct: 40,
            },
            Machine::Ymp8 => ModelComplexity {
                calibrated_parameters: 4,
                custom_mechanisms: 3,
                commodity_parts_pct: 10,
            },
            Machine::Cray1 => ModelComplexity {
                calibrated_parameters: 2,
                custom_mechanisms: 2,
                commodity_parts_pct: 10,
            },
            Machine::Cm5 => ModelComplexity {
                calibrated_parameters: 5,
                custom_mechanisms: 2,
                commodity_parts_pct: 70,
            },
            Machine::Workstation => ModelComplexity {
                calibrated_parameters: 2,
                custom_mechanisms: 0,
                commodity_parts_pct: 100,
            },
            Machine::Ultra => ModelComplexity {
                calibrated_parameters: 6,
                custom_mechanisms: 5,
                commodity_parts_pct: 35,
            },
            Machine::T3d => ModelComplexity {
                calibrated_parameters: 6,
                custom_mechanisms: 1,
                commodity_parts_pct: 80,
            },
            Machine::T3 => ModelComplexity {
                calibrated_parameters: 5,
                custom_mechanisms: 1,
                commodity_parts_pct: 85,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_metrics::ppt::ppt5;

    #[test]
    fn names_and_tags_round_trip() {
        for m in MACHINES {
            assert_eq!(Machine::from_name(m.name()), Some(m));
            assert_eq!(Machine::from_tag(m.tag()), Some(m));
        }
        assert_eq!(Machine::from_name("cray2"), None);
        assert_eq!(Machine::from_tag(200), None);
    }

    #[test]
    fn ppt5_splits_commodity_from_custom() {
        let pass: Vec<&str> = MACHINES
            .iter()
            .filter(|m| ppt5(&m.complexity()).passes)
            .map(|m| m.name())
            .collect();
        assert_eq!(pass, vec!["cm5", "workstation", "t3d", "t3"]);
    }

    #[test]
    fn combining_machine_scores_below_cedar() {
        // The reimplementability cost of combining hardware.
        let cedar = ppt5(&Machine::Cedar.complexity()).score;
        let ultra = ppt5(&Machine::Ultra.complexity()).score;
        assert!(ultra < cedar);
    }
}
