//! `cedar-exec` — the deterministic parallel sweep executor.
//!
//! The paper's evaluation is sweeps: Table 2 load points, Figure 3
//! scatter points, fault-rate grids, hot-spot fractions, scale-up
//! machines. Every point is an independent `(config → result)`
//! simulation with its own seeded RNG, so the sweep is embarrassingly
//! parallel — as long as nothing about the execution order can leak
//! into the results. [`run_sweep`] fans the points out across a
//! work-stealing scoped-thread pool and commits the results **in
//! input order**, guaranteeing output bit-identical to a serial
//! `map` no matter how many threads run or how the steals interleave.
//!
//! # Determinism contract
//!
//! * Each point's closure must derive everything from its input:
//!   own simulator, own seeded RNG, own `Obs` handle. No shared
//!   mutable state, no ambient randomness, no time queries.
//! * The executor assigns every input an index and commits result
//!   `i` to output slot `i`; the returned `Vec` is therefore equal
//!   to `inputs.into_iter().map(f).collect()` regardless of thread
//!   count or steal order.
//! * With one thread (or one input) the pool is bypassed entirely:
//!   the closure runs inline on the caller's thread, so
//!   `CEDAR_THREADS=1` *is* the serial execution, not a simulation
//!   of it.
//!
//! # Thread-count resolution
//!
//! [`threads`] reads the `CEDAR_THREADS` environment variable at
//! each call: a positive integer pins the pool size, `0`, unset or
//! unparsable falls back to [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! // Squares arrive in input order whatever the thread count.
//! let out = cedar_exec::run_sweep((0u64..64).collect(), |x| x * x);
//! assert_eq!(out[63], 63 * 63);
//!
//! // Pin the pool size explicitly (bypasses CEDAR_THREADS).
//! let serial = cedar_exec::run_sweep_on(1, (0u64..64).collect(), |x| x * x);
//! assert_eq!(out, serial);
//! ```

#![warn(missing_docs)]

mod cached;
mod pool;

pub use cached::{
    run_sweep_cached, run_sweep_cached_cancellable, run_sweep_cached_cancellable_on,
    run_sweep_cached_on, sweep_keys,
};
pub use pool::{
    run_sweep_cancellable_on, run_sweep_on, run_sweep_streaming_on, CancelToken, Cancelled,
};

/// The environment variable that pins the sweep pool size.
pub const THREADS_ENV: &str = "CEDAR_THREADS";

/// Resolves the number of worker threads for sweep execution.
///
/// Reads [`THREADS_ENV`] on every call so tests and the `perf`
/// harness can flip between serial and parallel execution without
/// rebuilding pools: a positive integer wins; `0`, absence or an
/// unparsable value falls back to the machine's available
/// parallelism (1 if even that is unknown).
#[must_use]
pub fn threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` over every input on the [`threads`]-sized pool and
/// returns the results in input order.
///
/// This is the sweep entry point the bench modules use; see the
/// crate docs for the determinism contract each point must honour.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point.
pub fn run_sweep<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    run_sweep_on(threads(), inputs, f)
}

/// [`run_sweep`] with a cooperative [`CancelToken`] checked between
/// points: a fired token stops the sweep at the next point boundary
/// and discards every completed result, so callers never observe a
/// partial output. This is the primitive behind the serving tier's
/// deadline and shutdown aborts.
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fired before every point ran.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point (panics
/// take precedence over cancellation).
pub fn run_sweep_cancellable<I, T, F>(
    inputs: Vec<I>,
    f: F,
    cancel: &CancelToken,
) -> Result<Vec<T>, Cancelled>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    run_sweep_cancellable_on(threads(), inputs, f, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_commit_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = inputs.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8, 16] {
            let got = run_sweep_on(threads, inputs.clone(), |x| x * 3 + 1);
            assert_eq!(got, expected, "{threads} threads");
        }
    }

    #[test]
    fn heterogeneous_point_costs_still_commit_in_order() {
        // Early points are the slow ones, so late points finish first
        // and must wait in their slots, not jump the queue.
        let inputs: Vec<u64> = (0..32).collect();
        let f = |x: u64| {
            let spins = if x < 4 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        };
        let serial: Vec<_> = inputs.iter().map(|&x| f(x)).collect();
        let parallel = run_sweep_on(8, inputs, f);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn seeded_rng_points_match_serial_bit_for_bit() {
        // Each point owns a SplitMix64-style stream seeded by its
        // input — the shape every converted bench module has.
        let stream = |seed: u64| {
            let mut s = seed;
            let mut out = 0u64;
            for _ in 0..1000 {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                out ^= z ^ (z >> 31);
            }
            out
        };
        let seeds: Vec<u64> = (0..40).map(|i| 0xCEDA + i).collect();
        let serial: Vec<u64> = seeds.iter().map(|&s| stream(s)).collect();
        assert_eq!(run_sweep_on(5, seeds, stream), serial);
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let empty: Vec<u64> = run_sweep_on(4, Vec::<u64>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(run_sweep_on(4, vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_inputs() {
        let got = run_sweep_on(64, vec![1u64, 2, 3], |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "point 2 exploded")]
    fn worker_panics_propagate() {
        let _ = run_sweep_on(4, vec![0u64, 1, 2, 3], |x| {
            assert!(x != 2, "point {x} exploded");
            x
        });
    }

    #[test]
    fn threads_env_parsing() {
        // Not set in the test environment: falls back to the machine.
        assert!(threads() >= 1);
    }
}
