//! Content-addressed sweep caching.
//!
//! A sweep point is a pure function of its input, so its result can be
//! keyed by the input's canonical snapshot encoding and reused across
//! harness invocations: the second `perf --smoke` run of a CI job
//! loads every point from disk instead of re-simulating it.
//!
//! The cache layer sits strictly *around* the executor: hits are
//! loaded up front, misses run through the ordinary pool (preserving
//! the determinism contract — the miss subset commits in input order),
//! and results are stored only after the whole miss sweep returns, so
//! a panicking point never persists a poisoned entry.

use cedar_snap::{CacheDir, Snapshot};

use crate::pool::{run_sweep_cancellable_on, CancelToken, Cancelled};

/// Content-addressed cache keys for a sweep: each input's
/// [`snapshot_key`](Snapshot::snapshot_key) under `namespace`, in input
/// order. This is the *single* key derivation shared by the cached
/// sweep runners here and by the cluster coordinator, so a point
/// computed by either is a cache hit for the other.
#[must_use]
pub fn sweep_keys<I: Snapshot>(namespace: &str, inputs: &[I]) -> Vec<String> {
    inputs
        .iter()
        .map(|input| input.snapshot_key(namespace))
        .collect()
}

/// Runs `f` over every input, serving points from `cache` when their
/// key is present and storing freshly computed results back.
///
/// Semantics are identical to [`run_sweep`](crate::run_sweep) —
/// results arrive in input order, bit-identical to a serial map —
/// provided `f` honours the determinism contract (a cached result is
/// only valid if recomputing it would give the same bytes). `None`
/// disables caching entirely.
///
/// Keys are derived from each input's canonical encoding under
/// `namespace`; distinct sweeps sharing an input type must use
/// distinct namespaces or they will serve each other's results.
///
/// Cache I/O errors are swallowed: an unreadable entry is a miss, a
/// failed store leaves the cache cold for the next run. Only the
/// closure's own panics propagate.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point. No entry
/// is stored for any point of a panicking sweep.
pub fn run_sweep_cached<I, T, F>(
    cache: Option<&CacheDir>,
    namespace: &str,
    inputs: Vec<I>,
    f: F,
) -> Vec<T>
where
    I: Send + Snapshot,
    T: Send + Snapshot,
    F: Fn(I) -> T + Sync,
{
    run_sweep_cached_on(crate::threads(), cache, namespace, inputs, f)
}

/// [`run_sweep_cached`] with an explicit thread count (bypassing
/// `CEDAR_THREADS`). Hit/miss classification is independent of the
/// thread count, so serial and parallel runs over the same cache are
/// interchangeable.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point.
pub fn run_sweep_cached_on<I, T, F>(
    threads: usize,
    cache: Option<&CacheDir>,
    namespace: &str,
    inputs: Vec<I>,
    f: F,
) -> Vec<T>
where
    I: Send + Snapshot,
    T: Send + Snapshot,
    F: Fn(I) -> T + Sync,
{
    match run_sweep_cached_cancellable_on(threads, cache, namespace, inputs, f, &CancelToken::new())
    {
        Ok(results) => results,
        Err(Cancelled) => unreachable!("a fresh token never cancels"),
    }
}

/// [`run_sweep_cached`] with a cooperative [`CancelToken`] consulted
/// between points.
///
/// Cache hits are still served (they cost no simulation work), but a
/// cancelled miss sub-sweep stores **nothing**: no partial entry from
/// a cancelled run can ever poison a later one, mirroring the
/// panicking-sweep guarantee.
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fired before every miss ran.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point. No entry
/// is stored for any point of a panicking or cancelled sweep.
pub fn run_sweep_cached_cancellable<I, T, F>(
    cache: Option<&CacheDir>,
    namespace: &str,
    inputs: Vec<I>,
    f: F,
    cancel: &CancelToken,
) -> Result<Vec<T>, Cancelled>
where
    I: Send + Snapshot,
    T: Send + Snapshot,
    F: Fn(I) -> T + Sync,
{
    run_sweep_cached_cancellable_on(crate::threads(), cache, namespace, inputs, f, cancel)
}

/// [`run_sweep_cached_cancellable`] with an explicit thread count.
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fired before every miss ran.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point.
pub fn run_sweep_cached_cancellable_on<I, T, F>(
    threads: usize,
    cache: Option<&CacheDir>,
    namespace: &str,
    inputs: Vec<I>,
    f: F,
    cancel: &CancelToken,
) -> Result<Vec<T>, Cancelled>
where
    I: Send + Snapshot,
    T: Send + Snapshot,
    F: Fn(I) -> T + Sync,
{
    let Some(cache) = cache else {
        return run_sweep_cancellable_on(threads, inputs, f, cancel);
    };

    let keys = sweep_keys(namespace, &inputs);
    let mut slots: Vec<Option<T>> = keys.iter().map(|key| cache.load(key)).collect();
    let misses: Vec<(usize, I)> = inputs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| slots[*i].is_none())
        .collect();
    if misses.is_empty() {
        return Ok(slots.into_iter().map(|s| s.expect("all hits")).collect());
    }

    // Misses run as their own ordered sub-sweep; a panic or a
    // cancellation anywhere in it propagates before any store happens.
    let indices: Vec<usize> = misses.iter().map(|(i, _)| *i).collect();
    let computed = run_sweep_cancellable_on(threads, misses, |(_, input)| f(input), cancel)?;
    for (i, result) in indices.into_iter().zip(computed) {
        let _ = cache.store(&keys[i], &result);
        slots[i] = Some(result);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every miss was computed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(name: &str) -> CacheDir {
        let dir = std::env::temp_dir().join(format!("cedar-exec-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheDir::new(dir).unwrap()
    }

    fn cleanup(cache: &CacheDir) {
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn warm_run_skips_every_computed_point() {
        let cache = scratch("warm");
        let calls = AtomicU64::new(0);
        let f = |x: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * x
        };
        let inputs: Vec<u64> = (0..50).collect();
        let cold = run_sweep_cached_on(4, Some(&cache), "sq", inputs.clone(), f);
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        let warm = run_sweep_cached_on(4, Some(&cache), "sq", inputs, f);
        assert_eq!(calls.load(Ordering::Relaxed), 50, "all points cached");
        assert_eq!(cold, warm);
        cleanup(&cache);
    }

    #[test]
    fn partial_cache_runs_only_the_misses_in_order() {
        let cache = scratch("partial");
        let inputs: Vec<u64> = (0..20).collect();
        let evens: Vec<u64> = inputs.iter().copied().filter(|x| x % 2 == 0).collect();
        let _ = run_sweep_cached_on(2, Some(&cache), "p", evens, |x| x + 100);
        let calls = AtomicU64::new(0);
        let all = run_sweep_cached_on(2, Some(&cache), "p", inputs, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 100
        });
        assert_eq!(calls.load(Ordering::Relaxed), 10, "only odd points ran");
        assert_eq!(all, (0..20).map(|x| x + 100).collect::<Vec<u64>>());
        cleanup(&cache);
    }

    #[test]
    fn namespaces_are_disjoint() {
        let cache = scratch("ns");
        let a = run_sweep_cached_on(1, Some(&cache), "double", vec![3u64], |x| x * 2);
        let b = run_sweep_cached_on(1, Some(&cache), "triple", vec![3u64], |x| x * 3);
        assert_eq!(a, vec![6]);
        assert_eq!(b, vec![9], "a 'triple' point must not hit 'double'");
        cleanup(&cache);
    }

    #[test]
    fn no_cache_is_a_plain_sweep() {
        let out = run_sweep_cached_on(4, None, "x", (0..10u64).collect(), |x| x + 1);
        assert_eq!(out, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let cache = scratch("edge");
        let empty: Vec<u64> = run_sweep_cached_on(4, Some(&cache), "e", Vec::new(), |x| x);
        assert!(empty.is_empty());
        let one = run_sweep_cached_on(4, Some(&cache), "e", vec![41u64], |x| x + 1);
        assert_eq!(one, vec![42]);
        let again = run_sweep_cached_on(1, Some(&cache), "e", vec![41u64], |_| -> u64 {
            panic!("must be served from cache")
        });
        assert_eq!(again, vec![42]);
        cleanup(&cache);
    }

    #[test]
    fn panicking_point_persists_no_entry() {
        let cache = scratch("panic");
        let inputs: Vec<u64> = (0..8).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sweep_cached_on(4, Some(&cache), "boom", inputs.clone(), |x| {
                assert!(x != 5, "point {x} exploded");
                x * 7
            })
        }));
        assert!(result.is_err(), "the panic must propagate");
        // Nothing — not even the points that succeeded before the
        // panic — may have been stored.
        let stored: Vec<PathBuf> = std::fs::read_dir(cache.root())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(
            stored.is_empty(),
            "poisoned sweep left entries behind: {stored:?}"
        );
        cleanup(&cache);
    }

    #[test]
    fn cancelled_sweep_persists_no_partial_entries() {
        // Serve's deadline/shutdown path cancels batches mid-flight;
        // a cancelled batch must leave the cache exactly as cold as it
        // found it — not even the points that completed may be stored.
        let cache = scratch("cancel");
        for threads in [1, 4] {
            let token = CancelToken::new();
            let ran = AtomicU64::new(0);
            let result = run_sweep_cached_cancellable_on(
                threads,
                Some(&cache),
                "c",
                (0u64..32).collect(),
                |x| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if x == 2 {
                        token.cancel();
                    }
                    x * 3
                },
                &token,
            );
            assert_eq!(result, Err(Cancelled), "{threads} threads");
            assert!(ran.load(Ordering::Relaxed) < 32, "{threads} threads");
            let stored: Vec<PathBuf> = std::fs::read_dir(cache.root())
                .unwrap()
                .map(|e| e.unwrap().path())
                .collect();
            assert!(
                stored.is_empty(),
                "cancelled sweep ({threads} threads) left entries behind: {stored:?}"
            );
        }
        cleanup(&cache);
    }

    #[test]
    fn cancelled_sweep_still_serves_existing_hits_nothing_new() {
        // Pre-warm half the points, then cancel a full sweep: the
        // cache must still hold exactly the pre-warmed entries.
        let cache = scratch("cancel-warm");
        let evens: Vec<u64> = (0..16).filter(|x| x % 2 == 0).collect();
        let _ = run_sweep_cached_on(2, Some(&cache), "cw", evens, |x| x + 1);
        let warmed = std::fs::read_dir(cache.root()).unwrap().count();
        assert_eq!(warmed, 8);
        let token = CancelToken::new();
        token.cancel();
        let result = run_sweep_cached_cancellable_on(
            2,
            Some(&cache),
            "cw",
            (0u64..16).collect(),
            |x| x + 1,
            &token,
        );
        assert_eq!(result, Err(Cancelled));
        assert_eq!(
            std::fs::read_dir(cache.root()).unwrap().count(),
            warmed,
            "a cancelled sweep must not grow the cache"
        );
        cleanup(&cache);
    }

    #[test]
    fn serial_and_parallel_runs_share_the_cache() {
        let cache = scratch("threads");
        let inputs: Vec<u64> = (0..30).collect();
        let serial = run_sweep_cached_on(1, Some(&cache), "t", inputs.clone(), |x| x ^ 0xCEDA);
        let calls = AtomicU64::new(0);
        let parallel = run_sweep_cached_on(8, Some(&cache), "t", inputs, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x ^ 0xCEDA
        });
        assert_eq!(serial, parallel);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            0,
            "a serial run's entries must hit from a parallel run"
        );
        cleanup(&cache);
    }
}
