//! The scoped work-stealing pool behind [`run_sweep`].
//!
//! Layout: every worker owns a deque of `(index, input)` tasks,
//! seeded round-robin so a sweep whose cost ramps with the input
//! (heavier CE counts, higher fault rates) starts roughly balanced.
//! A worker pops from the *back* of its own deque and, when empty,
//! steals from the *front* of its victims' — the classic owner-LIFO
//! / thief-FIFO discipline, here with a mutex per deque instead of
//! lock-free CAS loops because sweep points are whole simulations
//! (milliseconds to seconds each) and the arbitration cost is noise.
//!
//! Sweeps never spawn subtasks, so termination is trivial: once
//! every deque is empty it stays empty, and a worker that finds no
//! work anywhere exits. Results travel back over an `mpsc` channel
//! as `(index, result)` pairs and are committed to their input-order
//! slots after the scope joins, which is what makes the output
//! independent of scheduling.
//!
//! [`run_sweep`]: crate::run_sweep

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

type PointOutcome<T> = Result<T, Box<dyn std::any::Any + Send>>;

/// Runs `f` over every input on exactly `threads` workers and
/// returns the results in input order.
///
/// `threads <= 1`, one input or none bypasses the pool and runs
/// inline on the caller's thread — the serial reference execution
/// that parallel runs are guaranteed to reproduce bit-for-bit.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point — the
/// same one a serial execution would have surfaced first.
pub fn run_sweep_on<I, T, F>(threads: usize, inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    if threads <= 1 || n <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let workers = threads.min(n);

    // Seed the deques round-robin: task i lands on worker i % workers.
    let mut deques: Vec<Mutex<VecDeque<(usize, I)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (idx, input) in inputs.into_iter().enumerate() {
        deques[idx % workers]
            .get_mut()
            .expect("fresh mutex")
            .push_back((idx, input));
    }

    let (tx, rx) = mpsc::channel::<(usize, PointOutcome<T>)>();
    let deques = &deques;
    let f = &f;
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some((idx, input)) = next_task(deques, me) {
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(input)));
                    // A send can only fail if the receiver is gone,
                    // which means the caller is already unwinding.
                    let _ = tx.send((idx, outcome));
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<PointOutcome<T>>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in rx.try_iter() {
        debug_assert!(slots[idx].is_none(), "point {idx} committed twice");
        slots[idx] = Some(outcome);
    }
    slots
        .into_iter()
        .enumerate()
        .map(
            |(idx, slot)| match slot.unwrap_or_else(|| panic!("point {idx} produced no result")) {
                Ok(result) => result,
                Err(payload) => resume_unwind(payload),
            },
        )
        .collect()
}

/// Grabs the next task for worker `me`: own deque from the back,
/// then each victim's from the front. `None` means the sweep is
/// drained — tasks are never added after seeding, so empty is final.
fn next_task<I>(deques: &[Mutex<VecDeque<(usize, I)>>], me: usize) -> Option<(usize, I)> {
    if let Some(task) = deques[me].lock().expect("no poisoned deques").pop_back() {
        return Some(task);
    }
    let workers = deques.len();
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        if let Some(task) = deques[victim]
            .lock()
            .expect("no poisoned deques")
            .pop_front()
        {
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_point_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_sweep_on(4, (0usize..257).collect(), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.iter().copied().collect::<BTreeSet<_>>().len(), 257);
    }

    #[test]
    fn stealing_drains_a_lopsided_sweep() {
        // With round-robin seeding and 2 workers, all the heavy tasks
        // land on worker 0 (even indices). Worker 1 must steal them
        // for the sweep to finish; either way the output order holds.
        let inputs: Vec<u64> = (0..16).collect();
        let expected: Vec<u64> = inputs.iter().map(|&x| x + 1).collect();
        let out = run_sweep_on(2, inputs, |x| {
            if x % 2 == 0 {
                let mut acc = x;
                for i in 0..400_000u64 {
                    acc = acc.wrapping_mul(2862933555777941757).wrapping_add(i);
                }
                std::hint::black_box(acc);
            }
            x + 1
        });
        assert_eq!(out, expected);
    }

    #[test]
    fn inline_path_used_for_single_thread() {
        // The serial path must not spawn: observable via thread ids.
        let main_id = std::thread::current().id();
        let out = run_sweep_on(1, vec![(), (), ()], |()| std::thread::current().id());
        assert!(out.iter().all(|&id| id == main_id));
    }
}
