//! The scoped work-stealing pool behind [`run_sweep`].
//!
//! Layout: every worker owns a deque of `(index, input)` tasks,
//! seeded round-robin so a sweep whose cost ramps with the input
//! (heavier CE counts, higher fault rates) starts roughly balanced.
//! A worker pops from the *back* of its own deque and, when empty,
//! steals half a victim's deque from the *front* — the owner-LIFO /
//! thief-FIFO discipline with batched steals, here with a mutex per
//! deque instead of lock-free CAS loops because sweep points are
//! whole simulations (microseconds to seconds each) and a steal per
//! dry spell, rather than per point, keeps the lock traffic noise
//! even when points are short.
//!
//! Sweeps never spawn subtasks, so termination is trivial: once
//! every deque is empty it stays empty, and a worker that finds no
//! work anywhere exits. Results travel back over an `mpsc` channel
//! as `(index, result)` pairs and are committed to their input-order
//! slots after the scope joins, which is what makes the output
//! independent of scheduling.
//!
//! Cancellation is cooperative and point-granular: a [`CancelToken`]
//! is consulted between points, never inside one, so a cancelled
//! sweep stops at the next point boundary with every already-started
//! point run to completion. The serving tier uses this for deadline
//! and shutdown aborts; a cancelled sweep yields no results at all
//! (its callers must not observe a partial, order-broken output).
//!
//! [`run_sweep`]: crate::run_sweep

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

type PointOutcome<T> = Result<T, Box<dyn std::any::Any + Send>>;

/// A cooperative stop flag for sweep execution.
///
/// Cloning shares the flag; any clone can [`cancel`](CancelToken::cancel)
/// and every worker observes it at its next point boundary. Tokens are
/// cheap (one `Arc<AtomicBool>`) and a fresh token is never cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; already-running points
    /// finish, no further point starts.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Error returned by the cancellable sweep entry points when their
/// token fired before every point completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sweep cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// Runs `f` over every input on exactly `threads` workers and
/// returns the results in input order.
///
/// `threads <= 1`, one input or none bypasses the pool and runs
/// inline on the caller's thread — the serial reference execution
/// that parallel runs are guaranteed to reproduce bit-for-bit.
///
/// # Panics
///
/// Re-raises the panic of the lowest-indexed failing point — the
/// same one a serial execution would have surfaced first.
pub fn run_sweep_on<I, T, F>(threads: usize, inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    match run_sweep_cancellable_on(threads, inputs, f, &CancelToken::new()) {
        Ok(results) => results,
        Err(Cancelled) => unreachable!("a fresh token never cancels"),
    }
}

/// [`run_sweep_on`] with a cooperative [`CancelToken`] consulted
/// between points.
///
/// On `Ok` the output is bit-identical to the serial map, whatever
/// the thread count. On `Err(Cancelled)` at least one point never
/// ran; completed results are discarded so callers can never observe
/// a partial sweep. A token that fires only after every point has
/// already finished still returns `Ok` — cancellation is a request,
/// not a post-hoc invalidation.
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fired before every point ran.
///
/// # Panics
///
/// A panicking point takes precedence over cancellation: the
/// lowest-indexed panic among the points that ran is re-raised.
pub fn run_sweep_cancellable_on<I, T, F>(
    threads: usize,
    inputs: Vec<I>,
    f: F,
    cancel: &CancelToken,
) -> Result<Vec<T>, Cancelled>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    run_sweep_streaming_on(threads, inputs, f, cancel, |_, _| {})
}

/// [`run_sweep_cancellable_on`] that additionally calls
/// `notify(index, &result)` as each point completes, on whatever
/// thread ran it, *before* the sweep as a whole finishes.
///
/// This is the streaming primitive behind the serving tier's
/// dispatcher: per-job replies leave for the wire the moment their
/// point completes instead of waiting for the batch barrier. The
/// ordered `Vec` is still returned (bit-identical to serial) for
/// callers that want both.
///
/// Contract:
///
/// * `notify` runs exactly once per *completed* point — never for a
///   point that panicked or was skipped by cancellation.
/// * Notification order is scheduling-dependent; only the returned
///   `Vec` is input-ordered. `notify` must therefore derive everything
///   from `(index, result)`.
/// * On `Err(Cancelled)`, notifications already delivered stay
///   delivered. Callers that must resolve *every* point (the serving
///   tier's exactly-once reply guarantee) track notified indices in
///   the closure and resolve the rest themselves.
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fired before every point ran.
///
/// # Panics
///
/// A panicking point takes precedence over cancellation: the
/// lowest-indexed panic among the points that ran is re-raised.
pub fn run_sweep_streaming_on<I, T, F, N>(
    threads: usize,
    inputs: Vec<I>,
    f: F,
    cancel: &CancelToken,
    notify: N,
) -> Result<Vec<T>, Cancelled>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
    N: Fn(usize, &T) + Sync,
{
    let n = inputs.len();
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (idx, input) in inputs.into_iter().enumerate() {
            if cancel.is_cancelled() {
                return Err(Cancelled);
            }
            let result = f(input);
            notify(idx, &result);
            out.push(result);
        }
        return Ok(out);
    }
    let workers = threads.min(n);

    // Seed the deques round-robin: task i lands on worker i % workers.
    let mut deques: Vec<Mutex<VecDeque<(usize, I)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (idx, input) in inputs.into_iter().enumerate() {
        deques[idx % workers]
            .get_mut()
            .expect("fresh mutex")
            .push_back((idx, input));
    }

    let (tx, rx) = mpsc::channel::<(usize, PointOutcome<T>)>();
    let deques = &deques;
    let f = &f;
    let notify = &notify;
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let cancel = cancel.clone();
            scope.spawn(move || {
                while !cancel.is_cancelled() {
                    let Some((idx, input)) = next_task(deques, me) else {
                        break;
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(input)));
                    if let Ok(result) = &outcome {
                        notify(idx, result);
                    }
                    // A send can only fail if the receiver is gone,
                    // which means the caller is already unwinding.
                    let _ = tx.send((idx, outcome));
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<PointOutcome<T>>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in rx.try_iter() {
        debug_assert!(slots[idx].is_none(), "point {idx} committed twice");
        slots[idx] = Some(outcome);
    }
    // Panics win over cancellation, lowest index first — the same
    // failure a serial execution would have surfaced.
    if let Some(i) = slots.iter().position(|s| matches!(s, Some(Err(_)))) {
        match slots.swap_remove(i) {
            Some(Err(payload)) => resume_unwind(payload),
            _ => unreachable!("slot {i} held the first panic"),
        }
    }
    if slots.iter().any(Option::is_none) {
        debug_assert!(
            cancel.is_cancelled(),
            "a point vanished without cancellation"
        );
        return Err(Cancelled);
    }
    Ok(slots
        .into_iter()
        .map(|slot| match slot.expect("every slot checked complete") {
            Ok(result) => result,
            Err(_) => unreachable!("panics already re-raised"),
        })
        .collect())
}

/// Grabs the next task for worker `me`: own deque from the back,
/// then a *batch* from the front of each victim's in turn. `None`
/// means the sweep is drained — tasks are never added after seeding,
/// so empty is final.
///
/// Stealing takes half the victim's remaining tasks, not one: a
/// worker that went dry once is likely to keep stealing (its share of
/// the sweep was cheap), and re-visiting the victim's lock per point
/// serializes short-point sweeps on lock traffic. One steal per dry
/// spell keeps both deques busy for the rest of the imbalance.
fn next_task<I>(deques: &[Mutex<VecDeque<(usize, I)>>], me: usize) -> Option<(usize, I)> {
    if let Some(task) = deques[me].lock().expect("no poisoned deques").pop_back() {
        return Some(task);
    }
    let workers = deques.len();
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        let mut batch: VecDeque<(usize, I)> = {
            let mut v = deques[victim].lock().expect("no poisoned deques");
            let take = v.len().div_ceil(2);
            if take == 0 {
                continue;
            }
            v.drain(..take).collect()
        };
        let task = batch.pop_front().expect("batch holds at least one task");
        if !batch.is_empty() {
            let mut own = deques[me].lock().expect("no poisoned deques");
            debug_assert!(own.is_empty(), "stealing with local work buffered");
            *own = batch;
        }
        return Some(task);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_point_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_sweep_on(4, (0usize..257).collect(), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.iter().copied().collect::<BTreeSet<_>>().len(), 257);
    }

    #[test]
    fn stealing_drains_a_lopsided_sweep() {
        // With round-robin seeding and 2 workers, all the heavy tasks
        // land on worker 0 (even indices). Worker 1 must steal them
        // for the sweep to finish; either way the output order holds.
        let inputs: Vec<u64> = (0..16).collect();
        let expected: Vec<u64> = inputs.iter().map(|&x| x + 1).collect();
        let out = run_sweep_on(2, inputs, |x| {
            if x % 2 == 0 {
                let mut acc = x;
                for i in 0..400_000u64 {
                    acc = acc.wrapping_mul(2862933555777941757).wrapping_add(i);
                }
                std::hint::black_box(acc);
            }
            x + 1
        });
        assert_eq!(out, expected);
    }

    #[test]
    fn batched_stealing_runs_a_short_point_storm_exactly_once() {
        // Thousands of near-empty points: the worst case for per-point
        // steal locking. Every point must still run exactly once and
        // land in its input-order slot.
        let n = 10_000usize;
        let counter = AtomicUsize::new(0);
        let out = run_sweep_on(8, (0..n).collect(), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i * 3
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn inline_path_used_for_single_thread() {
        // The serial path must not spawn: observable via thread ids.
        let main_id = std::thread::current().id();
        let out = run_sweep_on(1, vec![(), (), ()], |()| std::thread::current().id());
        assert!(out.iter().all(|&id| id == main_id));
    }

    #[test]
    fn pre_cancelled_token_runs_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        for threads in [1, 4] {
            let result = run_sweep_cancellable_on(
                threads,
                (0u64..32).collect(),
                |x| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    x
                },
                &token,
            );
            assert_eq!(result, Err(Cancelled), "{threads} threads");
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no point may start");
    }

    #[test]
    fn mid_sweep_cancel_stops_at_a_point_boundary() {
        // The closure itself cancels after a few points — the most
        // deterministic way to fire mid-sweep. Serial and parallel
        // must both refuse to return a partial result.
        for threads in [1, 4] {
            let token = CancelToken::new();
            let ran = AtomicUsize::new(0);
            let result = run_sweep_cancellable_on(
                threads,
                (0u64..64).collect(),
                |x| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if x == 2 {
                        token.cancel();
                    }
                    x
                },
                &token,
            );
            assert_eq!(result, Err(Cancelled), "{threads} threads");
            let ran = ran.load(Ordering::Relaxed);
            assert!(ran < 64, "cancellation must stop the sweep, ran {ran}");
        }
    }

    #[test]
    fn late_cancel_after_completion_still_ok() {
        let token = CancelToken::new();
        let out = run_sweep_cancellable_on(4, (0u64..8).collect(), |x| x * 2, &token);
        token.cancel();
        assert_eq!(out, Ok((0..8).map(|x| x * 2).collect()));
    }

    #[test]
    #[should_panic(expected = "point 0 exploded")]
    fn panic_wins_over_cancellation() {
        // Point 0 both cancels the sweep and panics: the panic must be
        // re-raised, not swallowed into Err(Cancelled).
        let token = CancelToken::new();
        let _ = run_sweep_cancellable_on(
            4,
            vec![0u64, 1, 2, 3],
            |x| {
                if x == 0 {
                    token.cancel();
                    panic!("point 0 exploded");
                }
                x
            },
            &token,
        );
    }

    #[test]
    fn streaming_notifies_every_point_exactly_once() {
        for threads in [1, 4] {
            let notified = Mutex::new(vec![0u32; 64]);
            let out = run_sweep_streaming_on(
                threads,
                (0u64..64).collect(),
                |x| x * 2,
                &CancelToken::new(),
                |idx, &result| {
                    assert_eq!(result, (idx as u64) * 2, "notify sees the point's result");
                    notified.lock().unwrap()[idx] += 1;
                },
            )
            .unwrap();
            assert_eq!(out, (0u64..64).map(|x| x * 2).collect::<Vec<_>>());
            assert!(
                notified.lock().unwrap().iter().all(|&n| n == 1),
                "{threads} threads: every point notified exactly once"
            );
        }
    }

    #[test]
    fn streaming_cancel_keeps_delivered_notifications() {
        // Cancel fires mid-sweep; the sweep returns Err but the
        // notifications already delivered are the caller's record of
        // which points genuinely completed.
        for threads in [1, 4] {
            let token = CancelToken::new();
            let notified = Mutex::new(BTreeSet::new());
            let result = run_sweep_streaming_on(
                threads,
                (0u64..64).collect(),
                |x| {
                    if x == 3 {
                        token.cancel();
                    }
                    x
                },
                &token,
                |idx, _| {
                    notified.lock().unwrap().insert(idx);
                },
            );
            assert_eq!(result, Err(Cancelled), "{threads} threads");
            let seen = notified.lock().unwrap();
            assert!(!seen.is_empty(), "the cancelling point itself completed");
            assert!(seen.len() < 64, "cancellation stopped the sweep");
        }
    }

    #[test]
    fn streaming_never_notifies_a_panicked_point() {
        let notified = Mutex::new(BTreeSet::new());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_sweep_streaming_on(
                4,
                (0u64..16).collect(),
                |x| {
                    assert!(x != 5, "point {x} exploded");
                    x
                },
                &CancelToken::new(),
                |idx, _| {
                    notified.lock().unwrap().insert(idx);
                },
            )
        }));
        assert!(result.is_err(), "panic must propagate");
        assert!(
            !notified.lock().unwrap().contains(&5),
            "the panicked point must not have been notified"
        );
    }

    #[test]
    fn worker_panics_propagate_lowest_index_first() {
        let result = std::panic::catch_unwind(|| {
            run_sweep_on(4, (0u64..16).collect(), |x| {
                assert!(x % 5 != 3, "point {x} exploded");
                x
            })
        });
        let payload = result.expect_err("sweep must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert! payload is a String");
        assert_eq!(msg, "point 3 exploded");
    }
}
