//! Span-based request tracing.
//!
//! A [`TraceSink`] records begin/end/instant events on *tracks*. A
//! track is a `(pid, tid)` pair, mirroring the Chrome trace-event
//! model: the fabric uses `pid` = CE port and `tid` = packet id, so
//! one request's whole life — issue, forward network, memory-module
//! queue and service, return network — is one row in Perfetto, with
//! fault-plan events (drops, retries, abandonment, watchdog firings)
//! interleaved on the same row as instant markers.
//!
//! Timestamps are simulated cycles. The sink is append-only and the
//! appenders are the only mutation, so event order is the order the
//! simulation emitted them in — deterministic run to run.

use std::collections::BTreeMap;

use cedar_sim::stats::RunningStats;

/// The phase of a trace event, matching Chrome trace-event phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// A span opens (`"ph": "B"`).
    Begin,
    /// A span closes (`"ph": "E"`).
    End,
    /// A zero-duration marker (`"ph": "i"`).
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Track group (the fabric uses the issuing CE's port).
    pub pid: u64,
    /// Track within the group (the fabric uses the packet id).
    pub tid: u64,
    /// Span or marker name (a static label keeps recording
    /// allocation-free).
    pub name: &'static str,
    /// Begin, end, or instant.
    pub phase: SpanPhase,
    /// Simulated cycle of the event.
    pub at: u64,
    /// Optional single argument, exported into the event's `args`.
    pub arg: Option<(&'static str, u64)>,
}

/// The append-only event store.
///
/// # Examples
///
/// ```
/// use cedar_obs::trace::TraceSink;
///
/// let mut sink = TraceSink::new();
/// sink.begin(0, 7, "request", 10);
/// sink.end(0, 7, "request", 25);
/// assert_eq!(sink.events().len(), 2);
/// cedar_obs::trace::validate_events(sink.events()).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    /// Most recent `Begin`, for watchdog diagnostics: which span the
    /// simulation entered last before progress stopped.
    last_begin: Option<(&'static str, u64)>,
}

impl TraceSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Opens a span on track `(pid, tid)` at cycle `at`.
    pub fn begin(&mut self, pid: u64, tid: u64, name: &'static str, at: u64) {
        self.last_begin = Some((name, tid));
        self.events.push(TraceEvent {
            pid,
            tid,
            name,
            phase: SpanPhase::Begin,
            at,
            arg: None,
        });
    }

    /// Closes a span on track `(pid, tid)` at cycle `at`. Spans on one
    /// track must close in LIFO order (the Chrome B/E contract).
    pub fn end(&mut self, pid: u64, tid: u64, name: &'static str, at: u64) {
        self.events.push(TraceEvent {
            pid,
            tid,
            name,
            phase: SpanPhase::End,
            at,
            arg: None,
        });
    }

    /// Records an instant marker, optionally with one argument.
    pub fn instant(
        &mut self,
        pid: u64,
        tid: u64,
        name: &'static str,
        at: u64,
        arg: Option<(&'static str, u64)>,
    ) {
        self.events.push(TraceEvent {
            pid,
            tid,
            name,
            phase: SpanPhase::Instant,
            at,
            arg,
        });
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// `(name, tid)` of the most recently opened span, for watchdog
    /// diagnostics.
    #[must_use]
    pub fn last_span(&self) -> Option<(&'static str, u64)> {
        self.last_begin
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Checks the structural contract a well-formed trace stream must
/// satisfy: per track, timestamps never go backwards, `End` events
/// close the innermost open `Begin` of the same name (LIFO), and every
/// span opened is eventually closed.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    let mut open: BTreeMap<(u64, u64), Vec<&'static str>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let track = (e.pid, e.tid);
        if let Some(&prev) = last_ts.get(&track) {
            if e.at < prev {
                return Err(format!(
                    "event {i} ({}) on track {track:?} goes back in time: {} < {prev}",
                    e.name, e.at
                ));
            }
        }
        last_ts.insert(track, e.at);
        match e.phase {
            SpanPhase::Begin => open.entry(track).or_default().push(e.name),
            SpanPhase::End => match open.entry(track).or_default().pop() {
                Some(top) if top == e.name => {}
                Some(top) => {
                    return Err(format!(
                        "event {i}: end of '{}' on track {track:?} but '{top}' is innermost",
                        e.name
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: end of '{}' on track {track:?} with no open span",
                        e.name
                    ));
                }
            },
            SpanPhase::Instant => {}
        }
    }
    for (track, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("span '{name}' on track {track:?} never closed"));
        }
    }
    Ok(())
}

/// Per-span-name duration statistics over a balanced event stream:
/// each `Begin`/`End` pair contributes `end - begin` cycles under its
/// name. The input must pass [`validate_events`]; unbalanced spans are
/// skipped.
#[must_use]
pub fn stage_breakdown(events: &[TraceEvent]) -> BTreeMap<&'static str, RunningStats> {
    let mut open: BTreeMap<(u64, u64, &'static str), Vec<u64>> = BTreeMap::new();
    let mut out: BTreeMap<&'static str, RunningStats> = BTreeMap::new();
    for e in events {
        let key = (e.pid, e.tid, e.name);
        match e.phase {
            SpanPhase::Begin => open.entry(key).or_default().push(e.at),
            SpanPhase::End => {
                if let Some(started) = open.entry(key).or_default().pop() {
                    out.entry(e.name)
                        .or_default()
                        .record(e.at.saturating_sub(started) as f64);
                }
            }
            SpanPhase::Instant => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_nested_spans_validate() {
        let mut sink = TraceSink::new();
        sink.begin(0, 1, "request", 0);
        sink.begin(0, 1, "forward_net", 0);
        sink.instant(0, 1, "retry", 5, Some(("attempt", 2)));
        sink.end(0, 1, "forward_net", 9);
        sink.end(0, 1, "request", 12);
        validate_events(sink.events()).unwrap();
        assert_eq!(sink.last_span(), Some(("forward_net", 1)));
    }

    #[test]
    fn unclosed_span_is_rejected() {
        let mut sink = TraceSink::new();
        sink.begin(0, 1, "request", 0);
        let err = validate_events(sink.events()).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn mismatched_end_is_rejected() {
        let mut sink = TraceSink::new();
        sink.begin(0, 1, "a", 0);
        sink.end(0, 1, "b", 1);
        let err = validate_events(sink.events()).unwrap_err();
        assert!(err.contains("innermost"), "{err}");
    }

    #[test]
    fn end_without_begin_is_rejected() {
        let mut sink = TraceSink::new();
        sink.end(0, 1, "a", 1);
        let err = validate_events(sink.events()).unwrap_err();
        assert!(err.contains("no open span"), "{err}");
    }

    #[test]
    fn backwards_time_on_a_track_is_rejected() {
        let mut sink = TraceSink::new();
        sink.begin(0, 1, "a", 10);
        sink.end(0, 1, "a", 4);
        let err = validate_events(sink.events()).unwrap_err();
        assert!(err.contains("back in time"), "{err}");
    }

    #[test]
    fn tracks_are_independent() {
        let mut sink = TraceSink::new();
        sink.begin(0, 1, "a", 10);
        // Another track may run earlier in time; only per-track order
        // matters.
        sink.begin(0, 2, "a", 3);
        sink.end(0, 2, "a", 5);
        sink.end(0, 1, "a", 12);
        validate_events(sink.events()).unwrap();
    }

    #[test]
    fn breakdown_measures_span_durations() {
        let mut sink = TraceSink::new();
        sink.begin(0, 1, "svc", 10);
        sink.end(0, 1, "svc", 14);
        sink.begin(0, 2, "svc", 20);
        sink.end(0, 2, "svc", 30);
        let stats = stage_breakdown(sink.events());
        let svc = &stats["svc"];
        assert_eq!(svc.count(), 2);
        assert!((svc.mean() - 7.0).abs() < 1e-12);
        assert_eq!(svc.min(), Some(4.0));
        assert_eq!(svc.max(), Some(10.0));
    }
}
