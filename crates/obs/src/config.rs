//! Observability configuration.
//!
//! [`ObsConfig`] selects which telemetry layers are live. The disabled
//! configuration is the default everywhere: a component holding a
//! disabled [`crate::Obs`] handle performs a single `Option` check per
//! instrumentation point and touches no shared state, so every
//! experiment reproduces its un-instrumented numbers bit for bit.

/// Which telemetry layers are collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Collect named counters/gauges/histograms in the
    /// [`crate::metrics::MetricsRegistry`].
    pub metrics: bool,
    /// Record request-path spans and instant events in the
    /// [`crate::trace::TraceSink`].
    pub tracing: bool,
}

impl ObsConfig {
    /// Everything off — the zero-overhead default.
    #[must_use]
    pub const fn disabled() -> Self {
        ObsConfig {
            metrics: false,
            tracing: false,
        }
    }

    /// Metrics and tracing both on.
    #[must_use]
    pub const fn enabled() -> Self {
        ObsConfig {
            metrics: true,
            tracing: true,
        }
    }

    /// Counters only: no per-request span stream, just the registry.
    #[must_use]
    pub const fn metrics_only() -> Self {
        ObsConfig {
            metrics: true,
            tracing: false,
        }
    }

    /// Whether neither layer is collecting.
    #[must_use]
    pub const fn is_disabled(&self) -> bool {
        !self.metrics && !self.tracing
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(ObsConfig::disabled().is_disabled());
        assert!(!ObsConfig::enabled().is_disabled());
        assert!(!ObsConfig::metrics_only().is_disabled());
        assert!(!ObsConfig::metrics_only().tracing);
        assert_eq!(ObsConfig::default(), ObsConfig::disabled());
    }
}
