//! Deterministic exporters: Chrome trace-event JSON and
//! Prometheus-style text exposition.
//!
//! Both exporters are pure functions over already-deterministic inputs
//! (the append-ordered [`TraceEvent`] stream, the name-sorted
//! [`MetricsRegistry`] views), so identical simulations yield
//! byte-identical exports. The module also carries the matching
//! consumers used by tests and the CI smoke step: a minimal
//! well-formedness JSON checker and a line-by-line exposition parser.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;
use crate::trace::{SpanPhase, TraceEvent};

/// Serialises a trace stream as Chrome trace-event JSON
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing` and
/// Perfetto. One simulated cycle maps to one microsecond of trace
/// time, so cycle counts read directly off the ruler.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match e.phase {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
        };
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            escape_json(e.name),
            e.at,
            e.pid,
            e.tid
        );
        if e.phase == SpanPhase::Instant {
            // Thread-scoped instant: renders as a marker on its track.
            out.push_str(",\"s\":\"t\"");
        }
        if let Some((key, value)) = e.arg {
            let _ = write!(out, ",\"args\":{{\"{}\":{value}}}", escape_json(key));
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the registry in Prometheus text exposition format. Metric
/// names are sanitised (`.` → `_`) and prefixed `cedar_`; histograms
/// expose cumulative `_bucket{le="..."}` series plus `_sum` and
/// `_count`. Every metric carries `# HELP` (naming the original
/// dot-path) and `# TYPE` lines. Output is sorted by metric name —
/// deterministic.
#[must_use]
pub fn prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let n = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {n} {}",
            escape_help(&help_text(name, "counter"))
        );
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in registry.gauges() {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# HELP {n} {}", escape_help(&help_text(name, "gauge")));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", format_f64(value));
    }
    for (name, entry) in registry.histograms() {
        let n = sanitize_name(name);
        let _ = writeln!(
            out,
            "# HELP {n} {}",
            escape_help(&help_text(name, "histogram"))
        );
        let _ = writeln!(out, "# TYPE {n} histogram");
        let width = entry.bins.bin_width();
        let mut cumulative = 0u64;
        for i in 0..entry.bins.bin_count() {
            cumulative += entry.bins.bin(i).unwrap_or(0);
            let le = (i as u64 + 1) * width;
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(
            out,
            "{n}_bucket{{le=\"+Inf\"}} {}",
            cumulative + entry.bins.overflow()
        );
        let _ = writeln!(out, "{n}_sum {}", entry.sum);
        let _ = writeln!(out, "{n}_count {}", entry.bins.total());
    }
    out
}

/// The deterministic help string for a metric: its kind and the
/// original dot-path name the sanitised exposition name was made from.
fn help_text(name: &str, kind: &str) -> String {
    format!("cedar {kind} for dot-path metric {name}")
}

/// Escapes a `# HELP` text per the exposition format: backslash and
/// newline are the only characters with escape sequences there.
#[must_use]
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps a dot-path metric name onto a legal Prometheus metric name.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("cedar_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn format_f64(v: f64) -> String {
    // `{}` on f64 is shortest-round-trip in Rust — deterministic and
    // parseable back; integers print without a trailing ".0".
    format!("{v}")
}

/// Escapes a string for embedding inside a JSON string literal
/// (quotes, backslashes, control characters). Shared by the trace
/// exporter here and the serving tier's wire protocol.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Checks that `input` is a single well-formed JSON value. This is a
/// structural validator, not a full deserialiser: it exists so the
/// trace binary and CI smoke step can prove the Chrome export parses
/// without external dependencies.
///
/// # Errors
///
/// Returns the byte offset and a description of the first syntax
/// error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let Some(&b) = bytes.get(*pos) else {
        return Err(format!("unexpected end of input at byte {pos}"));
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => parse_string(bytes, pos),
        b't' => parse_literal(bytes, pos, "true"),
        b'f' => parse_literal(bytes, pos, "false"),
        b'n' => parse_literal(bytes, pos, "null"),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte '{}' at {pos}", other as char)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        saw_digit |= bytes[*pos].is_ascii_digit();
        *pos += 1;
    }
    if saw_digit {
        Ok(())
    } else {
        Err(format!("bad number at byte {start}"))
    }
}

/// Parses Prometheus text exposition back into `sample line → value`,
/// where the key is the full series (name plus any labels). Comment
/// (`#`) and blank lines are skipped, but `# TYPE` lines must name a
/// known type and `# HELP` lines must name a metric. Label values are
/// scanned escape-aware, so a value containing spaces, `}` or `\"`
/// never confuses the series/value split, and an optional trailing
/// integer timestamp is accepted and ignored.
///
/// # Errors
///
/// Returns the 1-based line number and cause of the first malformed
/// line.
pub fn parse_prometheus(input: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let _name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without metric name"))?;
                    match parts.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        other => {
                            return Err(format!("line {lineno}: unknown TYPE {other:?}"));
                        }
                    }
                }
                Some("HELP") => {
                    let _name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: HELP without metric name"))?;
                    // The help text itself is free-form (with \\ and \n
                    // escapes) and carries no samples; skip it.
                }
                _ => {} // plain comment
            }
            continue;
        }
        let (series, value) = split_series(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if out.insert(series.to_owned(), value).is_some() {
            return Err(format!("line {lineno}: duplicate series '{series}'"));
        }
    }
    Ok(out)
}

/// Splits one exposition sample line into its series key (metric name
/// plus the label block exactly as written) and its value, respecting
/// `\"`/`\\`/`\n` escapes inside label values and tolerating an
/// optional trailing integer timestamp.
fn split_series(line: &str) -> Result<(&str, f64), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    // Metric name: everything up to a label block or whitespace.
    while pos < bytes.len() && !matches!(bytes[pos], b'{' | b' ' | b'\t') {
        pos += 1;
    }
    if pos == 0 {
        return Err("empty series name".to_owned());
    }
    if bytes.get(pos) == Some(&b'{') {
        pos += 1;
        let mut in_quotes = false;
        let mut closed = false;
        while pos < bytes.len() {
            match bytes[pos] {
                b'\\' if in_quotes => {
                    // An escape consumes the next byte, whatever it is;
                    // a dangling backslash at end-of-line is malformed.
                    if pos + 1 >= bytes.len() {
                        return Err("dangling escape in label value".to_owned());
                    }
                    pos += 1;
                }
                b'"' => in_quotes = !in_quotes,
                b'}' if !in_quotes => {
                    pos += 1;
                    closed = true;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        if !closed {
            return Err(if in_quotes {
                "unterminated label value".to_owned()
            } else {
                "unterminated label block".to_owned()
            });
        }
    }
    let series = &line[..pos];
    let mut rest = line[pos..].split_whitespace();
    let value = rest.next().ok_or_else(|| "no value".to_owned())?;
    let value: f64 = value.parse().map_err(|e| format!("bad value: {e}"))?;
    if let Some(ts) = rest.next() {
        // The exposition format allows one integer timestamp (ms).
        if ts.parse::<i64>().is_err() {
            return Err(format!("bad timestamp {ts:?}"));
        }
    }
    if let Some(junk) = rest.next() {
        return Err(format!("trailing data {junk:?}"));
    }
    Ok((series, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;

    fn sample_sink() -> TraceSink {
        let mut sink = TraceSink::new();
        sink.begin(3, 77, "request", 10);
        sink.begin(3, 77, "forward_net", 10);
        sink.instant(3, 77, "retry", 14, Some(("attempt", 1)));
        sink.end(3, 77, "forward_net", 20);
        sink.end(3, 77, "request", 31);
        sink
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let json = chrome_trace(sample_sink().events());
        validate_json(&json).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\",") || json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"attempt\":1}"));
        assert!(json.contains("\"pid\":3"));
        assert!(json.contains("\"tid\":77"));
    }

    #[test]
    fn chrome_trace_of_empty_stream_is_valid() {
        let json = chrome_trace(&[]);
        validate_json(&json).unwrap();
    }

    #[test]
    fn json_validator_rejects_garbage() {
        assert!(validate_json("{\"a\":").is_err());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{broken}").is_err());
        assert!(validate_json("[1, 2, {\"k\": [true, null, -3.5e2]}]").is_ok());
    }

    #[test]
    fn prometheus_round_trips_through_parser() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("net.fwd.blocked_transfers");
        reg.add(c, 42);
        let g = reg.gauge("net.fwd.queue_depth");
        reg.set(g, 2.5);
        let h = reg.histogram("mem.latency_cycles", 4, 10);
        for s in [5, 15, 99] {
            reg.record(h, s);
        }
        let text = prometheus(&reg);
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(samples["cedar_net_fwd_blocked_transfers"], 42.0);
        assert_eq!(samples["cedar_net_fwd_queue_depth"], 2.5);
        assert_eq!(samples["cedar_mem_latency_cycles_bucket{le=\"10\"}"], 1.0);
        assert_eq!(samples["cedar_mem_latency_cycles_bucket{le=\"20\"}"], 2.0);
        assert_eq!(samples["cedar_mem_latency_cycles_bucket{le=\"+Inf\"}"], 3.0);
        assert_eq!(samples["cedar_mem_latency_cycles_sum"], 119.0);
        assert_eq!(samples["cedar_mem_latency_cycles_count"], 3.0);
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_monotone() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", 8, 2);
        for s in 0..16 {
            reg.record(h, s);
        }
        let text = prometheus(&reg);
        let samples = parse_prometheus(&text).unwrap();
        let mut prev = 0.0;
        for i in 1..=8u64 {
            let v = samples[&format!("cedar_lat_bucket{{le=\"{}\"}}", i * 2)];
            assert!(v >= prev, "bucket le={} not monotone", i * 2);
            prev = v;
        }
        assert_eq!(samples["cedar_lat_bucket{le=\"+Inf\"}"], 16.0);
    }

    #[test]
    fn parser_flags_malformed_lines() {
        assert!(parse_prometheus("novalue").is_err());
        assert!(parse_prometheus("x notanumber").is_err());
        assert!(parse_prometheus("# TYPE x bogus").is_err());
        assert!(parse_prometheus("x 1\nx 2").is_err());
        assert!(parse_prometheus("# plain comment\n\nx 1").is_ok());
        assert!(parse_prometheus("# HELP").is_err());
        assert!(parse_prometheus("# HELP x free text with spaces").is_ok());
    }

    #[test]
    fn exposition_carries_help_and_type_for_every_metric() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("net.fwd.blocked");
        reg.inc(c);
        let g = reg.gauge("queue.depth");
        reg.set(g, 3.0);
        let h = reg.histogram("lat", 2, 10);
        reg.record(h, 5);
        let text = prometheus(&reg);
        for (name, kind) in [
            ("cedar_net_fwd_blocked", "counter"),
            ("cedar_queue_depth", "gauge"),
            ("cedar_lat", "histogram"),
        ] {
            assert!(
                text.contains(&format!("# HELP {name} ")),
                "missing HELP for {name} in:\n{text}"
            );
            assert!(
                text.contains(&format!("# TYPE {name} {kind}")),
                "missing TYPE for {name} in:\n{text}"
            );
        }
        // HELP names the original dot-path, so a scraper can map back.
        assert!(text.contains("net.fwd.blocked"), "{text}");
        // And the parser round-trips the annotated exposition.
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(samples["cedar_net_fwd_blocked"], 1.0);
    }

    #[test]
    fn help_escaping_round_trips() {
        assert_eq!(escape_help("plain"), "plain");
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        // An escaped multi-line help text still parses as one line.
        let text = format!("# HELP cedar_x {}\ncedar_x 1\n", escape_help("two\nlines"));
        assert_eq!(parse_prometheus(&text).unwrap()["cedar_x"], 1.0);
    }

    #[test]
    fn parser_handles_escaped_label_values() {
        // Label values with spaces, escaped quotes, escaped
        // backslashes and a closing brace must not confuse the
        // series/value split.
        let text = "x{msg=\"a b\"} 1\ny{msg=\"say \\\"hi\\\" now\"} 2\nz{p=\"C:\\\\tmp\"} 3\nw{m=\"a}b\"} 4\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples["x{msg=\"a b\"}"], 1.0);
        assert_eq!(samples["y{msg=\"say \\\"hi\\\" now\"}"], 2.0);
        assert_eq!(samples["z{p=\"C:\\\\tmp\"}"], 3.0);
        assert_eq!(samples["w{m=\"a}b\"}"], 4.0);
    }

    #[test]
    fn parser_accepts_timestamps_and_rejects_garbage_tails() {
        let samples = parse_prometheus("x{l=\"v\"} 1.5 1700000000000\n").unwrap();
        assert_eq!(samples["x{l=\"v\"}"], 1.5);
        assert!(parse_prometheus("x 1 notatimestamp").is_err());
        assert!(parse_prometheus("x 1 2 3").is_err());
        assert!(parse_prometheus("x{l=\"unterminated} 1").is_err());
        assert!(parse_prometheus("x{l=\"v\" 1").is_err());
        assert!(parse_prometheus("x{l=\"v\\").is_err());
    }

    #[test]
    fn sanitize_maps_dot_paths() {
        assert_eq!(
            sanitize_name("net.fwd.stage0.blocked"),
            "cedar_net_fwd_stage0_blocked"
        );
    }

    #[test]
    fn exports_are_deterministic() {
        let sink = sample_sink();
        assert_eq!(chrome_trace(sink.events()), chrome_trace(sink.events()));
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        reg.inc(c);
        assert_eq!(prometheus(&reg), prometheus(&reg));
    }
}
