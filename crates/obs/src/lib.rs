//! System-wide telemetry for the Cedar reproduction.
//!
//! The paper's Cedar machine carried dedicated monitoring hardware —
//! event tracers and histogrammers wired to backplane signals — that
//! observed the system without perturbing it. `cedar-sim::monitor`
//! models that hardware; this crate is the software layer above it:
//!
//! - a [`metrics::MetricsRegistry`] of named counters, gauges and
//!   histograms, hierarchical by dot-path, updated through interned
//!   handles cheap enough for the network's per-cycle loops;
//! - a [`trace::TraceSink`] of request-path spans, threading one
//!   request id from CE issue through the forward omega network, the
//!   memory module (queue and service, including bank-conflict
//!   stalls), and the return network, with fault-plan events (drops,
//!   stalls, retries, watchdog firings) interleaved on the same
//!   per-request track;
//! - two deterministic exporters: Chrome trace-event JSON
//!   ([`export::chrome_trace`], loadable in `chrome://tracing` or
//!   Perfetto) and Prometheus text exposition
//!   ([`export::prometheus`]).
//!
//! Everything hangs off an [`Obs`] handle. A disabled handle is a
//! `None` — each instrumentation point costs one branch and touches no
//! shared state, so runs with [`ObsConfig::disabled`] reproduce
//! un-instrumented results bit for bit. The simulator is
//! single-threaded, so enabled handles share one
//! [`Rc<RefCell<ObsInner>>`].
//!
//! ```
//! use cedar_obs::{Obs, ObsConfig};
//!
//! let obs = Obs::new(ObsConfig::enabled());
//! let served = obs.counter("mem.module00.served").unwrap();
//! obs.inc(served);
//! obs.span_begin(0, 42, "request", 100);
//! obs.span_end(0, 42, "request", 131);
//! assert_eq!(obs.counter_value("mem.module00.served"), 1);
//! let json = obs.chrome_trace();
//! cedar_obs::export::validate_json(&json).unwrap();
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod export;
pub mod json;
pub mod metrics;
pub mod trace;

use std::cell::RefCell;
use std::rc::Rc;

pub use config::ObsConfig;
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use trace::{SpanPhase, TraceEvent, TraceSink};

/// The shared mutable telemetry state behind an enabled [`Obs`].
#[derive(Debug, Default)]
pub struct ObsInner {
    /// Which layers are live.
    pub config: ObsConfig,
    /// The metrics store (live when `config.metrics`).
    pub metrics: MetricsRegistry,
    /// The span stream (live when `config.tracing`).
    pub trace: TraceSink,
}

/// A cloneable telemetry handle.
///
/// Components store one and call the convenience methods below at
/// their instrumentation points. [`Obs::disabled`] carries no state at
/// all: every method is a single `Option` branch that does nothing, so
/// disabled runs are bit-identical to un-instrumented ones.
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Rc<RefCell<ObsInner>>>);

impl Obs {
    /// Creates a handle for `config`. A fully disabled config yields a
    /// stateless handle.
    #[must_use]
    pub fn new(config: ObsConfig) -> Self {
        if config.is_disabled() {
            return Obs(None);
        }
        Obs(Some(Rc::new(RefCell::new(ObsInner {
            config,
            metrics: MetricsRegistry::new(),
            trace: TraceSink::new(),
        }))))
    }

    /// The zero-overhead handle: no allocation, every call a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Obs(None)
    }

    /// Whether this handle records anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Whether span tracing is live on this handle.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inner| inner.borrow().config.tracing)
    }

    /// Whether metrics collection is live on this handle.
    #[must_use]
    pub fn metrics_enabled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inner| inner.borrow().config.metrics)
    }

    // ---- metrics -----------------------------------------------------

    /// Interns a counter. `None` when metrics are off — callers cache
    /// the `Option<CounterId>` and the disabled case stays branch-only.
    pub fn counter(&self, name: &str) -> Option<CounterId> {
        let inner = self.0.as_ref()?;
        let mut inner = inner.borrow_mut();
        if !inner.config.metrics {
            return None;
        }
        Some(inner.metrics.counter(name))
    }

    /// Adds one to an interned counter.
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Adds `n` to an interned counter.
    pub fn add(&self, id: CounterId, n: u64) {
        if let Some(inner) = self.0.as_ref() {
            inner.borrow_mut().metrics.add(id, n);
        }
    }

    /// Adds `n` to the counter named `name`, interning on first use.
    /// For cold paths where caching a [`CounterId`] isn't worth it.
    pub fn bump(&self, name: &str, n: u64) {
        if let Some(inner) = self.0.as_ref() {
            let mut inner = inner.borrow_mut();
            if inner.config.metrics {
                let id = inner.metrics.counter(name);
                inner.metrics.add(id, n);
            }
        }
    }

    /// Current value of the counter named `name` (0 when disabled or
    /// absent).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.borrow().metrics.counter_value(name))
    }

    /// Interns a gauge (`None` when metrics are off).
    pub fn gauge(&self, name: &str) -> Option<GaugeId> {
        let inner = self.0.as_ref()?;
        let mut inner = inner.borrow_mut();
        if !inner.config.metrics {
            return None;
        }
        Some(inner.metrics.gauge(name))
    }

    /// Sets an interned gauge.
    pub fn set_gauge(&self, id: GaugeId, value: f64) {
        if let Some(inner) = self.0.as_ref() {
            inner.borrow_mut().metrics.set(id, value);
        }
    }

    /// Interns a histogram (`None` when metrics are off).
    pub fn histogram(&self, name: &str, bins: usize, bin_width: u64) -> Option<HistogramId> {
        let inner = self.0.as_ref()?;
        let mut inner = inner.borrow_mut();
        if !inner.config.metrics {
            return None;
        }
        Some(inner.metrics.histogram(name, bins, bin_width))
    }

    /// Records a sample into an interned histogram.
    pub fn record(&self, id: HistogramId, sample: u64) {
        if let Some(inner) = self.0.as_ref() {
            inner.borrow_mut().metrics.record(id, sample);
        }
    }

    // ---- tracing -----------------------------------------------------

    /// Opens a span on track `(pid, tid)` if tracing is live.
    pub fn span_begin(&self, pid: u64, tid: u64, name: &'static str, at: u64) {
        if let Some(inner) = self.0.as_ref() {
            let mut inner = inner.borrow_mut();
            if inner.config.tracing {
                inner.trace.begin(pid, tid, name, at);
            }
        }
    }

    /// Closes a span on track `(pid, tid)` if tracing is live.
    pub fn span_end(&self, pid: u64, tid: u64, name: &'static str, at: u64) {
        if let Some(inner) = self.0.as_ref() {
            let mut inner = inner.borrow_mut();
            if inner.config.tracing {
                inner.trace.end(pid, tid, name, at);
            }
        }
    }

    /// Records an instant marker if tracing is live.
    pub fn span_instant(
        &self,
        pid: u64,
        tid: u64,
        name: &'static str,
        at: u64,
        arg: Option<(&'static str, u64)>,
    ) {
        if let Some(inner) = self.0.as_ref() {
            let mut inner = inner.borrow_mut();
            if inner.config.tracing {
                inner.trace.instant(pid, tid, name, at, arg);
            }
        }
    }

    /// `(name, tid)` of the most recently opened span, for watchdog
    /// diagnostics.
    #[must_use]
    pub fn last_span(&self) -> Option<(&'static str, u64)> {
        self.0
            .as_ref()
            .and_then(|inner| inner.borrow().trace.last_span())
    }

    // ---- export ------------------------------------------------------

    /// Runs `f` over the inner state, if enabled.
    pub fn with<R>(&self, f: impl FnOnce(&ObsInner) -> R) -> Option<R> {
        self.0.as_ref().map(|inner| f(&inner.borrow()))
    }

    /// The Chrome trace-event JSON for everything recorded so far
    /// (an empty-but-valid document when disabled).
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        self.with(|inner| export::chrome_trace(inner.trace.events()))
            .unwrap_or_else(|| export::chrome_trace(&[]))
    }

    /// The Prometheus text exposition for the current registry (empty
    /// when disabled).
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.with(|inner| export::prometheus(&inner.metrics))
            .unwrap_or_default()
    }

    /// Validates the recorded span stream (balanced, monotone per
    /// track). Trivially `Ok` when disabled.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found.
    pub fn validate_trace(&self) -> Result<(), String> {
        self.with(|inner| trace::validate_events(inner.trace.events()))
            .unwrap_or(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.counter("x").is_none());
        obs.bump("x", 5);
        assert_eq!(obs.counter_value("x"), 0);
        obs.span_begin(0, 1, "request", 0);
        assert_eq!(obs.last_span(), None);
        assert!(obs.validate_trace().is_ok());
        assert_eq!(obs.prometheus(), "");
        export::validate_json(&obs.chrome_trace()).unwrap();
    }

    #[test]
    fn disabled_config_allocates_nothing() {
        let obs = Obs::new(ObsConfig::disabled());
        assert!(!obs.is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new(ObsConfig::enabled());
        let other = obs.clone();
        let id = obs.counter("shared").unwrap();
        other.add(id, 3);
        assert_eq!(obs.counter_value("shared"), 3);
    }

    #[test]
    fn metrics_only_suppresses_tracing() {
        let obs = Obs::new(ObsConfig::metrics_only());
        assert!(obs.metrics_enabled());
        assert!(!obs.tracing_enabled());
        obs.span_begin(0, 1, "request", 0);
        obs.span_end(0, 1, "request", 9);
        assert_eq!(obs.with(|i| i.trace.len()).unwrap(), 0);
        obs.bump("c", 2);
        assert_eq!(obs.counter_value("c"), 2);
    }

    #[test]
    fn spans_flow_through_to_export() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.span_begin(1, 9, "request", 5);
        obs.span_instant(1, 9, "retry", 7, Some(("attempt", 1)));
        obs.span_end(1, 9, "request", 12);
        assert_eq!(obs.last_span(), Some(("request", 9)));
        obs.validate_trace().unwrap();
        let json = obs.chrome_trace();
        export::validate_json(&json).unwrap();
        assert!(json.contains("\"retry\""));
    }
}
