//! The hierarchical metrics registry.
//!
//! A [`MetricsRegistry`] is a flat store of named counters, gauges and
//! histograms. Hierarchy is by dot-path convention
//! (`net.fwd.stage0.blocked_transfers`), which keeps lookups a single
//! map probe and lets [`rollup`](MetricsRegistry::rollup) aggregate a
//! subtree. Hot paths intern a name once into a [`CounterId`] /
//! [`GaugeId`] / [`HistogramId`] and then update by index — the same
//! discipline as [`cedar_sim::monitor::SignalId`], and the reason the
//! registry is cheap enough to live inside the network's per-cycle
//! loops.
//!
//! Primitives are the monitor-hardware building blocks from
//! [`cedar_sim::stats`]: saturating [`Counter`]s, Welford
//! [`RunningStats`], fixed-bin [`Histogram`]s.

use std::collections::BTreeMap;

use cedar_sim::stats::{Counter, Histogram, RunningStats};

/// Handle to an interned counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to an interned gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to an interned histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// One registered histogram: the bin store plus exact sum/count for
/// the exporter's `_sum`/`_count` series and streaming moments.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramEntry {
    /// The fixed-bin store.
    pub bins: Histogram,
    /// Exact sum of recorded samples (bin midpoints approximate;
    /// exposition wants the true sum).
    pub sum: u64,
    /// Streaming mean/min/max over recorded samples.
    pub stats: RunningStats,
}

/// The registry of named metrics.
///
/// # Examples
///
/// ```
/// use cedar_obs::metrics::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let c = reg.counter("mem.module00.served");
/// reg.add(c, 3);
/// assert_eq!(reg.counter_value("mem.module00.served"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counter_index: BTreeMap<String, usize>,
    counters: Vec<(String, Counter)>,
    gauge_index: BTreeMap<String, usize>,
    gauges: Vec<(String, f64)>,
    histogram_index: BTreeMap<String, usize>,
    histograms: Vec<(String, HistogramEntry)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Interns a counter, returning its handle (idempotent per name).
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_index.get(name) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counter_index.insert(name.to_owned(), i);
        self.counters.push((name.to_owned(), Counter::new()));
        CounterId(i)
    }

    /// Adds `n` to a counter, saturating.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1.add(n);
    }

    /// Adds one to a counter.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// The current value of the counter named `name` (0 if absent).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map_or(0, |&i| self.counters[i].1.value())
    }

    /// Interns a gauge, returning its handle (idempotent per name).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&i) = self.gauge_index.get(name) {
            return GaugeId(i);
        }
        let i = self.gauges.len();
        self.gauge_index.insert(name.to_owned(), i);
        self.gauges.push((name.to_owned(), 0.0));
        GaugeId(i)
    }

    /// Sets a gauge to `value`.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// The current value of the gauge named `name` (0.0 if absent).
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.gauge_index
            .get(name)
            .map_or(0.0, |&i| self.gauges[i].1)
    }

    /// Interns a histogram with `bins` buckets of `bin_width` units,
    /// returning its handle. Idempotent per name; the shape of the
    /// first interning wins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` or `bin_width` is zero (via
    /// [`Histogram::new`]).
    pub fn histogram(&mut self, name: &str, bins: usize, bin_width: u64) -> HistogramId {
        if let Some(&i) = self.histogram_index.get(name) {
            return HistogramId(i);
        }
        let i = self.histograms.len();
        self.histogram_index.insert(name.to_owned(), i);
        self.histograms.push((
            name.to_owned(),
            HistogramEntry {
                bins: Histogram::new(bins, bin_width),
                sum: 0,
                stats: RunningStats::new(),
            },
        ));
        HistogramId(i)
    }

    /// Records one sample into a histogram.
    pub fn record(&mut self, id: HistogramId, sample: u64) {
        let entry = &mut self.histograms[id.0].1;
        entry.bins.record(sample);
        entry.sum = entry.sum.saturating_add(sample);
        entry.stats.record(sample as f64);
    }

    /// The histogram entry named `name`, if registered.
    #[must_use]
    pub fn histogram_entry(&self, name: &str) -> Option<&HistogramEntry> {
        self.histogram_index
            .get(name)
            .map(|&i| &self.histograms[i].1)
    }

    /// Every counter as `(name, value)`, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_index
            .iter()
            .map(|(name, &i)| (name.as_str(), self.counters[i].1.value()))
    }

    /// Every gauge as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_index
            .iter()
            .map(|(name, &i)| (name.as_str(), self.gauges[i].1))
    }

    /// Every histogram as `(name, entry)`, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramEntry)> {
        self.histogram_index
            .iter()
            .map(|(name, &i)| (name.as_str(), &self.histograms[i].1))
    }

    /// Sums every counter whose dot-path starts with `prefix` — the
    /// hierarchical view (e.g. `rollup("mem.")` totals all memory
    /// counters).
    #[must_use]
    pub fn rollup(&self, prefix: &str) -> u64 {
        self.counters()
            .filter(|(name, _)| name.starts_with(prefix))
            .fold(0u64, |acc, (_, v)| acc.saturating_add(v))
    }

    /// Number of registered metrics across all kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

cedar_snap::snapshot_struct!(HistogramEntry { bins, sum, stats });
// Interned ids are indices into these vectors, so a registry restored
// from a snapshot keeps every previously handed-out id valid.
cedar_snap::snapshot_struct!(MetricsRegistry {
    counter_index,
    counters,
    gauge_index,
    gauges,
    histogram_index,
    histograms,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_intern_is_idempotent() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        reg.inc(a);
        reg.add(b, 4);
        assert_eq!(reg.counter_value("x"), 5);
        assert_eq!(reg.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_hold_last_value() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        reg.set(g, 3.5);
        reg.set(g, 1.25);
        assert_eq!(reg.gauge_value("depth"), 1.25);
    }

    #[test]
    fn histogram_tracks_exact_sum_and_stats() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", 16, 4);
        for s in [1, 7, 70] {
            reg.record(h, s);
        }
        let entry = reg.histogram_entry("lat").unwrap();
        assert_eq!(entry.sum, 78);
        assert_eq!(entry.bins.total(), 3);
        assert_eq!(entry.bins.overflow(), 1, "70 is past 16*4");
        assert_eq!(entry.stats.count(), 3);
        assert_eq!(entry.stats.max(), Some(70.0));
    }

    #[test]
    fn rollup_aggregates_a_subtree() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("mem.module00.served");
        let b = reg.counter("mem.module01.served");
        let c = reg.counter("net.fwd.blocked");
        reg.add(a, 2);
        reg.add(b, 3);
        reg.add(c, 100);
        assert_eq!(reg.rollup("mem."), 5);
        assert_eq!(reg.rollup(""), 105);
    }

    #[test]
    fn iteration_is_name_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b");
        reg.counter("a");
        let names: Vec<&str> = reg.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
