//! Minimal JSON value parsing shared across the workspace.
//!
//! `cedar-obs` carries the repository's hand-rolled JSON *producers*
//! and a structural validator; consumers — the serving tier's wire
//! protocol, the `cedar-track` benchmark-history ingesters — also need
//! the values themselves (job type, CE counts, measured rates) out of
//! a document. This parser mirrors the validator's structure byte for
//! byte but builds a [`Json`] tree. Output still goes through
//! [`crate::export::escape_json`] — one escaping discipline across the
//! whole workspace.
//!
//! The dialect is exactly RFC 8259 minus two deliberate bounds chosen
//! for a network-facing parser: nesting beyond [`MAX_DEPTH`] and
//! inputs beyond [`MAX_LEN`] bytes are rejected, so a hostile request
//! line cannot blow the parse stack or memory.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted from the wire.
pub const MAX_DEPTH: usize = 32;

/// Maximum request line length in bytes accepted from the wire.
pub const MAX_LEN: usize = 64 * 1024;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key-sorted; duplicate keys keep the last value,
    /// like every mainstream parser.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative
    /// integral number that fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= 2f64.powi(53) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one complete JSON value, rejecting trailing data.
///
/// # Errors
///
/// Returns a description of the first syntax error, with its byte
/// offset.
pub fn parse(input: &str) -> Result<Json, String> {
    if input.len() > MAX_LEN {
        return Err(format!("input of {} bytes exceeds {MAX_LEN}", input.len()));
    }
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    let Some(&b) = bytes.get(*pos) else {
        return Err(format!("unexpected end of input at byte {pos}"));
    };
    match b {
        b'{' => parse_object(bytes, pos, depth),
        b'[' => parse_array(bytes, pos, depth),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' => parse_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null").map(|()| Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte '{}' at {pos}", other as char)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            *pos += 1;
                            let d = bytes
                                .get(*pos)
                                .and_then(|c| (*c as char).to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            code = code * 16 + d;
                        }
                        // Surrogates collapse to the replacement char;
                        // the protocol is ASCII in practice.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            _ => {
                // Advance one whole UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_shaped_object() {
        let v = parse(
            r#"{"op":"run","id":"c1-7","job":{"type":"hotspot","ces":4,"fraction":0.05},"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(250));
        let job = v.get("job").unwrap();
        assert_eq!(job.get("ces").unwrap().as_u64(), Some(4));
        assert_eq!(job.get("fraction").unwrap().as_f64(), Some(0.05));
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage_like_the_obs_validator() {
        for bad in ["{\"a\":", "[1,2,]", "{\"a\":1} extra", "\"open", "{broken}"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert!(parse("[1, 2, {\"k\": [true, null, -3.5e2]}]").is_ok());
    }

    #[test]
    fn rejects_hostile_depth_and_length() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let long = format!("\"{}\"", "x".repeat(MAX_LEN));
        assert!(parse(&long).is_err());
    }

    #[test]
    fn number_edges() {
        assert_eq!(parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), None);
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn everything_we_emit_parses_and_validates() {
        // The serve protocol renders with cedar-obs escaping; both the
        // obs validator and this parser must accept it.
        let line = format!(
            "{{\"status\":\"ok\",\"reason\":\"{}\"}}",
            crate::export::escape_json("a\"b\\c\nd")
        );
        crate::export::validate_json(&line).unwrap();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("reason").unwrap().as_str(), Some("a\"b\\c\nd"));
    }
}
