//! Cluster observability: per-worker health and supervision counters.
//!
//! Mirrors the serving tier's `ServeObs` shape — a thread-safe wrapper
//! over [`MetricsRegistry`] with every supervision metric pre-interned
//! so exports show zeros, not missing series, before anything fails.
//! The coordinator feeds it during a run; `prometheus()` renders the
//! standard exposition via `cedar-obs`.

use std::sync::Mutex;

use cedar_obs::export;
use cedar_obs::metrics::MetricsRegistry;

/// Re-issue latency histogram shape: ticks from a job's first issue to
/// its commit. 64 bins of 8 ticks covers multi-restart recoveries;
/// the overflow bin catches pathological tails.
const HIST_BINS: usize = 64;
const HIST_BIN_WIDTH_TICKS: u64 = 8;

/// Shared metrics for a cluster coordinator.
#[derive(Debug)]
pub struct ClusterObs {
    metrics: Mutex<MetricsRegistry>,
}

impl Default for ClusterObs {
    fn default() -> Self {
        ClusterObs::new()
    }
}

impl ClusterObs {
    /// Creates the registry with every supervision metric
    /// pre-interned.
    #[must_use]
    pub fn new() -> Self {
        let mut m = MetricsRegistry::new();
        for name in [
            "cluster.jobs.dispatched",
            "cluster.jobs.committed",
            "cluster.jobs.cache_hits",
            "cluster.jobs.reissued",
            "cluster.results.stale",
            "cluster.worker.exits",
            "cluster.worker.hangs_reaped",
            "cluster.worker.garbage_frames",
            "cluster.worker.restarts",
            "cluster.worker.lost",
        ] {
            let id = m.counter(name);
            m.add(id, 0);
        }
        let _ = m.gauge("cluster.workers.alive");
        let _ = m.histogram(
            "cluster.commit.latency_ticks",
            HIST_BINS,
            HIST_BIN_WIDTH_TICKS,
        );
        ClusterObs {
            metrics: Mutex::new(m),
        }
    }

    /// Adds `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.counter(name);
        m.add(id, n);
    }

    /// Adds one to the counter named `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge named `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.gauge(name);
        m.set(id, value);
    }

    /// Publishes one worker slot's health: liveness, incarnation and
    /// restart count, as per-worker gauges.
    pub fn worker_health(&self, worker: u32, alive: bool, incarnation: u32, restarts: u32) {
        self.set_gauge(
            &format!("cluster.worker.{worker}.alive"),
            if alive { 1.0 } else { 0.0 },
        );
        self.set_gauge(
            &format!("cluster.worker.{worker}.incarnation"),
            f64::from(incarnation),
        );
        self.set_gauge(
            &format!("cluster.worker.{worker}.restarts"),
            f64::from(restarts),
        );
    }

    /// Records one job's first-issue→commit latency in ticks.
    pub fn commit_latency(&self, ticks: u64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.histogram(
            "cluster.commit.latency_ticks",
            HIST_BINS,
            HIST_BIN_WIDTH_TICKS,
        );
        m.record(id, ticks);
    }

    /// Current value of the counter named `name`.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .expect("metrics lock poisoned")
            .counter_value(name)
    }

    /// Renders the Prometheus exposition of every metric.
    #[must_use]
    pub fn prometheus(&self) -> String {
        export::prometheus(&self.metrics.lock().expect("metrics lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervision_metrics_are_pre_interned() {
        let obs = ClusterObs::new();
        let text = obs.prometheus();
        for series in [
            "cluster_jobs_dispatched",
            "cluster_worker_exits",
            "cluster_worker_restarts",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }

    #[test]
    fn worker_health_exports_per_worker_series() {
        let obs = ClusterObs::new();
        obs.worker_health(2, true, 3, 2);
        obs.inc("cluster.worker.exits");
        obs.commit_latency(17);
        let text = obs.prometheus();
        assert!(text.contains("cluster_worker_2_alive 1"), "{text}");
        assert!(text.contains("cluster_worker_2_incarnation 3"), "{text}");
        assert_eq!(obs.counter_value("cluster.worker.exits"), 1);
    }
}
