//! Cluster observability: per-worker health and supervision counters.
//!
//! Mirrors the serving tier's `ServeObs` shape — a thread-safe wrapper
//! over [`MetricsRegistry`] with every supervision metric pre-interned
//! so exports show zeros, not missing series, before anything fails.
//! The coordinator feeds it during a run; `prometheus()` renders the
//! standard exposition via `cedar-obs`, and [`MetricsServer`] exposes
//! it over plain HTTP for scrapers, exactly like the serving tier's
//! `/metrics` endpoint.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cedar_obs::export;
use cedar_obs::metrics::MetricsRegistry;

/// Re-issue latency histogram shape: ticks from a job's first issue to
/// its commit. 64 bins of 8 ticks covers multi-restart recoveries;
/// the overflow bin catches pathological tails.
const HIST_BINS: usize = 64;
const HIST_BIN_WIDTH_TICKS: u64 = 8;

/// Shared metrics for a cluster coordinator.
#[derive(Debug)]
pub struct ClusterObs {
    metrics: Mutex<MetricsRegistry>,
}

impl Default for ClusterObs {
    fn default() -> Self {
        ClusterObs::new()
    }
}

impl ClusterObs {
    /// Creates the registry with every supervision metric
    /// pre-interned.
    #[must_use]
    pub fn new() -> Self {
        let mut m = MetricsRegistry::new();
        for name in [
            "cluster.jobs.dispatched",
            "cluster.jobs.committed",
            "cluster.jobs.cache_hits",
            "cluster.jobs.reissued",
            "cluster.results.stale",
            "cluster.worker.exits",
            "cluster.worker.hangs_reaped",
            "cluster.worker.garbage_frames",
            "cluster.worker.restarts",
            "cluster.worker.lost",
        ] {
            let id = m.counter(name);
            m.add(id, 0);
        }
        let _ = m.gauge("cluster.workers.alive");
        let _ = m.histogram(
            "cluster.commit.latency_ticks",
            HIST_BINS,
            HIST_BIN_WIDTH_TICKS,
        );
        ClusterObs {
            metrics: Mutex::new(m),
        }
    }

    /// Adds `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.counter(name);
        m.add(id, n);
    }

    /// Adds one to the counter named `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the gauge named `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.gauge(name);
        m.set(id, value);
    }

    /// Publishes one worker slot's health: liveness, incarnation and
    /// restart count, as per-worker gauges.
    pub fn worker_health(&self, worker: u32, alive: bool, incarnation: u32, restarts: u32) {
        self.set_gauge(
            &format!("cluster.worker.{worker}.alive"),
            if alive { 1.0 } else { 0.0 },
        );
        self.set_gauge(
            &format!("cluster.worker.{worker}.incarnation"),
            f64::from(incarnation),
        );
        self.set_gauge(
            &format!("cluster.worker.{worker}.restarts"),
            f64::from(restarts),
        );
    }

    /// Records one job's first-issue→commit latency in ticks.
    pub fn commit_latency(&self, ticks: u64) {
        let mut m = self.metrics.lock().expect("metrics lock poisoned");
        let id = m.histogram(
            "cluster.commit.latency_ticks",
            HIST_BINS,
            HIST_BIN_WIDTH_TICKS,
        );
        m.record(id, ticks);
    }

    /// Current value of the counter named `name`.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics
            .lock()
            .expect("metrics lock poisoned")
            .counter_value(name)
    }

    /// Renders the Prometheus exposition of every metric.
    #[must_use]
    pub fn prometheus(&self) -> String {
        export::prometheus(&self.metrics.lock().expect("metrics lock poisoned"))
    }
}

/// A minimal HTTP scrape endpoint for a coordinator's [`ClusterObs`]:
/// `GET /metrics` answers the Prometheus exposition and closes, any
/// other path is a 404. One accept thread, one connection at a time —
/// a scraper's cadence, not a serving tier's.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// answering scrapes of `obs` in a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error as a description.
    pub fn start(addr: &str, obs: Arc<ClusterObs>) -> Result<MetricsServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    serve_scrape(stream, &obs);
                }
            }
        });
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

fn serve_scrape(stream: TcpStream, obs: &ClusterObs) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).unwrap_or(0) == 0 {
        return;
    }
    // Drain the header block so the client sees a clean close.
    let mut hdr = String::new();
    loop {
        hdr.clear();
        match reader.read_line(&mut hdr) {
            Ok(0) => break,
            Ok(_) if hdr.trim().is_empty() => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, ctype, body) = if path == "/metrics" {
        ("200 OK", "text/plain; version=0.0.4", obs.prometheus())
    } else {
        ("404 Not Found", "text/plain", "not found\n".to_owned())
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervision_metrics_are_pre_interned() {
        let obs = ClusterObs::new();
        let text = obs.prometheus();
        for series in [
            "cluster_jobs_dispatched",
            "cluster_worker_exits",
            "cluster_worker_restarts",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
    }

    #[test]
    fn metrics_server_answers_scrapes_with_help_and_type() {
        let obs = Arc::new(ClusterObs::new());
        obs.inc("cluster.jobs.committed");
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&obs)).unwrap();
        let addr = server.addr();

        let scrape = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut text = String::new();
            use std::io::Read as _;
            s.read_to_string(&mut text).unwrap();
            text
        };
        let reply = scrape("/metrics");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("cedar_cluster_jobs_committed 1"), "{reply}");
        assert!(reply.contains("# TYPE cedar_cluster_jobs_committed counter"));
        assert!(reply.contains("# HELP cedar_cluster_jobs_committed"));
        // The body must round-trip through the exposition parser.
        let body = reply.split("\r\n\r\n").nth(1).unwrap();
        let parsed = export::parse_prometheus(body).unwrap();
        assert_eq!(parsed.get("cedar_cluster_jobs_committed"), Some(&1.0));

        assert!(scrape("/nope").starts_with("HTTP/1.1 404"));
        server.stop();
    }

    #[test]
    fn worker_health_exports_per_worker_series() {
        let obs = ClusterObs::new();
        obs.worker_health(2, true, 3, 2);
        obs.inc("cluster.worker.exits");
        obs.commit_latency(17);
        let text = obs.prometheus();
        assert!(text.contains("cluster_worker_2_alive 1"), "{text}");
        assert!(text.contains("cluster_worker_2_incarnation 3"), "{text}");
        assert_eq!(obs.counter_value("cluster.worker.exits"), 1);
    }
}
