//! The worker side: job families and the worker process main loop.
//!
//! A cluster worker is the *same binary* as its coordinator, re-exec'd
//! with `CEDAR_CLUSTER_WORKER` set to the coordinator's address. Any
//! binary that wants to serve as a worker builds a [`JobRegistry`] of
//! named job families and calls [`maybe_worker`] first thing in
//! `main`; in coordinator (or ordinary CLI) invocations the call is a
//! no-op, and in worker invocations it connects back, serves jobs
//! until told to stop, and exits without returning.
//!
//! Families are keyed by stable versioned names (`"cedar.mix/1"`), and
//! their functions must honour the same determinism contract as
//! [`cedar_exec::run_sweep`] points: the result must be a pure
//! function of the input, because the coordinator asserts cluster
//! results bit-identical to a serial sweep and commits them to the
//! shared content-addressed cache.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use cedar_faults::{parse_directive, WorkerFaultKind};
use cedar_snap::{read_frame, write_frame, FrameError, Snapshot};

use crate::proto::{decode_msg, encode_msg, FromWorker, ToWorker};

/// Environment variable carrying the coordinator address; its presence
/// is what makes an invocation a worker.
pub const WORKER_ENV: &str = "CEDAR_CLUSTER_WORKER";
/// Environment variable carrying the worker's slot index.
pub const ID_ENV: &str = "CEDAR_CLUSTER_ID";
/// Environment variable carrying the worker's incarnation number.
pub const INCARNATION_ENV: &str = "CEDAR_CLUSTER_INCARNATION";
/// Environment variable carrying an optional chaos directive
/// (`kind:after_jobs`, see [`cedar_faults::WorkerFault::directive`]).
pub const CHAOS_ENV: &str = "CEDAR_CLUSTER_CHAOS";

/// How long a chaos-stalled worker plays dead before giving up and
/// exiting on its own: long enough for any reasonable heartbeat budget
/// to reap it, short enough that an orphaned stalled process cannot
/// outlive its test run by much.
const STALL_CAP: Duration = Duration::from_secs(30);

type FamilyFn = Box<dyn Fn(&[u8]) -> Result<Vec<u8>, String> + Send + Sync>;

/// A table of named job families a worker can execute.
#[derive(Default)]
pub struct JobRegistry {
    families: BTreeMap<String, FamilyFn>,
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry")
            .field("families", &self.families.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl JobRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        JobRegistry::default()
    }

    /// Registers `f` as the function behind `family`. Inputs arrive
    /// and results leave as sealed snapshot envelopes; a panicking
    /// `f` is reported as a job failure, not a worker crash.
    pub fn register<I, T, F>(&mut self, family: &str, f: F)
    where
        I: Snapshot,
        T: Snapshot,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        self.families.insert(
            family.to_owned(),
            Box::new(move |input_bytes| {
                let input = I::from_snapshot_bytes(input_bytes)
                    .map_err(|e| format!("undecodable input: {e}"))?;
                match catch_unwind(AssertUnwindSafe(|| f(input))) {
                    Ok(result) => Ok(result.to_snapshot_bytes()),
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic".to_owned());
                        Err(format!("family function panicked: {msg}"))
                    }
                }
            }),
        );
    }

    /// Executes one job: envelope bytes in, envelope bytes out.
    ///
    /// # Errors
    ///
    /// Returns a description when the family is unknown, the input
    /// does not decode, or the family function panics.
    pub fn run(&self, family: &str, input: &[u8]) -> Result<Vec<u8>, String> {
        match self.families.get(family) {
            Some(f) => f(input),
            None => Err(format!("unknown job family {family:?}")),
        }
    }

    /// Registered family names, sorted.
    pub fn families(&self) -> impl Iterator<Item = &str> {
        self.families.keys().map(String::as_str)
    }
}

/// If this invocation is a worker (`CEDAR_CLUSTER_WORKER` is set),
/// runs the worker loop and **exits the process**; otherwise returns
/// immediately. Call this first thing in `main` of any binary that
/// should be spawnable as a cluster worker.
pub fn maybe_worker(registry: &JobRegistry) {
    if let Ok(addr) = std::env::var(WORKER_ENV) {
        let code = worker_main(registry, &addr);
        std::process::exit(code);
    }
}

fn env_u32(name: &str) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The worker process main loop: connect, introduce ourselves, serve
/// jobs until shutdown or coordinator loss. Returns the exit code.
fn worker_main(registry: &JobRegistry, addr: &str) -> i32 {
    let worker = env_u32(ID_ENV);
    let incarnation = env_u32(INCARNATION_ENV);
    let chaos = std::env::var(CHAOS_ENV)
        .ok()
        .and_then(|d| parse_directive(&d));

    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 3;
    };
    let hello = FromWorker::Hello {
        worker,
        incarnation,
        pid: std::process::id(),
    };
    if write_frame(&mut stream, &encode_msg(&hello)).is_err() {
        return 3;
    }

    let mut jobs_done: u32 = 0;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            // Coordinator gone (cleanly or not): nothing left to do.
            Err(FrameError::Eof | FrameError::Io(_)) => return 0,
            // A corrupt frame from the coordinator means the stream
            // position is unreliable; bail rather than guess.
            Err(_) => return 4,
        };
        let Ok(msg) = decode_msg::<ToWorker>(&payload) else {
            return 4;
        };
        match msg {
            ToWorker::Job { job, family, input } => {
                if let Some((kind, after_jobs)) = chaos {
                    if jobs_done == after_jobs {
                        match kind {
                            // Die mid-job, no reply, no cleanup — the
                            // supervisor sees a bare EOF.
                            WorkerFaultKind::Kill => std::process::exit(9),
                            // Play dead: stop reading and replying but
                            // stay connected, so only the heartbeat
                            // watchdog can tell.
                            WorkerFaultKind::Stall => {
                                std::thread::sleep(STALL_CAP);
                                std::process::exit(3);
                            }
                            // Reply with bytes that cannot frame: the
                            // supervisor's checksum path must catch it.
                            WorkerFaultKind::Corrupt => {
                                let _ = stream.write_all(&[0x5A; 64]);
                                let _ = stream.flush();
                                // Keep running; the coordinator will
                                // kill this incarnation.
                                continue;
                            }
                        }
                    }
                }
                let reply = match registry.run(&family, &input) {
                    Ok(result) => {
                        jobs_done += 1;
                        FromWorker::Done { job, result }
                    }
                    Err(reason) => FromWorker::Fail { job, reason },
                };
                if write_frame(&mut stream, &encode_msg(&reply)).is_err() {
                    return 0;
                }
            }
            ToWorker::Ping { nonce } => {
                if write_frame(&mut stream, &encode_msg(&FromWorker::Pong { nonce })).is_err() {
                    return 0;
                }
            }
            ToWorker::Shutdown => return 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_runs_registered_families() {
        let mut reg = JobRegistry::new();
        reg.register("sq/1", |x: u64| x * x);
        reg.register("neg/1", |x: i64| -x);
        assert_eq!(
            reg.families().collect::<Vec<_>>(),
            vec!["neg/1", "sq/1"],
            "sorted names"
        );
        let out = reg.run("sq/1", &7u64.to_snapshot_bytes()).unwrap();
        assert_eq!(u64::from_snapshot_bytes(&out).unwrap(), 49);
    }

    #[test]
    fn unknown_family_and_bad_input_are_typed_failures() {
        let mut reg = JobRegistry::new();
        reg.register("sq/1", |x: u64| x * x);
        assert!(reg
            .run("nope/1", &1u64.to_snapshot_bytes())
            .unwrap_err()
            .contains("unknown job family"));
        assert!(reg
            .run("sq/1", b"not an envelope")
            .unwrap_err()
            .contains("undecodable input"));
    }

    #[test]
    fn panicking_family_is_a_job_failure_not_a_crash() {
        let mut reg = JobRegistry::new();
        reg.register("boom/1", |x: u64| {
            assert!(x != 13, "unlucky input");
            x
        });
        assert_eq!(
            u64::from_snapshot_bytes(&reg.run("boom/1", &7u64.to_snapshot_bytes()).unwrap())
                .unwrap(),
            7
        );
        let err = reg.run("boom/1", &13u64.to_snapshot_bytes()).unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("unlucky input"), "{err}");
    }
}
