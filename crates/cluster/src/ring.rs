//! Consistent-hash placement of sweep points onto worker slots.
//!
//! Each worker slot owns a set of virtual nodes on a 64-bit hash ring;
//! a job lands on the first *alive* worker at or after its key's hash.
//! Two properties matter to the supervisor:
//!
//! * **Determinism** — placement is a pure function of (key, fleet
//!   size, alive set), so a re-run of the same sweep dispatches the
//!   same way and a chaos experiment is replayable.
//! * **Stability** — when a worker dies, only the jobs it owned move
//!   (to their next alive successor on the ring); every other job
//!   keeps its assignment, so a restart storm cannot reshuffle the
//!   whole sweep.

use cedar_snap::fnv1a;

/// Virtual nodes per worker: enough to spread load across a handful
/// of workers without making ring construction measurable.
const VNODES: u32 = 16;

/// SplitMix64 finalizer over an FNV-1a hash. FNV alone has weak
/// avalanche: similar keys (and content-addressed keys *are* similar
/// hex strings) land clustered on the ring, starving workers. The
/// finalizer spreads them uniformly.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over `workers` slots.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(hash, worker)` points.
    points: Vec<(u64, u32)>,
    workers: u32,
}

impl HashRing {
    /// Builds the ring for a fleet of `workers` slots.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero — an empty fleet has no ring.
    #[must_use]
    pub fn new(workers: u32) -> Self {
        assert!(workers > 0, "ring needs at least one worker");
        let mut points = Vec::with_capacity((workers * VNODES) as usize);
        for w in 0..workers {
            for v in 0..VNODES {
                let label = format!("cedar.cluster/worker/{w}/vnode/{v}");
                points.push((mix64(fnv1a(label.as_bytes())), w));
            }
        }
        points.sort_unstable();
        HashRing { points, workers }
    }

    /// Number of worker slots the ring was built for.
    #[must_use]
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Hash of a content-addressed sweep key (the 16-hex-digit string
    /// from [`Snapshot::snapshot_key`](cedar_snap::Snapshot::snapshot_key)).
    #[must_use]
    pub fn key_hash(key: &str) -> u64 {
        mix64(fnv1a(key.as_bytes()))
    }

    /// The first worker at or after `key_hash` for which `eligible`
    /// returns true, scanning each distinct worker at most once.
    /// Returns `None` when no worker is eligible.
    pub fn assign<F: FnMut(u32) -> bool>(&self, key_hash: u64, mut eligible: F) -> Option<u32> {
        let start = self.points.partition_point(|&(h, _)| h < key_hash);
        let mut seen = vec![false; self.workers as usize];
        let mut distinct = 0;
        for i in 0..self.points.len() {
            let (_, w) = self.points[(start + i) % self.points.len()];
            if seen[w as usize] {
                continue;
            }
            seen[w as usize] = true;
            if eligible(w) {
                return Some(w);
            }
            distinct += 1;
            if distinct == self.workers {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<String> {
        (0..n).map(|i| format!("{i:016x}")).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let ring = HashRing::new(4);
        for key in keys(100) {
            let h = HashRing::key_hash(&key);
            let a = ring.assign(h, |_| true).unwrap();
            let b = ring.assign(h, |_| true).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn load_spreads_over_all_workers() {
        let ring = HashRing::new(4);
        let mut counts = [0u32; 4];
        for key in keys(400) {
            counts[ring.assign(HashRing::key_hash(&key), |_| true).unwrap() as usize] += 1;
        }
        for (w, &c) in counts.iter().enumerate() {
            assert!(c > 0, "worker {w} got no jobs: {counts:?}");
        }
    }

    #[test]
    fn losing_a_worker_only_moves_its_own_jobs() {
        let ring = HashRing::new(4);
        let dead = 2u32;
        for key in keys(200) {
            let h = HashRing::key_hash(&key);
            let before = ring.assign(h, |_| true).unwrap();
            let after = ring.assign(h, |w| w != dead).unwrap();
            if before != dead {
                assert_eq!(after, before, "job on a live worker must not move");
            } else {
                assert_ne!(after, dead);
            }
        }
    }

    #[test]
    fn no_eligible_worker_is_none() {
        let ring = HashRing::new(3);
        assert_eq!(ring.assign(12345, |_| false), None);
        assert_eq!(ring.assign(12345, |w| w == 1), Some(1));
    }
}
