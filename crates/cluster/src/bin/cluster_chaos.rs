//! End-to-end chaos driver for the supervised cluster — the CI
//! `cluster-chaos` job's entry point.
//!
//! ```text
//! cluster_chaos [--workers N] [--points N] [--seed N]
//!               [--kills N] [--stalls N] [--corrupts N]
//!               [--cache DIR] [--expect-warm]
//!               [--report PATH] [--track HISTORY] [--metrics-addr ADDR]
//! ```
//!
//! Runs the reference sweep twice, in one process tree: serially
//! in-process for the golden result, then across a supervised fleet of
//! re-exec'd workers under a seeded fault plan. Exits non-zero unless
//! the merged cluster sweep is bit-identical to the serial golden, the
//! journal shows exactly one commit per point, and (with `--cache`) no
//! corrupt entry was left behind. `--expect-warm` additionally demands
//! the run was served entirely from a pre-warmed cache with zero
//! dispatches — the second CI invocation.
//!
//! The binary is its own worker: the coordinator re-execs it with
//! `CEDAR_CLUSTER_WORKER` set, and [`cedar_cluster::maybe_worker`]
//! diverts those copies before argument parsing.
//!
//! `--report PATH` writes the chaos run's timings and supervision
//! counters as a `cedar-bench-cluster/1` JSON report; `--track
//! HISTORY` appends the same numbers to the cedar-track benchmark
//! history. `--metrics-addr ADDR` (e.g. `127.0.0.1:0`) serves the
//! coordinator's `ClusterObs` as a Prometheus `/metrics` endpoint for
//! the duration of the run, mirroring the serving tier.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cedar_cluster::{families, run_cluster_sweep, ClusterConfig, ClusterObs, MetricsServer};
use cedar_exec::run_sweep_on;
use cedar_faults::{RetryPolicy, WorkerFaultConfig, WorkerFaultPlan};
use cedar_snap::{CacheDir, Snapshot};

fn usage() -> ! {
    eprintln!(
        "usage: cluster_chaos [--workers N] [--points N] [--seed N] [--kills N] \
         [--stalls N] [--corrupts N] [--cache DIR] [--expect-warm] \
         [--report PATH] [--track HISTORY] [--metrics-addr ADDR]"
    );
    std::process::exit(2)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    cedar_cluster::maybe_worker(&families::default_registry());

    let (mut workers, mut points, mut seed) = (4u32, 32u64, 0xC1A05u64);
    let (mut kills, mut stalls, mut corrupts) = (2u32, 1u32, 1u32);
    let mut cache_dir: Option<String> = None;
    let mut expect_warm = false;
    let mut report_path: Option<String> = None;
    let mut track: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workers" => workers = value().parse().unwrap_or_else(|_| usage()),
            "--points" => points = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--kills" => kills = value().parse().unwrap_or_else(|_| usage()),
            "--stalls" => stalls = value().parse().unwrap_or_else(|_| usage()),
            "--corrupts" => corrupts = value().parse().unwrap_or_else(|_| usage()),
            "--cache" => cache_dir = Some(value()),
            "--expect-warm" => expect_warm = true,
            "--report" => report_path = Some(value()),
            "--track" => track = Some(value()),
            "--metrics-addr" => metrics_addr = Some(value()),
            _ => usage(),
        }
    }

    let inputs: Vec<u64> = (0..points).collect();
    let golden = run_sweep_on(1, inputs.clone(), families::slow_mix);

    let plan = match WorkerFaultPlan::generate(&WorkerFaultConfig {
        seed,
        workers,
        kills,
        stalls,
        corrupts,
        max_after_jobs: 2,
    }) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cluster_chaos: bad fault plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = ClusterConfig::new(workers);
    cfg.tick = Duration::from_millis(10);
    cfg.watchdog_budget_ticks = 50;
    cfg.restart = RetryPolicy {
        base_delay_cycles: 5,
        max_retries: 3,
        max_delay_cycles: 200,
    };
    cfg.seed = seed;
    cfg.chaos = Some(plan);
    cfg.cache_namespace = "cluster.chaos/1".to_owned();
    let cache = match &cache_dir {
        Some(dir) => match CacheDir::new(dir.clone()) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("cluster_chaos: cannot open cache {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    cfg.cache = cache.clone();

    let obs = Arc::new(ClusterObs::new());
    let metrics_server = match &metrics_addr {
        Some(addr) => match MetricsServer::start(addr, Arc::clone(&obs)) {
            Ok(s) => {
                eprintln!("cluster_chaos: metrics at http://{}/metrics", s.addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("cluster_chaos: cannot serve metrics: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let sweep_started = Instant::now();
    let report = match run_cluster_sweep::<u64, u64>(&cfg, families::SLOW_MIX, &inputs, Some(&*obs))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster_chaos: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_ms = sweep_started.elapsed().as_secs_f64() * 1000.0;
    let stats = &report.stats;
    eprintln!(
        "cluster_chaos: {} points on {} workers — exits {}, hangs reaped {}, \
         garbage {}, restarts {}, reissues {}, stale {}, cache hits {}",
        stats.jobs,
        stats.workers,
        stats.worker_exits,
        stats.hangs_reaped,
        stats.garbage_frames,
        stats.restarts,
        stats.reissues,
        stats.stale_results,
        stats.cache_hits,
    );

    let mut failures = Vec::new();
    if report.results != golden {
        failures.push("merged sweep is NOT bit-identical to the serial golden".to_owned());
    }
    for (i, r) in stats.journal.iter().enumerate() {
        if r.commits != 1 {
            failures.push(format!(
                "job {i} committed {} times (want exactly 1)",
                r.commits
            ));
        }
    }
    if let Some(cache) = &cache {
        match cache.corrupt_entries() {
            Ok(list) if list.is_empty() => {}
            Ok(list) => failures.push(format!("{} corrupt cache entries left behind", list.len())),
            Err(e) => failures.push(format!("cannot list corrupt entries: {e}")),
        }
        for (i, input) in inputs.iter().enumerate() {
            if cache.load::<u64>(&input.snapshot_key("cluster.chaos/1")) != Some(golden[i]) {
                failures.push(format!("cache entry for point {i} missing or wrong"));
                break;
            }
        }
    }
    if expect_warm {
        if stats.cache_hits != inputs.len() {
            failures.push(format!(
                "expected a fully warm run, got {}/{} cache hits",
                stats.cache_hits,
                inputs.len()
            ));
        }
        if stats.dispatched != 0 {
            failures.push(format!(
                "warm run dispatched {} jobs (want 0)",
                stats.dispatched
            ));
        }
    } else {
        // The cold chaos run must actually have exercised the failure
        // modes it was seeded with.
        if kills > 0 && stats.worker_exits < kills {
            failures.push(format!(
                "only {} worker exits for {} seeded kills",
                stats.worker_exits, kills
            ));
        }
        if stalls > 0 && stats.hangs_reaped < stalls {
            failures.push(format!(
                "only {} hangs reaped for {} seeded stalls",
                stats.hangs_reaped, stalls
            ));
        }
        if corrupts > 0 && stats.garbage_frames < corrupts {
            failures.push(format!(
                "only {} garbage frames for {} seeded corrupts",
                stats.garbage_frames, corrupts
            ));
        }
    }

    // Timing/supervision report: written win or lose (a failing run's
    // numbers are exactly what a postmortem wants), but only tracked
    // into the benchmark history when the run held its invariants.
    let bench_json = render_bench_json(stats, wall_ms, &obs);
    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, &bench_json) {
            eprintln!("cluster_chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("cluster_chaos: wrote report to {path}");
    }
    if failures.is_empty() {
        if let Some(history) = &track {
            let appended = cedar_track::ingest::cluster_report(&bench_json)
                .and_then(|ing| {
                    cedar_track::ingest::build_entry(
                        &[ing],
                        cedar_track::meta::commit_id(),
                        cedar_track::meta::timestamp(),
                        cedar_track::meta::host_fingerprint(),
                        None,
                    )
                })
                .and_then(|entry| {
                    cedar_track::history::append(std::path::Path::new(history), &entry)
                        .map(|()| entry.metrics.len())
                        .map_err(|e| e.to_string())
                });
            match appended {
                Ok(n) => eprintln!("cluster_chaos: tracked {n} metrics to {history}"),
                Err(e) => {
                    eprintln!("cluster_chaos: cannot track to {history}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    drop(metrics_server);

    if failures.is_empty() {
        eprintln!("cluster_chaos: OK — merged sweep equals serial golden, exactly-once held");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("cluster_chaos: FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Renders the `cedar-bench-cluster/1` timing report: the chaos run's
/// wall clock, throughput, supervision stats and the coordinator's
/// observability counters.
fn render_bench_json(
    stats: &cedar_cluster::ClusterStats,
    wall_ms: f64,
    obs: &ClusterObs,
) -> String {
    use std::fmt::Write as _;
    let points_per_sec = if wall_ms > 0.0 {
        stats.jobs as f64 / (wall_ms / 1000.0)
    } else {
        0.0
    };
    let mut out = String::from("{\n  \"schema\": \"cedar-bench-cluster/1\",\n");
    let _ = writeln!(
        out,
        "  \"commit\": \"{}\",",
        cedar_obs::export::escape_json(&cedar_track::meta::commit_id())
    );
    let _ = writeln!(
        out,
        "  \"timestamp\": \"{}\",",
        cedar_track::meta::timestamp()
    );
    out.push_str("  \"mode\": \"chaos\",\n");
    let _ = writeln!(out, "  \"workers\": {},", stats.workers);
    let _ = writeln!(out, "  \"points\": {},", stats.jobs);
    let _ = writeln!(out, "  \"wall_ms\": {wall_ms:.3},");
    let _ = writeln!(out, "  \"points_per_sec\": {points_per_sec:.3},");
    let _ = writeln!(out, "  \"dispatched\": {},", stats.dispatched);
    let _ = writeln!(out, "  \"worker_exits\": {},", stats.worker_exits);
    let _ = writeln!(out, "  \"hangs_reaped\": {},", stats.hangs_reaped);
    let _ = writeln!(out, "  \"garbage_frames\": {},", stats.garbage_frames);
    let _ = writeln!(out, "  \"restarts\": {},", stats.restarts);
    let _ = writeln!(out, "  \"reissues\": {},", stats.reissues);
    let _ = writeln!(out, "  \"stale_results\": {},", stats.stale_results);
    let _ = writeln!(out, "  \"cache_hits\": {},", stats.cache_hits);
    let _ = writeln!(out, "  \"workers_lost\": {},", stats.workers_lost);
    out.push_str("  \"obs\": {");
    for (i, name) in [
        "cluster.jobs.dispatched",
        "cluster.jobs.committed",
        "cluster.jobs.cache_hits",
        "cluster.jobs.reissued",
        "cluster.results.stale",
        "cluster.worker.exits",
        "cluster.worker.hangs_reaped",
        "cluster.worker.garbage_frames",
        "cluster.worker.restarts",
        "cluster.worker.lost",
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{name}\": {}", obs.counter_value(name));
    }
    out.push_str("}\n}\n");
    debug_assert!(
        cedar_obs::export::validate_json(&out).is_ok(),
        "cluster report must be valid JSON"
    );
    out
}
