//! Cluster harness binary: worker, and crash-test helper modes.
//!
//! * **Worker mode** — when `CEDAR_CLUSTER_WORKER` is set (the
//!   coordinator sets it on spawn), serves the reference job families
//!   and never returns.
//! * **`writer <dir> <key>`** — writes the same snapshot entry through
//!   [`cedar_snap::write_atomic`] in a tight loop forever. The
//!   atomicity integration test SIGKILLs this process at random points
//!   and asserts a concurrent reader never observes a partial entry.

use cedar_cluster::families;
use cedar_snap::{CacheDir, Snapshot};

/// The value the `writer` mode stores, over and over. The reader side
/// of the crash test reconstructs it independently and accepts only
/// this exact value (or a clean miss).
fn writer_payload() -> Vec<u64> {
    (0..8192).map(|i: u64| i.wrapping_mul(0xCEDA)).collect()
}

fn writer_mode(dir: &str, key: &str) -> ! {
    let cache = match CacheDir::new(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cluster_node writer: cannot open {dir}: {e}");
            std::process::exit(2);
        }
    };
    let bytes = writer_payload().to_snapshot_bytes();
    loop {
        // Ignore errors: the parent kills this process mid-write on
        // purpose, and a failed write must not stop the next attempt.
        let _ = cache.store_bytes(key, &bytes);
    }
}

fn main() {
    let registry = families::default_registry();
    cedar_cluster::maybe_worker(&registry);

    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("writer") if args.len() == 4 => writer_mode(&args[2], &args[3]),
        Some("families") => {
            for family in registry.families() {
                println!("{family}");
            }
        }
        _ => {
            eprintln!(
                "cluster_node: worker harness for cedar-cluster\n\
                 usage:\n\
                 \x20 CEDAR_CLUSTER_WORKER=<addr> cluster_node   (worker mode)\n\
                 \x20 cluster_node writer <dir> <key>            (crash-test writer)\n\
                 \x20 cluster_node families                      (list job families)"
            );
            std::process::exit(2);
        }
    }
}
