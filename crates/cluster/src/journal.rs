//! The coordinator-side job journal: the exactly-once ledger.
//!
//! Every sweep point is always in exactly one of three states —
//! *unstarted*, *owned* (issued to a specific worker incarnation, with
//! the issue tick recorded for deadline checks), or *committed*. All
//! transitions happen on the coordinator's single supervision thread,
//! so the journal needs no locking and its accounting is exact:
//!
//! * a commit is accepted only from the worker **incarnation that
//!   currently owns the job** — a zombie predecessor's late result is
//!   counted and dropped, never double-committed;
//! * releasing a dead worker's jobs returns them to *unstarted* for
//!   re-issue; the issue counter keeps the full retry history;
//! * [`commits`](JobJournal::commits) per job is the exactly-once
//!   witness: a completed sweep has exactly one commit everywhere.

/// Where a committed result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOrigin {
    /// Served from the content-addressed cache before dispatch.
    Cache,
    /// Computed by a worker slot.
    Worker(u32),
}

/// Lifecycle state of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Not yet issued to any worker.
    Unstarted,
    /// Issued and awaiting a result.
    Owned {
        /// The slot that owns it.
        worker: u32,
        /// The incarnation the job was issued to; commits from any
        /// other incarnation are stale.
        incarnation: u32,
        /// Supervision tick at which it was issued.
        issued_tick: u64,
    },
    /// Exactly one result has been accepted.
    Committed(CommitOrigin),
}

/// Per-job retry/commit history, exposed in the final report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// How many times the job was issued to a worker.
    pub issues: u32,
    /// How many commits were accepted (exactly 1 on a completed
    /// sweep).
    pub commits: u32,
    /// Where the accepted result came from.
    pub origin: Option<CommitOrigin>,
}

/// The journal over all sweep points.
#[derive(Debug)]
pub struct JobJournal {
    states: Vec<JobState>,
    issues: Vec<u32>,
    commits: Vec<u32>,
    origins: Vec<Option<CommitOrigin>>,
    first_issue_tick: Vec<Option<u64>>,
    committed: usize,
    /// Results that arrived from a non-owner (dead incarnation or
    /// re-issued job) and were dropped.
    pub stale_results: u64,
}

impl JobJournal {
    /// A journal of `n` unstarted jobs.
    #[must_use]
    pub fn new(n: usize) -> Self {
        JobJournal {
            states: vec![JobState::Unstarted; n],
            issues: vec![0; n],
            commits: vec![0; n],
            origins: vec![None; n],
            first_issue_tick: vec![None; n],
            committed: 0,
            stale_results: 0,
        }
    }

    /// Number of jobs tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the journal tracks no jobs at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current state of job `i`.
    #[must_use]
    pub fn state(&self, i: usize) -> JobState {
        self.states[i]
    }

    /// Jobs not yet committed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.states.len() - self.committed
    }

    /// Whether every job has committed.
    #[must_use]
    pub fn all_committed(&self) -> bool {
        self.pending() == 0
    }

    /// Indices of unstarted jobs, in input order.
    #[must_use]
    pub fn unstarted(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| self.states[i] == JobState::Unstarted)
            .collect()
    }

    /// Commits job `i` directly from the cache (pre-dispatch).
    ///
    /// # Panics
    ///
    /// Panics if the job was already issued or committed — cache
    /// pre-check happens strictly before dispatch.
    pub fn commit_from_cache(&mut self, i: usize) {
        assert_eq!(
            self.states[i],
            JobState::Unstarted,
            "cache commit after dispatch"
        );
        self.states[i] = JobState::Committed(CommitOrigin::Cache);
        self.commits[i] += 1;
        self.origins[i] = Some(CommitOrigin::Cache);
        self.committed += 1;
    }

    /// Marks job `i` as issued to `(worker, incarnation)` at
    /// `now_tick`.
    ///
    /// # Panics
    ///
    /// Panics if the job is not unstarted — issuing an owned or
    /// committed job is a coordinator bug, not a runtime condition.
    pub fn issue(&mut self, i: usize, worker: u32, incarnation: u32, now_tick: u64) {
        assert_eq!(self.states[i], JobState::Unstarted, "double issue");
        self.states[i] = JobState::Owned {
            worker,
            incarnation,
            issued_tick: now_tick,
        };
        self.issues[i] += 1;
        self.first_issue_tick[i].get_or_insert(now_tick);
    }

    /// Returns all jobs owned by `worker` to unstarted (the worker
    /// died or was reaped), reporting how many were released.
    pub fn release_worker(&mut self, worker: u32) -> usize {
        let mut released = 0;
        for state in &mut self.states {
            if matches!(state, JobState::Owned { worker: w, .. } if *w == worker) {
                *state = JobState::Unstarted;
                released += 1;
            }
        }
        released
    }

    /// Offers a worker's result for job `i`. Accepted only when
    /// `(worker, incarnation)` is the current owner; anything else is
    /// recorded as a stale result and refused, preserving the
    /// exactly-one-commit invariant.
    ///
    /// On acceptance, returns the tick at which the job was *first*
    /// issued (for re-issue latency accounting).
    pub fn offer_commit(&mut self, i: usize, worker: u32, incarnation: u32) -> Option<u64> {
        match self.states[i] {
            JobState::Owned {
                worker: w,
                incarnation: inc,
                ..
            } if w == worker && inc == incarnation => {
                self.states[i] = JobState::Committed(CommitOrigin::Worker(worker));
                self.commits[i] += 1;
                self.origins[i] = Some(CommitOrigin::Worker(worker));
                self.committed += 1;
                self.first_issue_tick[i]
            }
            _ => {
                self.stale_results += 1;
                None
            }
        }
    }

    /// Jobs owned past their deadline: issued more than
    /// `deadline_ticks` ago and still uncommitted.
    #[must_use]
    pub fn expired(&self, now_tick: u64, deadline_ticks: u64) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| match self.states[i] {
                JobState::Owned { issued_tick, .. } => {
                    now_tick.saturating_sub(issued_tick) > deadline_ticks
                }
                _ => false,
            })
            .collect()
    }

    /// Releases one specific owned job back to unstarted (deadline
    /// re-issue). No-op unless the job is currently owned.
    pub fn release(&mut self, i: usize) {
        if matches!(self.states[i], JobState::Owned { .. }) {
            self.states[i] = JobState::Unstarted;
        }
    }

    /// Per-job history for the final report.
    #[must_use]
    pub fn records(&self) -> Vec<JobRecord> {
        (0..self.states.len())
            .map(|i| JobRecord {
                issues: self.issues[i],
                commits: self.commits[i],
                origin: self.origins[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_commits_exactly_once() {
        let mut j = JobJournal::new(3);
        assert_eq!(j.pending(), 3);
        j.commit_from_cache(0);
        j.issue(1, 0, 0, 10);
        j.issue(2, 1, 0, 10);
        assert_eq!(j.offer_commit(1, 0, 0), Some(10));
        assert_eq!(j.offer_commit(2, 1, 0), Some(10));
        assert!(j.all_committed());
        for r in j.records() {
            assert_eq!(r.commits, 1);
        }
    }

    #[test]
    fn stale_incarnation_cannot_commit() {
        let mut j = JobJournal::new(1);
        j.issue(0, 0, 0, 5);
        // Worker 0 dies; its job is released and re-issued to the
        // restarted incarnation 1.
        assert_eq!(j.release_worker(0), 1);
        j.issue(0, 0, 1, 20);
        // The zombie's late result is refused...
        assert_eq!(j.offer_commit(0, 0, 0), None);
        assert_eq!(j.stale_results, 1);
        assert!(!j.all_committed());
        // ...and the live incarnation's is accepted, with the first
        // issue tick preserved for latency accounting.
        assert_eq!(j.offer_commit(0, 0, 1), Some(5));
        assert_eq!(j.records()[0].commits, 1);
        assert_eq!(j.records()[0].issues, 2);
    }

    #[test]
    fn commit_after_reassignment_is_stale_for_the_old_owner() {
        let mut j = JobJournal::new(1);
        j.issue(0, 0, 0, 0);
        j.release_worker(0);
        j.issue(0, 2, 0, 8);
        assert_eq!(j.offer_commit(0, 0, 0), None, "old owner refused");
        assert_eq!(j.offer_commit(0, 2, 0), Some(0));
        assert_eq!(
            j.records()[0].origin,
            Some(CommitOrigin::Worker(2)),
            "origin names the committing worker"
        );
    }

    #[test]
    fn double_commit_is_impossible() {
        let mut j = JobJournal::new(1);
        j.issue(0, 0, 0, 0);
        assert!(j.offer_commit(0, 0, 0).is_some());
        // Even the rightful owner cannot commit twice.
        assert_eq!(j.offer_commit(0, 0, 0), None);
        assert_eq!(j.records()[0].commits, 1);
        assert_eq!(j.stale_results, 1);
    }

    #[test]
    fn deadlines_select_only_overdue_owned_jobs() {
        let mut j = JobJournal::new(3);
        j.issue(0, 0, 0, 0);
        j.issue(1, 1, 0, 90);
        assert_eq!(j.expired(100, 50), vec![0]);
        j.release(0);
        assert_eq!(j.state(0), JobState::Unstarted);
        assert_eq!(j.expired(100, 50), Vec::<usize>::new());
        // Releasing an unstarted or committed job is a no-op.
        j.release(2);
        assert_eq!(j.state(2), JobState::Unstarted);
    }

    #[test]
    #[should_panic(expected = "double issue")]
    fn issuing_an_owned_job_panics() {
        let mut j = JobJournal::new(1);
        j.issue(0, 0, 0, 0);
        j.issue(0, 1, 0, 0);
    }
}
