//! The coordinator: spawn, supervise, dispatch, merge.
//!
//! [`run_cluster_sweep`] is the cluster twin of
//! [`cedar_exec::run_sweep_cached`]: same inputs, same
//! content-addressed keys, same bit-identical results — but the points
//! execute in N re-exec'd worker *processes* that are expected to
//! crash, hang, or write garbage, and the coordinator's job is to make
//! none of that observable in the output.
//!
//! Supervision is a single-threaded event loop over a fixed tick.
//! Reader threads (one per live worker connection) translate the wire
//! into events; everything else — heartbeats, per-worker watchdogs,
//! restart backoff, job deadlines, consistent-hash dispatch, journal
//! commits — happens on the supervision thread, so the exactly-once
//! ledger needs no locks and every decision is sequenced.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cedar_exec::sweep_keys;
use cedar_faults::{RetryPolicy, WorkerFaultPlan};
use cedar_sim::watchdog::Watchdog;
use cedar_snap::{fnv1a, read_frame, unseal, write_frame, CacheDir, FrameError, Snapshot};

use crate::journal::{JobJournal, JobRecord, JobState};
use crate::obs::ClusterObs;
use crate::proto::{decode_msg, encode_msg, FromWorker, ToWorker};
use crate::registry::{CHAOS_ENV, ID_ENV, INCARNATION_ENV, WORKER_ENV};
use crate::ring::HashRing;

/// Fleet shape, timing and robustness knobs.
#[derive(Debug)]
pub struct ClusterConfig {
    /// Worker slots to spawn.
    pub workers: u32,
    /// Worker executable; `None` re-execs the current binary (whose
    /// `main` must call [`maybe_worker`](crate::maybe_worker)).
    pub worker_exe: Option<PathBuf>,
    /// Supervision tick length — the unit of every `*_ticks` knob.
    pub tick: Duration,
    /// Ping every worker each time this many ticks elapse.
    pub heartbeat_every_ticks: u64,
    /// Per-worker no-progress budget before it is reaped as hung.
    /// Must exceed the heartbeat interval plus the longest job, or
    /// healthy-but-busy workers get reaped.
    pub watchdog_budget_ticks: u64,
    /// Re-issue a job owned longer than this without a commit.
    pub job_deadline_ticks: u64,
    /// Jobs a single worker may own at once.
    pub max_inflight: usize,
    /// Restart backoff for dead workers; `max_retries` exhausted means
    /// the slot is lost for good.
    pub restart: RetryPolicy,
    /// Seed for restart jitter and heartbeat nonces.
    pub seed: u64,
    /// Optional deterministic chaos plan (first incarnations only).
    pub chaos: Option<WorkerFaultPlan>,
    /// Optional shared content-addressed cache; hits skip dispatch and
    /// fresh commits are stored back, interoperating byte-for-byte
    /// with [`cedar_exec::run_sweep_cached`] on the same namespace.
    pub cache: Option<CacheDir>,
    /// Namespace for sweep keys (must match any cached sweep sharing
    /// the cache).
    pub cache_namespace: String,
    /// Hard wall on supervision ticks; exceeded means
    /// [`ClusterError::Timeout`].
    pub max_ticks: u64,
}

impl ClusterConfig {
    /// A conservative default configuration for `workers` slots.
    #[must_use]
    pub fn new(workers: u32) -> Self {
        ClusterConfig {
            workers,
            worker_exe: None,
            tick: Duration::from_millis(10),
            heartbeat_every_ticks: 5,
            watchdog_budget_ticks: 50,
            job_deadline_ticks: 500,
            max_inflight: 2,
            restart: RetryPolicy {
                base_delay_cycles: 5,
                max_retries: 3,
                max_delay_cycles: 200,
            },
            seed: 0xCEDA_C1A5,
            chaos: None,
            cache: None,
            cache_namespace: "cedar.cluster/0".to_owned(),
            max_ticks: 6_000,
        }
    }
}

/// Why a cluster sweep could not complete.
#[derive(Debug)]
pub enum ClusterError {
    /// A configuration value violated a structural constraint.
    Invalid {
        /// Which knob was rejected.
        field: &'static str,
        /// What constraint it violated.
        message: String,
    },
    /// Listener, spawn or other coordinator-side I/O failure.
    Io(std::io::Error),
    /// Every worker slot exhausted its restart budget with jobs still
    /// pending: there is no fleet left to run them.
    FleetLost {
        /// Jobs still uncommitted at the time of loss.
        pending: usize,
    },
    /// A worker reported a deterministic job failure (panicking family
    /// function, undecodable input, unknown family). Retrying a
    /// deterministic failure elsewhere cannot help, so it is fatal.
    JobFailed {
        /// The failing job's input index.
        job: usize,
        /// The worker's description of the failure.
        reason: String,
    },
    /// The supervision loop exceeded [`ClusterConfig::max_ticks`].
    Timeout {
        /// The tick budget that was exhausted.
        ticks: u64,
        /// Jobs still uncommitted.
        pending: usize,
    },
    /// A committed result failed to decode as the sweep's output type
    /// — a family/type mismatch between coordinator and worker.
    BadResult {
        /// The job whose result bytes did not decode.
        job: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Invalid { field, message } => {
                write!(f, "invalid cluster config {field}: {message}")
            }
            ClusterError::Io(e) => write!(f, "cluster I/O failure: {e}"),
            ClusterError::FleetLost { pending } => {
                write!(f, "all workers lost with {pending} jobs pending")
            }
            ClusterError::JobFailed { job, reason } => {
                write!(f, "job {job} failed deterministically: {reason}")
            }
            ClusterError::Timeout { ticks, pending } => {
                write!(
                    f,
                    "sweep incomplete after {ticks} ticks ({pending} jobs pending)"
                )
            }
            ClusterError::BadResult { job } => {
                write!(
                    f,
                    "job {job} committed bytes that do not decode as the output type"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Supervision accounting for one completed (or attempted) sweep.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Worker slots in the fleet.
    pub workers: u32,
    /// Total sweep points.
    pub jobs: usize,
    /// Points committed straight from the cache, never dispatched.
    pub cache_hits: usize,
    /// Job frames sent to workers (re-issues included).
    pub dispatched: u64,
    /// Results accepted by the journal from workers.
    pub committed: u64,
    /// Jobs returned to the pool by worker death or deadline expiry.
    pub reissues: u64,
    /// Results refused by the journal (dead incarnation, lost
    /// ownership, or already committed).
    pub stale_results: u64,
    /// Spontaneous worker exits observed (crashes and chaos kills).
    pub worker_exits: u32,
    /// Workers reaped by the heartbeat watchdog.
    pub hangs_reaped: u32,
    /// Corrupt frames received (the sending worker is killed).
    pub garbage_frames: u32,
    /// Successful worker restarts.
    pub restarts: u32,
    /// Slots that exhausted their restart budget.
    pub workers_lost: u32,
    /// Per-job issue/commit history — the exactly-once witness.
    pub journal: Vec<JobRecord>,
}

/// A completed cluster sweep: results in input order plus accounting.
#[derive(Debug)]
pub struct ClusterReport<T> {
    /// One result per input, in input order — bit-identical to a
    /// serial [`run_sweep`](cedar_exec::run_sweep) of the same family
    /// function.
    pub results: Vec<T>,
    /// Supervision accounting.
    pub stats: ClusterStats,
}

/// Events flowing from reader threads to the supervision loop.
enum Event {
    Hello {
        slot: u32,
        incarnation: u32,
        stream: TcpStream,
    },
    Frame {
        slot: u32,
        incarnation: u32,
        msg: FromWorker,
    },
    Garbage {
        slot: u32,
        incarnation: u32,
    },
    Gone {
        slot: u32,
        incarnation: u32,
    },
}

/// Coordinator-side state of one worker slot.
struct Slot {
    incarnation: u32,
    child: Option<Child>,
    conn: Option<TcpStream>,
    watchdog: Watchdog,
    alive: bool,
    lost: bool,
    restart_attempts: u32,
    restart_at: Option<u64>,
    frames_seen: u64,
    inflight: usize,
    nonces: VecDeque<u64>,
}

impl Slot {
    fn new(w: u32, budget: u64) -> Self {
        Slot {
            incarnation: 0,
            child: None,
            conn: None,
            watchdog: Watchdog::new(budget, &format!("cluster worker {w}")),
            alive: false,
            lost: false,
            restart_attempts: 0,
            restart_at: None,
            frames_seen: 0,
            inflight: 0,
            nonces: VecDeque::new(),
        }
    }
}

/// Runs `inputs` through the worker fleet and returns results in input
/// order, bit-identical to a serial sweep of the same family function.
///
/// `family` names a function registered in the worker binary's
/// [`JobRegistry`](crate::JobRegistry); `obs`, when provided, receives
/// live supervision metrics.
///
/// # Errors
///
/// See [`ClusterError`]. Worker crashes, hangs and corrupt frames are
/// *not* errors — they are recovered by re-issue and restart; only an
/// unrunnable configuration, a deterministic job failure, total fleet
/// loss or timeout surface here.
pub fn run_cluster_sweep<I, T>(
    config: &ClusterConfig,
    family: &str,
    inputs: &[I],
    obs: Option<&ClusterObs>,
) -> Result<ClusterReport<T>, ClusterError>
where
    I: Snapshot,
    T: Snapshot,
{
    validate(config)?;
    let n = inputs.len();
    let keys = sweep_keys(&config.cache_namespace, inputs);
    let input_bytes: Vec<Vec<u8>> = inputs.iter().map(Snapshot::to_snapshot_bytes).collect();

    let mut journal = JobJournal::new(n);
    let mut result_bytes: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut cache_hits = 0usize;
    if let Some(cache) = &config.cache {
        for i in 0..n {
            if let Some(v) = cache.load::<T>(&keys[i]) {
                journal.commit_from_cache(i);
                result_bytes[i] = Some(v.to_snapshot_bytes());
                cache_hits += 1;
            }
        }
    }
    if let Some(obs) = obs {
        obs.add("cluster.jobs.cache_hits", cache_hits as u64);
    }

    let mut stats = ClusterStats {
        workers: config.workers,
        jobs: n,
        cache_hits,
        ..ClusterStats::default()
    };

    if !journal.all_committed() {
        let supervisor = Supervisor {
            config,
            family,
            keys: &keys,
            input_bytes: &input_bytes,
            ring: HashRing::new(config.workers),
            journal: &mut journal,
            result_bytes: &mut result_bytes,
            stats: &mut stats,
            obs,
            slots: (0..config.workers)
                .map(|w| Slot::new(w, config.watchdog_budget_ticks))
                .collect(),
            nonce_counter: 0,
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
        };
        supervisor.run()?;
    }

    stats.journal = journal.records();
    let mut results = Vec::with_capacity(n);
    for (job, bytes) in result_bytes.into_iter().enumerate() {
        let bytes = bytes.ok_or(ClusterError::BadResult { job })?;
        results.push(T::from_snapshot_bytes(&bytes).map_err(|_| ClusterError::BadResult { job })?);
    }
    Ok(ClusterReport { results, stats })
}

fn validate(config: &ClusterConfig) -> Result<(), ClusterError> {
    let reject = |field, message: &str| {
        Err(ClusterError::Invalid {
            field,
            message: message.to_owned(),
        })
    };
    if config.workers == 0 {
        return reject("workers", "fleet must have at least one worker");
    }
    if config.tick.is_zero() {
        return reject("tick", "supervision tick must be nonzero");
    }
    if config.watchdog_budget_ticks == 0 {
        return reject("watchdog_budget_ticks", "watchdog budget must be nonzero");
    }
    if config.heartbeat_every_ticks == 0 {
        return reject(
            "heartbeat_every_ticks",
            "heartbeat interval must be nonzero",
        );
    }
    if config.heartbeat_every_ticks >= config.watchdog_budget_ticks {
        return reject(
            "heartbeat_every_ticks",
            "heartbeat interval must be shorter than the watchdog budget",
        );
    }
    if config.max_inflight == 0 {
        return reject("max_inflight", "workers must be allowed at least one job");
    }
    if let Some(plan) = &config.chaos {
        if plan.faults().iter().any(|f| f.worker >= config.workers) {
            return reject("chaos", "fault plan names a worker outside the fleet");
        }
    }
    Ok(())
}

struct Supervisor<'a> {
    config: &'a ClusterConfig,
    family: &'a str,
    keys: &'a [String],
    input_bytes: &'a [Vec<u8>],
    ring: HashRing,
    journal: &'a mut JobJournal,
    result_bytes: &'a mut Vec<Option<Vec<u8>>>,
    stats: &'a mut ClusterStats,
    obs: Option<&'a ClusterObs>,
    slots: Vec<Slot>,
    nonce_counter: u64,
    /// The listener address workers connect back to; set in
    /// [`Supervisor::run`] before any worker is spawned.
    addr: SocketAddr,
}

impl Supervisor<'_> {
    fn run(mut self) -> Result<(), ClusterError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(ClusterError::Io)?;
        let addr = listener.local_addr().map_err(ClusterError::Io)?;
        self.addr = addr;
        let (tx, rx) = std::sync::mpsc::channel::<Event>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let tx = tx.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(&listener, &tx, &shutdown))
        };

        for w in 0..self.config.workers {
            match self.spawn_worker(addr, w, 0) {
                Ok(child) => self.slots[w as usize].child = Some(child),
                Err(e) => {
                    self.shutdown_fleet();
                    shutdown.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(addr);
                    let _ = accept_handle.join();
                    return Err(ClusterError::Io(e));
                }
            }
        }

        let outcome = self.supervise(&rx);

        self.shutdown_fleet();
        shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        let _ = accept_handle.join();
        drop(tx);
        outcome
    }

    fn supervise(&mut self, rx: &Receiver<Event>) -> Result<(), ClusterError> {
        let start = Instant::now();
        let tick_us = self.config.tick.as_micros().max(1);
        let mut last_heartbeat = 0u64;
        loop {
            let now_tick = (start.elapsed().as_micros() / tick_us) as u64;
            match rx.recv_timeout(self.config.tick) {
                Ok(ev) => {
                    self.handle(ev, now_tick)?;
                    while let Ok(ev) = rx.try_recv() {
                        self.handle(ev, now_tick)?;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("supervisor holds a live sender")
                }
            }
            let now_tick = (start.elapsed().as_micros() / tick_us) as u64;

            self.process_restarts(now_tick);
            self.process_watchdogs(now_tick);
            self.process_deadlines(now_tick);
            if now_tick.saturating_sub(last_heartbeat) >= self.config.heartbeat_every_ticks {
                last_heartbeat = now_tick;
                self.send_heartbeats(now_tick);
            }
            self.dispatch(now_tick);

            if self.journal.all_committed() {
                return Ok(());
            }
            if self.slots.iter().all(|s| s.lost) {
                return Err(ClusterError::FleetLost {
                    pending: self.journal.pending(),
                });
            }
            if now_tick > self.config.max_ticks {
                return Err(ClusterError::Timeout {
                    ticks: self.config.max_ticks,
                    pending: self.journal.pending(),
                });
            }
        }
    }

    fn handle(&mut self, ev: Event, now_tick: u64) -> Result<(), ClusterError> {
        match ev {
            Event::Hello {
                slot,
                incarnation,
                stream,
            } => {
                let Some(s) = self.slots.get_mut(slot as usize) else {
                    return Ok(());
                };
                // Accept only the incarnation we actually spawned and
                // are waiting for; anything else is a zombie and its
                // connection is simply dropped.
                if s.incarnation == incarnation && !s.alive && !s.lost && s.child.is_some() {
                    s.conn = Some(stream);
                    s.alive = true;
                    s.frames_seen += 1;
                    s.watchdog.rearm(now_tick);
                    self.publish_health(slot);
                }
                Ok(())
            }
            Event::Frame {
                slot,
                incarnation,
                msg,
            } => self.handle_frame(slot, incarnation, msg, now_tick),
            Event::Garbage { slot, incarnation } => {
                if self.slot_is_current(slot, incarnation) {
                    self.stats.garbage_frames += 1;
                    if let Some(obs) = self.obs {
                        obs.inc("cluster.worker.garbage_frames");
                    }
                    self.fail_slot(slot, now_tick);
                }
                Ok(())
            }
            Event::Gone { slot, incarnation } => {
                if self.slot_is_current(slot, incarnation) {
                    self.stats.worker_exits += 1;
                    if let Some(obs) = self.obs {
                        obs.inc("cluster.worker.exits");
                    }
                    self.fail_slot(slot, now_tick);
                }
                Ok(())
            }
        }
    }

    fn slot_is_current(&self, slot: u32, incarnation: u32) -> bool {
        self.slots
            .get(slot as usize)
            .is_some_and(|s| s.alive && s.incarnation == incarnation)
    }

    fn handle_frame(
        &mut self,
        slot: u32,
        incarnation: u32,
        msg: FromWorker,
        now_tick: u64,
    ) -> Result<(), ClusterError> {
        if !self.slot_is_current(slot, incarnation) {
            // A zombie incarnation's frame. A late result is the
            // interesting case: count it as refused.
            if matches!(msg, FromWorker::Done { .. }) {
                self.journal.stale_results += 1;
                if let Some(obs) = self.obs {
                    obs.inc("cluster.results.stale");
                }
            }
            return Ok(());
        }
        self.slots[slot as usize].frames_seen += 1;
        match msg {
            FromWorker::Hello { .. } => {
                // A second hello on a live connection violates the
                // protocol; treat like any other garbage.
                self.stats.garbage_frames += 1;
                self.fail_slot(slot, now_tick);
                Ok(())
            }
            FromWorker::Pong { nonce } => {
                let s = &mut self.slots[slot as usize];
                match s.nonces.iter().position(|&n| n == nonce) {
                    // Answered in order: this pong retires its nonce
                    // and any older outstanding ones.
                    Some(pos) => {
                        s.nonces.drain(..=pos);
                    }
                    None => {
                        self.stats.garbage_frames += 1;
                        self.fail_slot(slot, now_tick);
                    }
                }
                Ok(())
            }
            FromWorker::Done { job, result } => {
                let Ok(job) = usize::try_from(job) else {
                    self.stats.garbage_frames += 1;
                    self.fail_slot(slot, now_tick);
                    return Ok(());
                };
                if job >= self.journal.len() || unseal(&result).is_err() {
                    // A job index we never issued, or result bytes
                    // failing their own checksum: the worker is not
                    // trustworthy.
                    self.stats.garbage_frames += 1;
                    self.fail_slot(slot, now_tick);
                    return Ok(());
                }
                match self.journal.offer_commit(job, slot, incarnation) {
                    Some(first_issue_tick) => {
                        if let Some(cache) = &self.config.cache {
                            let _ = cache.store_bytes(&self.keys[job], &result);
                        }
                        self.result_bytes[job] = Some(result);
                        let s = &mut self.slots[slot as usize];
                        s.inflight = s.inflight.saturating_sub(1);
                        self.stats.committed += 1;
                        if let Some(obs) = self.obs {
                            obs.inc("cluster.jobs.committed");
                            obs.commit_latency(now_tick.saturating_sub(first_issue_tick));
                        }
                    }
                    None => {
                        if let Some(obs) = self.obs {
                            obs.inc("cluster.results.stale");
                        }
                    }
                }
                Ok(())
            }
            FromWorker::Fail { job, reason } => Err(ClusterError::JobFailed {
                job: usize::try_from(job).unwrap_or(usize::MAX),
                reason,
            }),
        }
    }

    fn process_restarts(&mut self, now_tick: u64) {
        for w in 0..self.slots.len() {
            let due = {
                let s = &self.slots[w];
                !s.alive && !s.lost && s.restart_at.is_some_and(|at| at <= now_tick)
            };
            if !due {
                continue;
            }
            self.slots[w].incarnation += 1;
            self.slots[w].restart_at = None;
            let incarnation = self.slots[w].incarnation;
            match self.spawn_worker(self.addr, w as u32, incarnation) {
                Ok(child) => {
                    let s = &mut self.slots[w];
                    s.child = Some(child);
                    s.watchdog.rearm(now_tick);
                    self.stats.restarts += 1;
                    if let Some(obs) = self.obs {
                        obs.inc("cluster.worker.restarts");
                    }
                    self.publish_health(w as u32);
                }
                Err(_) => {
                    // Spawn failure burns a restart attempt like any
                    // other death.
                    self.fail_slot(w as u32, now_tick);
                }
            }
        }
    }

    fn process_watchdogs(&mut self, now_tick: u64) {
        for w in 0..self.slots.len() {
            let watched = {
                let s = &self.slots[w];
                !s.lost && (s.alive || (s.child.is_some() && s.restart_at.is_none()))
            };
            if !watched {
                continue;
            }
            let frames = self.slots[w].frames_seen;
            if self.slots[w].watchdog.observe(now_tick, frames).is_err() {
                self.stats.hangs_reaped += 1;
                if let Some(obs) = self.obs {
                    obs.inc("cluster.worker.hangs_reaped");
                }
                self.fail_slot(w as u32, now_tick);
            }
        }
    }

    fn process_deadlines(&mut self, now_tick: u64) {
        for job in self
            .journal
            .expired(now_tick, self.config.job_deadline_ticks)
        {
            if let JobState::Owned { worker, .. } = self.journal.state(job) {
                self.journal.release(job);
                let s = &mut self.slots[worker as usize];
                s.inflight = s.inflight.saturating_sub(1);
                self.stats.reissues += 1;
                if let Some(obs) = self.obs {
                    obs.inc("cluster.jobs.reissued");
                }
            }
        }
    }

    fn send_heartbeats(&mut self, now_tick: u64) {
        for w in 0..self.slots.len() {
            if !self.slots[w].alive {
                continue;
            }
            self.nonce_counter += 1;
            let mut seed_bytes = [0u8; 24];
            seed_bytes[..8].copy_from_slice(&self.config.seed.to_le_bytes());
            seed_bytes[8..16].copy_from_slice(&(w as u64).to_le_bytes());
            seed_bytes[16..].copy_from_slice(&self.nonce_counter.to_le_bytes());
            let nonce = fnv1a(&seed_bytes);
            let sent = self.send_to(w, &ToWorker::Ping { nonce });
            let s = &mut self.slots[w];
            if sent {
                s.nonces.push_back(nonce);
                while s.nonces.len() > 8 {
                    s.nonces.pop_front();
                }
            } else {
                self.fail_slot(w as u32, now_tick);
            }
        }
    }

    fn dispatch(&mut self, now_tick: u64) {
        for job in self.journal.unstarted() {
            let hash = HashRing::key_hash(&self.keys[job]);
            let slots = &self.slots;
            let max_inflight = self.config.max_inflight;
            let Some(w) = self.ring.assign(hash, |w| {
                let s = &slots[w as usize];
                s.alive && s.inflight < max_inflight
            }) else {
                // Eligibility is per-worker, not per-job: if no worker
                // can take this job, none can take any other.
                break;
            };
            let msg = ToWorker::Job {
                job: job as u64,
                family: self.family.to_owned(),
                input: self.input_bytes[job].clone(),
            };
            if self.send_to(w as usize, &msg) {
                let incarnation = self.slots[w as usize].incarnation;
                self.journal.issue(job, w, incarnation, now_tick);
                self.slots[w as usize].inflight += 1;
                self.stats.dispatched += 1;
                if let Some(obs) = self.obs {
                    obs.inc("cluster.jobs.dispatched");
                }
            } else {
                self.fail_slot(w, now_tick);
            }
        }
    }

    /// Sends one frame to a live slot; false means the write failed
    /// and the slot should be failed by the caller.
    fn send_to(&mut self, w: usize, msg: &ToWorker) -> bool {
        let Some(conn) = self.slots[w].conn.as_mut() else {
            return false;
        };
        write_frame(conn, &encode_msg(msg)).is_ok()
    }

    /// Declares a slot's current incarnation dead: kill the process,
    /// release its jobs for re-issue, and either schedule a jittered
    /// restart or mark the slot lost.
    fn fail_slot(&mut self, w: u32, now_tick: u64) {
        {
            let s = &mut self.slots[w as usize];
            s.alive = false;
            s.conn = None;
            s.nonces.clear();
            if let Some(mut child) = s.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        let released = self.journal.release_worker(w);
        let s = &mut self.slots[w as usize];
        s.inflight = 0;
        self.stats.reissues += released as u64;
        s.restart_attempts += 1;
        if s.restart_attempts > self.config.restart.max_retries {
            s.lost = true;
            self.stats.workers_lost += 1;
            if let Some(obs) = self.obs {
                obs.inc("cluster.worker.lost");
            }
        } else {
            let delay = self
                .config
                .restart
                .jittered_delay(s.restart_attempts, self.config.seed ^ u64::from(w));
            s.restart_at = Some(now_tick + delay);
        }
        if let Some(obs) = self.obs {
            obs.add("cluster.jobs.reissued", released as u64);
        }
        self.publish_health(w);
    }

    fn publish_health(&self, w: u32) {
        if let Some(obs) = self.obs {
            let s = &self.slots[w as usize];
            obs.worker_health(w, s.alive, s.incarnation, s.restart_attempts);
            let alive = self.slots.iter().filter(|s| s.alive).count();
            obs.set_gauge("cluster.workers.alive", alive as f64);
        }
    }

    fn spawn_worker(&self, addr: SocketAddr, w: u32, incarnation: u32) -> std::io::Result<Child> {
        let exe = match &self.config.worker_exe {
            Some(path) => path.clone(),
            None => std::env::current_exe()?,
        };
        let mut cmd = Command::new(exe);
        cmd.env(WORKER_ENV, addr.to_string())
            .env(ID_ENV, w.to_string())
            .env(INCARNATION_ENV, incarnation.to_string())
            .env_remove(CHAOS_ENV)
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        if incarnation == 0 {
            if let Some(plan) = &self.config.chaos {
                if let Some(fault) = plan.fault_for(w, 0) {
                    cmd.env(CHAOS_ENV, fault.directive());
                }
            }
        }
        cmd.spawn()
    }

    /// Best-effort clean shutdown: ask nicely, wait briefly, then
    /// kill. Stalled or zombie children never outlive this.
    fn shutdown_fleet(&mut self) {
        for w in 0..self.slots.len() {
            if self.slots[w].alive {
                let _ = self.send_to(w, &ToWorker::Shutdown);
            }
        }
        for s in &mut self.slots {
            if let Some(child) = s.child.as_mut() {
                let mut exited = false;
                for _ in 0..50 {
                    match child.try_wait() {
                        Ok(Some(_)) => {
                            exited = true;
                            break;
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                        Err(_) => break,
                    }
                }
                if !exited {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
            s.child = None;
            s.conn = None;
            s.alive = false;
        }
    }
}

/// Accepts worker connections, performs the hello handshake in a
/// per-connection thread, and turns each connection into a stream of
/// events.
fn accept_loop(listener: &TcpListener, tx: &Sender<Event>, shutdown: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        let tx = tx.clone();
        std::thread::spawn(move || {
            // A connector that never says hello must not wedge
            // anything: bound the handshake.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let Ok(payload) = read_frame(&mut stream) else {
                return;
            };
            let Ok(FromWorker::Hello {
                worker,
                incarnation,
                ..
            }) = decode_msg::<FromWorker>(&payload)
            else {
                return;
            };
            let _ = stream.set_read_timeout(None);
            let Ok(reader) = stream.try_clone() else {
                return;
            };
            if tx
                .send(Event::Hello {
                    slot: worker,
                    incarnation,
                    stream,
                })
                .is_err()
            {
                return;
            }
            reader_loop(worker, incarnation, reader, &tx);
        });
    }
}

/// Reads frames from one worker connection until it dies, translating
/// them (and the manner of death) into supervision events.
fn reader_loop(slot: u32, incarnation: u32, mut stream: TcpStream, tx: &Sender<Event>) {
    loop {
        match read_frame(&mut stream) {
            Ok(payload) => match decode_msg::<FromWorker>(&payload) {
                Ok(msg) => {
                    if tx
                        .send(Event::Frame {
                            slot,
                            incarnation,
                            msg,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err(_) => {
                    let _ = tx.send(Event::Garbage { slot, incarnation });
                    return;
                }
            },
            Err(FrameError::Eof | FrameError::Io(_)) => {
                let _ = tx.send(Event::Gone { slot, incarnation });
                return;
            }
            Err(_) => {
                let _ = tx.send(Event::Garbage { slot, incarnation });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_unrunnable_fleets() {
        let mut c = ClusterConfig::new(0);
        assert!(matches!(
            validate(&c),
            Err(ClusterError::Invalid {
                field: "workers",
                ..
            })
        ));
        c.workers = 2;
        c.heartbeat_every_ticks = c.watchdog_budget_ticks;
        assert!(matches!(
            validate(&c),
            Err(ClusterError::Invalid {
                field: "heartbeat_every_ticks",
                ..
            })
        ));
        c.heartbeat_every_ticks = 5;
        c.max_inflight = 0;
        assert!(matches!(
            validate(&c),
            Err(ClusterError::Invalid {
                field: "max_inflight",
                ..
            })
        ));
        c.max_inflight = 2;
        assert!(validate(&c).is_ok());
    }

    #[test]
    fn chaos_plan_must_fit_the_fleet() {
        use cedar_faults::{WorkerFaultConfig, WorkerFaultPlan};
        let plan = WorkerFaultPlan::generate(&WorkerFaultConfig {
            seed: 1,
            workers: 8,
            kills: 1,
            stalls: 0,
            corrupts: 0,
            max_after_jobs: 1,
        })
        .unwrap();
        let mut c = ClusterConfig::new(2);
        c.chaos = Some(plan);
        // The plan was generated for 8 workers; a 2-worker fleet may
        // not reference slots it does not have.
        let ok = match validate(&c) {
            Err(ClusterError::Invalid { field: "chaos", .. }) => true,
            // The planted fault may happen to land on slot 0 or 1, in
            // which case the plan fits — regenerate deterministically
            // and check the guard still works for an out-of-range one.
            Ok(()) => c
                .chaos
                .as_ref()
                .unwrap()
                .faults()
                .iter()
                .all(|f| f.worker < 2),
            _ => false,
        };
        assert!(ok);
    }

    #[test]
    fn error_display_names_the_condition() {
        let errors: Vec<ClusterError> = vec![
            ClusterError::FleetLost { pending: 3 },
            ClusterError::JobFailed {
                job: 7,
                reason: "panicked".to_owned(),
            },
            ClusterError::Timeout {
                ticks: 100,
                pending: 2,
            },
            ClusterError::BadResult { job: 1 },
        ];
        let texts: Vec<String> = errors.iter().map(ToString::to_string).collect();
        assert!(texts[0].contains("all workers lost"));
        assert!(texts[1].contains("job 7"));
        assert!(texts[2].contains("100 ticks"));
        assert!(texts[3].contains("do not decode"));
    }
}
