//! Coordinator↔worker wire messages.
//!
//! Every message travels as one [`cedar_snap::frame`] — a sealed
//! envelope whose payload is the message's [`Snapshot`] encoding, so
//! the transport inherits the codec's checksum and version checks. Job
//! inputs and results are carried as *nested* sealed envelopes (the
//! exact bytes [`Snapshot::to_snapshot_bytes`] produces), which is
//! what lets the coordinator commit a worker's result straight into a
//! [`CacheDir`](cedar_snap::CacheDir) entry byte-for-byte identical to
//! what a local cached sweep would have stored.

use cedar_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Messages the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToWorker {
    /// Run one job: decode `input`, apply the named family's function,
    /// reply [`FromWorker::Done`] (or [`FromWorker::Fail`]).
    Job {
        /// Coordinator-side job index.
        job: u64,
        /// Registered job-family name (see
        /// [`JobRegistry`](crate::JobRegistry)).
        family: String,
        /// The input as a sealed snapshot envelope.
        input: Vec<u8>,
    },
    /// Liveness probe; the worker echoes the nonce back as
    /// [`FromWorker::Pong`].
    Ping {
        /// Echoed verbatim so the coordinator can match replies.
        nonce: u64,
    },
    /// Clean shutdown request; the worker exits 0.
    Shutdown,
}

/// Messages a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromWorker {
    /// First frame after connecting: identifies which spawned slot and
    /// incarnation this connection belongs to.
    Hello {
        /// Worker slot index (from `CEDAR_CLUSTER_ID`).
        worker: u32,
        /// Incarnation number (from `CEDAR_CLUSTER_INCARNATION`);
        /// guards against a zombie predecessor's frames being
        /// attributed to its replacement.
        incarnation: u32,
        /// OS process id, for diagnostics.
        pid: u32,
    },
    /// A job completed; `result` is the sealed snapshot envelope of
    /// the output value.
    Done {
        /// The job index echoed from [`ToWorker::Job`].
        job: u64,
        /// The result as a sealed snapshot envelope.
        result: Vec<u8>,
    },
    /// A job failed deterministically (unknown family, undecodable
    /// input, or the family function panicked).
    Fail {
        /// The job index echoed from [`ToWorker::Job`].
        job: u64,
        /// Human-readable failure description.
        reason: String,
    },
    /// Reply to [`ToWorker::Ping`].
    Pong {
        /// The probe's nonce, echoed.
        nonce: u64,
    },
}

const TAG_JOB: u8 = 1;
const TAG_PING: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;
const TAG_HELLO: u8 = 16;
const TAG_DONE: u8 = 17;
const TAG_FAIL: u8 = 18;
const TAG_PONG: u8 = 19;

impl Snapshot for ToWorker {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            ToWorker::Job { job, family, input } => {
                w.put_u8(TAG_JOB);
                w.put_u64(*job);
                w.put_str(family);
                w.put_bytes(input);
            }
            ToWorker::Ping { nonce } => {
                w.put_u8(TAG_PING);
                w.put_u64(*nonce);
            }
            ToWorker::Shutdown => w.put_u8(TAG_SHUTDOWN),
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            TAG_JOB => Ok(ToWorker::Job {
                job: r.get_u64()?,
                family: r.get_string()?,
                input: r.get_bytes()?.to_vec(),
            }),
            TAG_PING => Ok(ToWorker::Ping {
                nonce: r.get_u64()?,
            }),
            TAG_SHUTDOWN => Ok(ToWorker::Shutdown),
            _ => Err(SnapError::Invalid("unknown ToWorker tag")),
        }
    }
}

impl Snapshot for FromWorker {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            FromWorker::Hello {
                worker,
                incarnation,
                pid,
            } => {
                w.put_u8(TAG_HELLO);
                w.put_u32(*worker);
                w.put_u32(*incarnation);
                w.put_u32(*pid);
            }
            FromWorker::Done { job, result } => {
                w.put_u8(TAG_DONE);
                w.put_u64(*job);
                w.put_bytes(result);
            }
            FromWorker::Fail { job, reason } => {
                w.put_u8(TAG_FAIL);
                w.put_u64(*job);
                w.put_str(reason);
            }
            FromWorker::Pong { nonce } => {
                w.put_u8(TAG_PONG);
                w.put_u64(*nonce);
            }
        }
    }

    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            TAG_HELLO => Ok(FromWorker::Hello {
                worker: r.get_u32()?,
                incarnation: r.get_u32()?,
                pid: r.get_u32()?,
            }),
            TAG_DONE => Ok(FromWorker::Done {
                job: r.get_u64()?,
                result: r.get_bytes()?.to_vec(),
            }),
            TAG_FAIL => Ok(FromWorker::Fail {
                job: r.get_u64()?,
                reason: r.get_string()?,
            }),
            TAG_PONG => Ok(FromWorker::Pong {
                nonce: r.get_u64()?,
            }),
            _ => Err(SnapError::Invalid("unknown FromWorker tag")),
        }
    }
}

/// Encodes a message as a frame payload (the raw snap encoding — the
/// frame layer adds the envelope).
#[must_use]
pub fn encode_msg<M: Snapshot>(msg: &M) -> Vec<u8> {
    let mut w = SnapWriter::new();
    msg.snap(&mut w);
    w.into_bytes()
}

/// Decodes a frame payload back into a message, rejecting trailing
/// bytes.
///
/// # Errors
///
/// Returns a [`SnapError`] on truncated, invalid or oversized input.
pub fn decode_msg<M: Snapshot>(payload: &[u8]) -> Result<M, SnapError> {
    let mut r = SnapReader::new(payload);
    let msg = M::restore(&mut r)?;
    if r.remaining() != 0 {
        return Err(SnapError::TrailingBytes);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let to: Vec<ToWorker> = vec![
            ToWorker::Job {
                job: 42,
                family: "cedar.mix/1".to_owned(),
                input: 7u64.to_snapshot_bytes(),
            },
            ToWorker::Ping { nonce: 0xDEAD },
            ToWorker::Shutdown,
        ];
        for msg in to {
            let back: ToWorker = decode_msg(&encode_msg(&msg)).unwrap();
            assert_eq!(back, msg);
        }
        let from: Vec<FromWorker> = vec![
            FromWorker::Hello {
                worker: 3,
                incarnation: 2,
                pid: 999,
            },
            FromWorker::Done {
                job: 42,
                result: 49u64.to_snapshot_bytes(),
            },
            FromWorker::Fail {
                job: 42,
                reason: "family panicked".to_owned(),
            },
            FromWorker::Pong { nonce: 0xDEAD },
        ];
        for msg in from {
            let back: FromWorker = decode_msg(&encode_msg(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_rejected() {
        assert!(decode_msg::<ToWorker>(&[99]).is_err());
        assert!(decode_msg::<FromWorker>(&[99]).is_err());
        let mut payload = encode_msg(&ToWorker::Shutdown);
        payload.push(0);
        assert!(matches!(
            decode_msg::<ToWorker>(&payload),
            Err(SnapError::TrailingBytes)
        ));
    }

    #[test]
    fn nested_result_envelope_is_cache_identical() {
        // The bytes a worker ships inside Done must be exactly what a
        // local store would have written for the same value.
        let value = (3u64, 1.5f64);
        let msg = FromWorker::Done {
            job: 0,
            result: value.to_snapshot_bytes(),
        };
        let FromWorker::Done { result, .. } = decode_msg(&encode_msg(&msg)).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(result, value.to_snapshot_bytes());
        assert_eq!(<(u64, f64)>::from_snapshot_bytes(&result).unwrap(), value);
    }
}
