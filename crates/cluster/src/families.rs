//! Reference job families shared by the `cluster_node` harness binary
//! and the integration tests.
//!
//! Both sides of a cluster must agree on each family's function: the
//! coordinator asserts cluster results bit-identical to a serial
//! sweep, so the *same* Rust function must be callable in-process (for
//! the serial reference) and in the worker binary (for the fleet).
//! Keeping the fixtures here — in the library, not the binary — is
//! what guarantees that.

use crate::registry::JobRegistry;

/// Identity on `u64`: the cheapest possible round-trip check.
pub const ECHO: &str = "cedar.echo/1";

/// Deterministic SplitMix64-style mixing: cheap but non-trivial, with
/// a result that detects any corruption of input or output.
pub const MIX: &str = "cedar.mix/1";

/// [`MIX`] plus a calibrated spin, so jobs take long enough (a few
/// milliseconds) that chaos kills land mid-sweep rather than after it.
pub const SLOW_MIX: &str = "cedar.slow_mix/1";

/// The [`ECHO`] function.
#[must_use]
pub fn echo(x: u64) -> u64 {
    x
}

/// The [`MIX`] function: 256 rounds of SplitMix64-style mixing.
#[must_use]
pub fn mix(x: u64) -> u64 {
    let mut s = x;
    let mut out = 0u64;
    for _ in 0..256 {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        out ^= z ^ (z >> 31);
    }
    out
}

/// The [`SLOW_MIX`] function: same value as [`mix`], reached the slow
/// way (the spin feeds the result, so it cannot be optimised out).
#[must_use]
pub fn slow_mix(x: u64) -> u64 {
    let mut acc = x;
    for i in 0..400_000u64 {
        acc = acc.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(i);
    }
    // Fold the spin into a no-op the checker can still verify: acc is
    // deterministic, so xor-ing it in twice cancels exactly.
    mix(x) ^ acc ^ acc
}

/// The registry every cluster-capable binary in this workspace uses.
#[must_use]
pub fn default_registry() -> JobRegistry {
    let mut reg = JobRegistry::new();
    reg.register(ECHO, echo);
    reg.register(MIX, mix);
    reg.register(SLOW_MIX, slow_mix);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_deterministic_and_distinct() {
        assert_eq!(echo(7), 7);
        assert_eq!(mix(7), mix(7));
        assert_ne!(mix(7), mix(8));
        assert_eq!(slow_mix(7), mix(7), "slow path computes the same value");
        let reg = default_registry();
        assert_eq!(reg.families().count(), 3);
    }
}
