//! `cedar-cluster` — a supervised multi-process worker fleet for the
//! sweep harness.
//!
//! ROADMAP item 2: the paper's tables are big parameter sweeps, and
//! the related cluster-computing literature argues the hard part of
//! distributing them is not the fan-out but *surviving member
//! failure*. This crate supplies that supervision layer:
//!
//! * [`run_cluster_sweep`] — the coordinator. Spawns N worker
//!   **processes** (re-execs of the current binary, detected via
//!   [`maybe_worker`]), consistent-hashes sweep points onto them by
//!   their content-addressed `snapshot_key`, and merges results in
//!   input order, **bit-identical to a serial
//!   [`run_sweep`](cedar_exec::run_sweep)**.
//! * Crash recovery — spontaneous exits, hangs (reaped by seeded
//!   heartbeats over the `cedar-sim` [`Watchdog`]) and garbage frames
//!   (caught by the `cedar-snap` frame checksums) all lead to the same
//!   place: the worker's jobs return to the pool, survivors pick them
//!   up, and the dead slot restarts under a jittered
//!   [`RetryPolicy`](cedar_faults::RetryPolicy) backoff until its
//!   budget is exhausted.
//! * Exactly-once commits — the coordinator-side [`JobJournal`] keeps
//!   every point in exactly one of three states (unstarted / owned /
//!   committed) and refuses results from any incarnation that is not
//!   the current owner, so a re-issued job can never commit twice; the
//!   atomic [`CacheDir`](cedar_snap::CacheDir) makes the committed
//!   bytes the only ones ever visible on disk.
//! * Deterministic chaos — a seeded
//!   [`WorkerFaultPlan`](cedar_faults::WorkerFaultPlan) kills, stalls
//!   or corrupts chosen workers at chosen points, so the whole
//!   recovery story runs under test, repeatably.
//! * [`ClusterObs`] — per-worker health, restart counts and commit
//!   latency exported through `cedar-obs`.
//!
//! # Quick start
//!
//! A cluster-capable binary calls [`maybe_worker`] first, then may
//! coordinate:
//!
//! ```no_run
//! use cedar_cluster::{families, run_cluster_sweep, ClusterConfig};
//!
//! let registry = families::default_registry();
//! cedar_cluster::maybe_worker(&registry); // exits if spawned as a worker
//!
//! let config = ClusterConfig::new(4);
//! let report = run_cluster_sweep::<u64, u64>(
//!     &config,
//!     families::MIX,
//!     &(0..64).collect::<Vec<u64>>(),
//!     None,
//! )
//! .unwrap();
//! assert_eq!(report.results.len(), 64);
//! ```

#![warn(missing_docs)]

pub mod coordinator;
pub mod families;
pub mod journal;
pub mod obs;
pub mod proto;
pub mod registry;
pub mod ring;

pub use coordinator::{
    run_cluster_sweep, ClusterConfig, ClusterError, ClusterReport, ClusterStats,
};
pub use journal::{CommitOrigin, JobJournal, JobRecord, JobState};
pub use obs::{ClusterObs, MetricsServer};
pub use proto::{FromWorker, ToWorker};
pub use registry::{maybe_worker, JobRegistry, CHAOS_ENV, ID_ENV, INCARNATION_ENV, WORKER_ENV};
pub use ring::HashRing;
