//! End-to-end cluster tests against real re-exec'd worker processes.
//!
//! The worker binary is the crate's `cluster_node` harness; Cargo
//! hands its path to integration tests via `CARGO_BIN_EXE_*`. These
//! tests cover the full acceptance story: a clean fleet matching the
//! serial sweep bit-for-bit, a chaos fleet (kills, a hang, a corrupt
//! frame) recovering to the same bytes with an exactly-once journal,
//! typed fleet loss, cache interop with the in-process cached sweep,
//! and SIGKILL-mid-write atomicity of the cache itself.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use cedar_cluster::{families, run_cluster_sweep, ClusterConfig, ClusterError, ClusterObs};
use cedar_exec::run_sweep_on;
use cedar_faults::{RetryPolicy, WorkerFaultConfig, WorkerFaultKind, WorkerFaultPlan};
use cedar_snap::{CacheDir, Snapshot};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_cluster_node");

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cedar-cluster-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(workers: u32) -> ClusterConfig {
    let mut c = ClusterConfig::new(workers);
    c.worker_exe = Some(PathBuf::from(WORKER_BIN));
    c.tick = Duration::from_millis(10);
    c.heartbeat_every_ticks = 5;
    c.watchdog_budget_ticks = 50;
    c.job_deadline_ticks = 500;
    c.restart = RetryPolicy {
        base_delay_cycles: 5,
        max_retries: 3,
        max_delay_cycles: 200,
    };
    c.max_ticks = 3_000; // 30 s hard wall for any single test
    c
}

#[test]
fn clean_fleet_matches_serial_sweep() {
    let inputs: Vec<u64> = (0..24).collect();
    let serial = run_sweep_on(1, inputs.clone(), families::mix);
    let report = run_cluster_sweep::<u64, u64>(&config(3), families::MIX, &inputs, None).unwrap();
    assert_eq!(
        report.results, serial,
        "cluster must equal serial, bit for bit"
    );
    assert_eq!(report.stats.jobs, 24);
    assert_eq!(
        report.stats.worker_exits, 0,
        "no worker may die in a clean run"
    );
    assert_eq!(report.stats.restarts, 0);
    assert!(report.stats.journal.iter().all(|r| r.commits == 1));
}

#[test]
fn chaos_fleet_recovers_bit_identical_with_exactly_once_journal() {
    // The acceptance scenario: 4 workers, 2 killed mid-sweep, 1
    // stalled (reaped only by the heartbeat watchdog), 1 writing a
    // garbage frame — all from one seeded plan.
    let plan = WorkerFaultPlan::generate(&WorkerFaultConfig {
        seed: 0xC1A05,
        workers: 4,
        kills: 2,
        stalls: 1,
        corrupts: 1,
        max_after_jobs: 2,
    })
    .unwrap();
    assert_eq!(
        plan.faults()
            .iter()
            .filter(|f| f.kind == WorkerFaultKind::Kill)
            .count(),
        2
    );

    let dir = scratch("chaos");
    let cache = CacheDir::new(&dir).unwrap();
    let mut c = config(4);
    c.chaos = Some(plan);
    c.cache = Some(cache.clone());
    c.cache_namespace = "cluster.e2e.chaos/1".to_owned();
    let obs = ClusterObs::new();

    let inputs: Vec<u64> = (0..24).collect();
    let serial = run_sweep_on(1, inputs.clone(), families::slow_mix);
    let report =
        run_cluster_sweep::<u64, u64>(&c, families::SLOW_MIX, &inputs, Some(&obs)).unwrap();

    // Bit-identical to the serial sweep.
    assert_eq!(report.results, serial);

    // The failure modes all actually happened...
    let stats = &report.stats;
    assert!(stats.worker_exits >= 2, "two seeded kills: {stats:?}");
    assert!(
        stats.hangs_reaped >= 1,
        "the stall must be reaped: {stats:?}"
    );
    assert!(
        stats.garbage_frames >= 1,
        "the corrupt frame must be caught: {stats:?}"
    );
    assert!(
        stats.restarts >= 3,
        "dead workers must come back: {stats:?}"
    );
    assert!(stats.reissues >= 2, "killed workers held jobs: {stats:?}");

    // ...and none of it broke exactly-once: every point committed
    // exactly once, no more, no less.
    assert_eq!(stats.journal.len(), 24);
    for (i, r) in stats.journal.iter().enumerate() {
        assert_eq!(r.commits, 1, "job {i} must commit exactly once: {r:?}");
        assert!(r.issues >= 1, "job {i} must have been issued: {r:?}");
    }

    // Zero corrupt cache entries left behind, and every point's entry
    // decodes to the serial value.
    assert!(cache.corrupt_entries().unwrap().is_empty());
    for (i, input) in inputs.iter().enumerate() {
        let key = input.snapshot_key("cluster.e2e.chaos/1");
        assert_eq!(
            cache.load::<u64>(&key),
            Some(serial[i]),
            "cache entry for input {input} must hold the serial result"
        );
    }

    // The supervision story is visible through obs.
    assert!(obs.counter_value("cluster.worker.exits") >= 2);
    assert!(obs.counter_value("cluster.worker.hangs_reaped") >= 1);
    assert!(obs.counter_value("cluster.worker.restarts") >= 3);
    let prom = obs.prometheus();
    assert!(prom.contains("cluster_worker_0_incarnation"), "{prom}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn losing_every_worker_is_a_typed_error_not_a_hang() {
    // Both workers are seeded to die on their first job and get no
    // restart budget: the coordinator must report fleet loss quickly
    // instead of spinning to the tick wall.
    let plan = WorkerFaultPlan::generate(&WorkerFaultConfig {
        seed: 7,
        workers: 2,
        kills: 2,
        stalls: 0,
        corrupts: 0,
        max_after_jobs: 1,
    })
    .unwrap();
    let mut c = config(2);
    c.chaos = Some(plan);
    c.restart = RetryPolicy {
        base_delay_cycles: 1,
        max_retries: 0,
        max_delay_cycles: 10,
    };
    let inputs: Vec<u64> = (0..8).collect();
    match run_cluster_sweep::<u64, u64>(&c, families::MIX, &inputs, None) {
        Err(ClusterError::FleetLost { pending }) => {
            assert!(pending > 0, "jobs must still be pending at fleet loss")
        }
        other => panic!("expected FleetLost, got {other:?}"),
    }
}

#[test]
fn cluster_and_cached_sweep_share_the_same_cache_entries() {
    let dir = scratch("interop");
    let cache = CacheDir::new(&dir).unwrap();
    let namespace = "cluster.e2e.interop/1";
    let inputs: Vec<u64> = (100..120).collect();

    // Cold cluster run computes and stores every point.
    let mut c = config(2);
    c.cache = Some(cache.clone());
    c.cache_namespace = namespace.to_owned();
    let report = run_cluster_sweep::<u64, u64>(&c, families::MIX, &inputs, None).unwrap();
    assert_eq!(report.stats.cache_hits, 0);

    // The in-process cached sweep hits every entry the fleet wrote —
    // the closure proves it by refusing to compute anything.
    let warm = cedar_exec::run_sweep_cached(Some(&cache), namespace, inputs.clone(), |_| -> u64 {
        panic!("every point must be served from the cluster's cache")
    });
    assert_eq!(warm, report.results);

    // And a warm cluster run commits everything from cache without
    // dispatching a single job.
    let rerun = run_cluster_sweep::<u64, u64>(&c, families::MIX, &inputs, None).unwrap();
    assert_eq!(rerun.results, report.results);
    assert_eq!(rerun.stats.cache_hits, inputs.len());
    assert_eq!(rerun.stats.dispatched, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_write_never_exposes_a_partial_entry() {
    // A writer process stores the same entry in a tight loop; we
    // SIGKILL it at varying points while reading concurrently. Every
    // read must see either a clean miss or the complete value — and a
    // torn write must never surface as a corrupt (quarantined) entry.
    let dir = scratch("sigkill");
    let key = "deadbeefcafe0123";
    let expected: Vec<u64> = (0..8192).map(|i: u64| i.wrapping_mul(0xCEDA)).collect();
    let cache = CacheDir::new(&dir).unwrap();

    for round in 0..10u64 {
        let mut child = Command::new(WORKER_BIN)
            .args(["writer", dir.to_str().unwrap(), key])
            .spawn()
            .expect("spawn writer");
        // Read while the writer is live...
        let deadline = std::time::Instant::now() + Duration::from_millis(5 + round * 3);
        while std::time::Instant::now() < deadline {
            if let Some(v) = cache.load::<Vec<u64>>(key) {
                assert_eq!(v, expected, "round {round}: torn entry observed live");
            }
        }
        // ...then SIGKILL it mid-write and read again.
        child.kill().expect("kill writer");
        child.wait().expect("reap writer");
        if let Some(v) = cache.load::<Vec<u64>>(key) {
            assert_eq!(v, expected, "round {round}: torn entry observed after kill");
        }
        assert!(
            cache.corrupt_entries().unwrap().is_empty(),
            "round {round}: a torn write surfaced as corruption"
        );
    }
    // After the first completed store the entry exists forever; ten
    // rounds guarantee at least one completed.
    assert_eq!(cache.load::<Vec<u64>>(key), Some(expected));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deterministic_job_failure_is_fatal_and_typed() {
    // An unregistered family is a deterministic failure: re-running it
    // elsewhere cannot help, so the coordinator must fail fast.
    let inputs: Vec<u64> = (0..4).collect();
    match run_cluster_sweep::<u64, u64>(&config(2), "no.such.family/1", &inputs, None) {
        Err(ClusterError::JobFailed { reason, .. }) => {
            assert!(reason.contains("unknown job family"), "{reason}")
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
}
