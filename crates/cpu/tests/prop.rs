//! Property-based tests for the CE components.

use proptest::prelude::*;

use cedar_cpu::ccbus::ConcurrencyBus;
use cedar_cpu::ce::PAGE_BYTES;
use cedar_cpu::prefetch::PrefetchUnit;
use cedar_cpu::vector::{MemOperand, VectorTiming, VectorUnit};

proptest! {
    /// The PFU issues exactly the unmasked addresses of the armed
    /// vector, in order, with the right stride, resuming across any
    /// number of page crossings.
    #[test]
    fn pfu_issues_exactly_the_armed_vector(
        length in 1u32..512,
        stride in 1u64..16,
        start_word in 0u64..2048,
        mask in any::<u64>(),
    ) {
        let mut pfu = PrefetchUnit::new();
        pfu.arm(length, stride, mask);
        let start = start_word * 8;
        pfu.fire(start);
        let mut got = Vec::new();
        let mut resumes = 0;
        loop {
            while let Some(addr) = pfu.next_request() {
                got.push(addr);
            }
            if pfu.is_done() {
                break;
            }
            prop_assert!(pfu.is_suspended(), "not done and not suspended");
            // The CPU supplies the next address (element `issued`).
            let next = start + pfu.issued() as u64 * stride * 8;
            pfu.resume_at(next);
            resumes += 1;
            prop_assert!(resumes <= 1024, "suspension livelock");
        }
        // Reference: unmasked elements only.
        let expected: Vec<u64> = (0..length)
            .filter(|e| mask & (1u64 << (e % 64)) != 0)
            .map(|e| start + u64::from(e) * stride * 8)
            .collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(pfu.issued(), length);
        // Suspension count equals the page crossings of the walk.
        let crossings = (0..length)
            .map(|e| (start + u64::from(e) * stride * 8) / PAGE_BYTES)
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count() as u64;
        prop_assert_eq!(pfu.page_suspension_count(), crossings);
    }

    /// Self-scheduling dispenses every iteration exactly once, and the
    /// per-CE loads differ by at most one.
    #[test]
    fn ccbus_dispenses_fairly(ces in 1usize..=8, iterations in 0u64..500) {
        let mut bus = ConcurrencyBus::new(ces);
        bus.concurrent_start(iterations);
        let mut per_ce = vec![0u64; ces];
        let mut seen = vec![false; iterations as usize];
        while let Some((ce, iter)) = bus.self_schedule_next() {
            per_ce[ce] += 1;
            prop_assert!(!seen[iter as usize]);
            seen[iter as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        let max = per_ce.iter().max().copied().unwrap_or(0);
        let min = per_ce.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "round-robin must balance");
    }

    /// Static partitions cover the range exactly once, contiguously.
    #[test]
    fn static_partition_covers_exactly(ces in 1usize..=8, iterations in 0u64..1000) {
        let bus = ConcurrencyBus::new(ces);
        let parts = bus.static_partition(iterations);
        prop_assert_eq!(parts.len(), ces);
        let mut cursor = 0;
        for &(start, end) in &parts {
            prop_assert_eq!(start, cursor, "contiguous");
            prop_assert!(end >= start);
            cursor = end;
        }
        prop_assert_eq!(cursor, iterations, "covers everything");
        let sizes: Vec<u64> = parts.iter().map(|(s, e)| e - s).collect();
        let max = sizes.iter().max().copied().unwrap_or(0);
        let min = sizes.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "balanced within one iteration");
    }

    /// Vector timing is monotone and superadditive-with-startup:
    /// strip-mining n elements costs at least the single-instruction
    /// rate and at most one extra startup per chunk.
    #[test]
    fn vector_strip_mining_bounds(n in 0usize..2000) {
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        let cycles = vu.strip_mined_cycles(n, MemOperand::ClusterCache, &t);
        let chunks = n.div_ceil(32) as u64;
        let lower = n as u64; // one element per cycle minimum
        let upper = n as u64 + chunks * t.startup_cycles;
        prop_assert!(cycles >= lower);
        prop_assert!(cycles <= upper);
        // Monotonicity.
        let next = vu.strip_mined_cycles(n + 1, MemOperand::ClusterCache, &t);
        prop_assert!(next >= cycles);
    }

    /// A slower memory operand never makes a vector op faster.
    #[test]
    fn slower_operands_never_speed_up(n in 1usize..=32, slow_cpw in 1.0f64..16.0) {
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        let fast = vu.op_cycles(n, MemOperand::global(1.0), &t);
        let slow = vu.op_cycles(n, MemOperand::global(slow_cpw), &t);
        prop_assert!(slow >= fast);
    }
}
