//! Randomized property tests for the CE components, driven by the
//! simulator's deterministic SplitMix64 generator.

use cedar_cpu::ccbus::ConcurrencyBus;
use cedar_cpu::ce::PAGE_BYTES;
use cedar_cpu::prefetch::PrefetchUnit;
use cedar_cpu::vector::{MemOperand, VectorTiming, VectorUnit};
use cedar_sim::rng::SplitMix64;

const CASES: usize = 64;

/// The PFU issues exactly the unmasked addresses of the armed vector,
/// in order, with the right stride, resuming across any number of page
/// crossings.
#[test]
fn pfu_issues_exactly_the_armed_vector() {
    let mut rng = SplitMix64::new(0xcb01);
    for _ in 0..CASES {
        let length = 1 + rng.next_below(511) as u32;
        let stride = 1 + rng.next_below(15);
        let start_word = rng.next_below(2048);
        let mask = rng.next_u64();

        let mut pfu = PrefetchUnit::new();
        pfu.arm(length, stride, mask);
        let start = start_word * 8;
        pfu.fire(start);
        let mut got = Vec::new();
        let mut resumes = 0;
        loop {
            while let Some(addr) = pfu.next_request() {
                got.push(addr);
            }
            if pfu.is_done() {
                break;
            }
            assert!(pfu.is_suspended(), "not done and not suspended");
            // The CPU supplies the next address (element `issued`).
            let next = start + u64::from(pfu.issued()) * stride * 8;
            pfu.resume_at(next);
            resumes += 1;
            assert!(resumes <= 1024, "suspension livelock");
        }
        // Reference: unmasked elements only.
        let expected: Vec<u64> = (0..length)
            .filter(|e| mask & (1u64 << (e % 64)) != 0)
            .map(|e| start + u64::from(e) * stride * 8)
            .collect();
        assert_eq!(got, expected);
        assert_eq!(pfu.issued(), length);
        // Suspension count equals the page crossings of the walk.
        let crossings = (0..length)
            .map(|e| (start + u64::from(e) * stride * 8) / PAGE_BYTES)
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count() as u64;
        assert_eq!(pfu.page_suspension_count(), crossings);
    }
}

/// Self-scheduling dispenses every iteration exactly once, and the
/// per-CE loads differ by at most one.
#[test]
fn ccbus_dispenses_fairly() {
    let mut rng = SplitMix64::new(0xcb02);
    for _ in 0..CASES {
        let ces = 1 + rng.next_below(8) as usize;
        let iterations = rng.next_below(500);
        let mut bus = ConcurrencyBus::new(ces);
        bus.concurrent_start(iterations);
        let mut per_ce = vec![0u64; ces];
        let mut seen = vec![false; iterations as usize];
        while let Some((ce, iter)) = bus.self_schedule_next() {
            per_ce[ce] += 1;
            assert!(!seen[iter as usize]);
            seen[iter as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let max = per_ce.iter().max().copied().unwrap_or(0);
        let min = per_ce.iter().min().copied().unwrap_or(0);
        assert!(max - min <= 1, "round-robin must balance");
    }
}

/// Static partitions cover the range exactly once, contiguously.
#[test]
fn static_partition_covers_exactly() {
    let mut rng = SplitMix64::new(0xcb03);
    for _ in 0..CASES {
        let ces = 1 + rng.next_below(8) as usize;
        let iterations = rng.next_below(1000);
        let bus = ConcurrencyBus::new(ces);
        let parts = bus.static_partition(iterations);
        assert_eq!(parts.len(), ces);
        let mut cursor = 0;
        for &(start, end) in &parts {
            assert_eq!(start, cursor, "contiguous");
            assert!(end >= start);
            cursor = end;
        }
        assert_eq!(cursor, iterations, "covers everything");
        let sizes: Vec<u64> = parts.iter().map(|(s, e)| e - s).collect();
        let max = sizes.iter().max().copied().unwrap_or(0);
        let min = sizes.iter().min().copied().unwrap_or(0);
        assert!(max - min <= 1, "balanced within one iteration");
    }
}

/// Vector timing is monotone and superadditive-with-startup:
/// strip-mining n elements costs at least the single-instruction rate
/// and at most one extra startup per chunk.
#[test]
fn vector_strip_mining_bounds() {
    let mut rng = SplitMix64::new(0xcb04);
    for _ in 0..CASES {
        let n = rng.next_below(2000) as usize;
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        let cycles = vu.strip_mined_cycles(n, MemOperand::ClusterCache, &t);
        let chunks = n.div_ceil(32) as u64;
        let lower = n as u64; // one element per cycle minimum
        let upper = n as u64 + chunks * t.startup_cycles;
        assert!(cycles >= lower);
        assert!(cycles <= upper);
        // Monotonicity.
        let next = vu.strip_mined_cycles(n + 1, MemOperand::ClusterCache, &t);
        assert!(next >= cycles);
    }
}

/// A slower memory operand never makes a vector op faster.
#[test]
fn slower_operands_never_speed_up() {
    let mut rng = SplitMix64::new(0xcb05);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(32) as usize;
        let slow_cpw = 1.0 + rng.next_f64() * 15.0;
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        let fast = vu.op_cycles(n, MemOperand::global(1.0), &t);
        let slow = vu.op_cycles(n, MemOperand::global(slow_cpw), &t);
        assert!(slow >= fast);
    }
}
