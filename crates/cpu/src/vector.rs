//! Vector-unit timing model.
//!
//! The CE's vector unit implements 64-bit floating-point and integer
//! operations over eight 32-word vector registers. Instructions can
//! take a register-memory form with one memory operand, so a chained
//! multiply-add sustains two flops per element delivered — the source
//! of the 11.8 MFLOPS per-CE peak (2 flops / 170 ns cycle).
//!
//! The paper distinguishes the machine's 376 MFLOPS "absolute peak"
//! from a 274 MFLOPS "effective peak due to unavoidable vector
//! startup"; with 32-element registers that ratio pins the startup
//! cost at about 12 cycles per vector instruction, which is the
//! default here.

/// Where a register-memory vector instruction's memory operand lives,
/// which sets the per-element delivery rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOperand {
    /// No memory operand: register-register.
    None,
    /// Cluster shared cache: one word per cycle per CE (the cache
    /// supplies one input stream to a vector instruction in each CE).
    ClusterCache,
    /// Cluster memory (cache miss traffic): half the cache bandwidth.
    ClusterMemory,
    /// Global memory through the network with the given effective
    /// cycles-per-word (measured by the fabric under the prevailing
    /// load; ~1 when prefetch pipelines perfectly, 13 when each
    /// element pays the full unmasked latency).
    Global {
        /// Effective delivery cost per element, in hundredths of a
        /// cycle (fixed-point so the type stays `Eq`/`Hash`).
        centi_cycles_per_word: u32,
    },
}

impl MemOperand {
    /// Builds a global operand from a float cycles-per-word.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_word` is negative or not finite.
    #[must_use]
    pub fn global(cycles_per_word: f64) -> Self {
        assert!(
            cycles_per_word.is_finite() && cycles_per_word >= 0.0,
            "cycles per word must be a non-negative finite number"
        );
        MemOperand::Global {
            centi_cycles_per_word: (cycles_per_word * 100.0).round() as u32,
        }
    }

    /// The per-element delivery cost in cycles.
    #[must_use]
    pub fn cycles_per_word(self, timing: &VectorTiming) -> f64 {
        match self {
            MemOperand::None => 0.0,
            MemOperand::ClusterCache => timing.cache_cycles_per_word,
            MemOperand::ClusterMemory => timing.cluster_mem_cycles_per_word,
            MemOperand::Global {
                centi_cycles_per_word,
            } => f64::from(centi_cycles_per_word) / 100.0,
        }
    }
}

/// Per-machine vector timing constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorTiming {
    /// Pipeline fill cost per vector instruction, in cycles.
    pub startup_cycles: u64,
    /// Per-element compute rate in cycles (1.0: one element per cycle,
    /// with chaining delivering up to 2 flops in that element).
    pub compute_cycles_per_element: f64,
    /// Cache delivery rate, cycles per word.
    pub cache_cycles_per_word: f64,
    /// Cluster-memory delivery rate, cycles per word (half the cache
    /// bandwidth per the paper).
    pub cluster_mem_cycles_per_word: f64,
}

impl VectorTiming {
    /// Cedar/Alliant values.
    #[must_use]
    pub fn cedar() -> Self {
        VectorTiming {
            startup_cycles: 12,
            compute_cycles_per_element: 1.0,
            cache_cycles_per_word: 1.0,
            cluster_mem_cycles_per_word: 2.0,
        }
    }
}

impl Default for VectorTiming {
    fn default() -> Self {
        VectorTiming::cedar()
    }
}

/// The vector unit itself: register geometry plus timing queries.
///
/// # Examples
///
/// ```
/// use cedar_cpu::vector::{MemOperand, VectorTiming, VectorUnit};
///
/// let vu = VectorUnit::cedar();
/// assert_eq!(vu.register_words(), 32);
/// let t = VectorTiming::cedar();
/// // Register-register op on a full register: startup + 32 cycles.
/// assert_eq!(vu.op_cycles(32, MemOperand::None, &t), 44);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorUnit {
    registers: usize,
    register_words: usize,
}

impl VectorUnit {
    /// The Cedar CE vector unit: eight 32-word registers.
    #[must_use]
    pub fn cedar() -> Self {
        VectorUnit {
            registers: 8,
            register_words: 32,
        }
    }

    /// Number of vector registers.
    #[must_use]
    pub fn registers(&self) -> usize {
        self.registers
    }

    /// Words per vector register (the maximum vector instruction
    /// length).
    #[must_use]
    pub fn register_words(&self) -> usize {
        self.register_words
    }

    /// Cycles for one vector instruction over `len` elements with the
    /// given memory operand. The per-element cost is the larger of the
    /// compute rate and the operand delivery rate (the pipeline runs
    /// at the slower of the two).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the register length.
    #[must_use]
    pub fn op_cycles(&self, len: usize, operand: MemOperand, timing: &VectorTiming) -> u64 {
        assert!(
            len <= self.register_words,
            "vector length {len} exceeds register length {}",
            self.register_words
        );
        let per_element = timing
            .compute_cycles_per_element
            .max(operand.cycles_per_word(timing));
        timing.startup_cycles + (len as f64 * per_element).ceil() as u64
    }

    /// Cycles to stream an `n`-element vector operation by strip-mining
    /// into register-length chunks, each a separate instruction paying
    /// startup.
    #[must_use]
    pub fn strip_mined_cycles(&self, n: usize, operand: MemOperand, timing: &VectorTiming) -> u64 {
        let full = n / self.register_words;
        let rem = n % self.register_words;
        let mut total = full as u64 * self.op_cycles(self.register_words, operand, timing);
        if rem > 0 {
            total += self.op_cycles(rem, operand, timing);
        }
        total
    }

    /// Sustained MFLOPS for a strip-mined stream of chained
    /// (2-flop-per-element) vector operations at the given clock.
    #[must_use]
    pub fn sustained_mflops(
        &self,
        n: usize,
        flops_per_element: f64,
        operand: MemOperand,
        timing: &VectorTiming,
        cycle_seconds: f64,
    ) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let cycles = self.strip_mined_cycles(n, operand, timing);
        let flops = n as f64 * flops_per_element;
        flops / (cycles as f64 * cycle_seconds) / 1e6
    }
}

impl cedar_snap::Snapshot for MemOperand {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        match self {
            MemOperand::None => w.put_u8(0),
            MemOperand::ClusterCache => w.put_u8(1),
            MemOperand::ClusterMemory => w.put_u8(2),
            MemOperand::Global {
                centi_cycles_per_word,
            } => {
                w.put_u8(3);
                w.put_u32(*centi_cycles_per_word);
            }
        }
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(MemOperand::None),
            1 => Ok(MemOperand::ClusterCache),
            2 => Ok(MemOperand::ClusterMemory),
            3 => Ok(MemOperand::Global {
                centi_cycles_per_word: r.get_u32()?,
            }),
            _ => Err(cedar_snap::SnapError::Invalid("memory operand tag")),
        }
    }
}

cedar_snap::snapshot_struct!(VectorTiming {
    startup_cycles,
    compute_cycles_per_element,
    cache_cycles_per_word,
    cluster_mem_cycles_per_word,
});
cedar_snap::snapshot_struct!(VectorUnit {
    registers,
    register_words,
});

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLE: f64 = 170e-9;

    #[test]
    fn register_geometry() {
        let vu = VectorUnit::cedar();
        assert_eq!(vu.registers(), 8);
        assert_eq!(vu.register_words(), 32);
    }

    #[test]
    fn peak_mflops_matches_paper() {
        // 2 flops per cycle at 170ns = 11.76 MFLOPS absolute peak.
        let peak = 2.0 / CYCLE / 1e6;
        assert!((peak - 11.76).abs() < 0.02);
    }

    #[test]
    fn effective_peak_matches_paper() {
        // Chained ops from cache on full registers: the 274/376 ratio.
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        let sustained = vu.sustained_mflops(1 << 20, 2.0, MemOperand::ClusterCache, &t, CYCLE);
        let machine_effective = sustained * 32.0;
        assert!(
            (machine_effective - 274.0).abs() < 6.0,
            "32-CE effective peak {machine_effective} should be about 274 MFLOPS"
        );
    }

    #[test]
    fn slower_operand_dominates_rate() {
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        let cache = vu.op_cycles(32, MemOperand::ClusterCache, &t);
        let mem = vu.op_cycles(32, MemOperand::ClusterMemory, &t);
        let slow_global = vu.op_cycles(32, MemOperand::global(13.0), &t);
        assert_eq!(cache, 44);
        assert_eq!(mem, 76);
        assert_eq!(slow_global, 12 + 32 * 13);
    }

    #[test]
    fn fast_global_behaves_like_compute_bound() {
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        // Prefetch pipelining can deliver ~1 word/cycle; compute rate
        // then dominates.
        assert_eq!(
            vu.op_cycles(32, MemOperand::global(0.5), &t),
            vu.op_cycles(32, MemOperand::None, &t)
        );
    }

    #[test]
    fn strip_mining_pays_startup_per_chunk() {
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        let one = vu.op_cycles(32, MemOperand::None, &t);
        assert_eq!(vu.strip_mined_cycles(64, MemOperand::None, &t), 2 * one);
        let with_rem = vu.strip_mined_cycles(40, MemOperand::None, &t);
        assert_eq!(with_rem, one + vu.op_cycles(8, MemOperand::None, &t));
    }

    #[test]
    fn zero_length_costs_nothing() {
        let vu = VectorUnit::cedar();
        let t = VectorTiming::cedar();
        assert_eq!(vu.strip_mined_cycles(0, MemOperand::None, &t), 0);
        assert_eq!(
            vu.sustained_mflops(0, 2.0, MemOperand::None, &t, CYCLE),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "exceeds register length")]
    fn overlong_vector_rejected() {
        let vu = VectorUnit::cedar();
        let _ = vu.op_cycles(33, MemOperand::None, &VectorTiming::cedar());
    }

    #[test]
    fn global_operand_fixed_point_round_trips() {
        let op = MemOperand::global(2.13);
        let t = VectorTiming::cedar();
        assert!((op.cycles_per_word(&t) - 2.13).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "non-negative finite")]
    fn negative_global_rate_rejected() {
        let _ = MemOperand::global(-1.0);
    }
}
