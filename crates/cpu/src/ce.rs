//! The computational element: configuration and aggregate counters.
//!
//! A CE bundles the scalar engine (a pipelined 68020-compatible core
//! at 170 ns/instruction), the vector unit, and the prefetch unit. The
//! cluster couples eight of them to the shared cache and the
//! concurrency control bus.

use cedar_sim::time::{ClockPeriod, CycleDelta};

use crate::prefetch::PrefetchUnit;
use crate::vector::{MemOperand, VectorTiming, VectorUnit};

/// Page size the PFU's crossing logic uses, matching the Xylem 4 KB
/// page (duplicated from `cedar-mem` to keep this crate's dependency
/// on it interface-only).
pub const PAGE_BYTES: u64 = 4096;

/// Static configuration of one CE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CeConfig {
    /// Instruction cycle time. Cedar: 170 ns.
    pub clock: ClockPeriod,
    /// Vector timing constants.
    pub vector: VectorTiming,
    /// Cycles per scalar instruction (the 68020-compatible core
    /// averages about one instruction per cycle on integer work).
    pub scalar_cpi: f64,
}

impl CeConfig {
    /// The Cedar CE.
    #[must_use]
    pub fn cedar() -> Self {
        CeConfig {
            clock: ClockPeriod::from_nanos(170.0),
            vector: VectorTiming::cedar(),
            scalar_cpi: 1.0,
        }
    }

    /// Peak MFLOPS of one CE: two chained flops per cycle.
    #[must_use]
    pub fn peak_mflops(&self) -> f64 {
        2.0 / self.clock.seconds() / 1e6
    }
}

impl Default for CeConfig {
    fn default() -> Self {
        CeConfig::cedar()
    }
}

/// One computational element with its vector and prefetch units and
/// cycle/flop accounting.
///
/// # Examples
///
/// ```
/// use cedar_cpu::ce::{CeConfig, ComputationalElement};
/// use cedar_cpu::vector::MemOperand;
///
/// let mut ce = ComputationalElement::new(CeConfig::cedar());
/// ce.run_vector(1024, 2.0, MemOperand::ClusterCache);
/// assert_eq!(ce.flops(), 2048.0);
/// assert!(ce.busy_cycles().as_u64() > 1024);
/// ```
#[derive(Debug, Clone)]
pub struct ComputationalElement {
    cfg: CeConfig,
    vector_unit: VectorUnit,
    prefetch_unit: PrefetchUnit,
    busy: CycleDelta,
    flops: f64,
    vector_instructions: u64,
    scalar_instructions: u64,
}

impl ComputationalElement {
    /// Creates an idle CE.
    #[must_use]
    pub fn new(cfg: CeConfig) -> Self {
        ComputationalElement {
            cfg,
            vector_unit: VectorUnit::cedar(),
            prefetch_unit: PrefetchUnit::new(),
            busy: CycleDelta::ZERO,
            flops: 0.0,
            vector_instructions: 0,
            scalar_instructions: 0,
        }
    }

    /// The CE's configuration.
    #[must_use]
    pub fn config(&self) -> &CeConfig {
        &self.cfg
    }

    /// The vector unit.
    #[must_use]
    pub fn vector_unit(&self) -> &VectorUnit {
        &self.vector_unit
    }

    /// The prefetch unit.
    #[must_use]
    pub fn prefetch_unit(&self) -> &PrefetchUnit {
        &self.prefetch_unit
    }

    /// Mutable access to the prefetch unit.
    pub fn prefetch_unit_mut(&mut self) -> &mut PrefetchUnit {
        &mut self.prefetch_unit
    }

    /// Executes an `n`-element strip-mined vector stream with
    /// `flops_per_element` useful flops per element and the given
    /// memory operand, accumulating busy time and flops.
    pub fn run_vector(&mut self, n: usize, flops_per_element: f64, operand: MemOperand) {
        let cycles = self
            .vector_unit
            .strip_mined_cycles(n, operand, &self.cfg.vector);
        self.busy += CycleDelta::new(cycles);
        self.flops += n as f64 * flops_per_element;
        let reg = self.vector_unit.register_words();
        self.vector_instructions += n.div_ceil(reg) as u64;
    }

    /// Executes `n` scalar instructions, of which `flops` are
    /// floating-point operations.
    pub fn run_scalar(&mut self, n: u64, flops: f64) {
        self.busy += CycleDelta::new((n as f64 * self.cfg.scalar_cpi).ceil() as u64);
        self.flops += flops;
        self.scalar_instructions += n;
    }

    /// Adds raw stall/overhead cycles (memory waits, sync waits).
    pub fn stall(&mut self, cycles: CycleDelta) {
        self.busy += cycles;
    }

    /// Total busy time.
    #[must_use]
    pub fn busy_cycles(&self) -> CycleDelta {
        self.busy
    }

    /// Busy time in seconds at the configured clock.
    #[must_use]
    pub fn busy_seconds(&self) -> f64 {
        self.cfg.clock.to_seconds(self.busy)
    }

    /// Accumulated floating-point operations.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Achieved MFLOPS over the busy period (0 when idle).
    #[must_use]
    pub fn achieved_mflops(&self) -> f64 {
        let secs = self.busy_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.flops / secs / 1e6
        }
    }

    /// Vector instructions issued.
    #[must_use]
    pub fn vector_instruction_count(&self) -> u64 {
        self.vector_instructions
    }

    /// Scalar instructions issued.
    #[must_use]
    pub fn scalar_instruction_count(&self) -> u64 {
        self.scalar_instructions
    }

    /// Clears accounting but keeps unit state.
    pub fn reset_counters(&mut self) {
        self.busy = CycleDelta::ZERO;
        self.flops = 0.0;
        self.vector_instructions = 0;
        self.scalar_instructions = 0;
    }
}

cedar_snap::snapshot_struct!(CeConfig {
    clock,
    vector,
    scalar_cpi,
});
cedar_snap::snapshot_struct!(ComputationalElement {
    cfg,
    vector_unit,
    prefetch_unit,
    busy,
    flops,
    vector_instructions,
    scalar_instructions,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_mflops_is_11_76() {
        let cfg = CeConfig::cedar();
        assert!((cfg.peak_mflops() - 11.76).abs() < 0.02);
    }

    #[test]
    fn vector_run_accumulates_time_and_flops() {
        let mut ce = ComputationalElement::new(CeConfig::cedar());
        ce.run_vector(64, 2.0, MemOperand::ClusterCache);
        assert_eq!(ce.flops(), 128.0);
        assert_eq!(ce.busy_cycles().as_u64(), 2 * (12 + 32));
        assert_eq!(ce.vector_instruction_count(), 2);
    }

    #[test]
    fn cache_fed_chained_stream_approaches_effective_peak() {
        let mut ce = ComputationalElement::new(CeConfig::cedar());
        ce.run_vector(1 << 16, 2.0, MemOperand::ClusterCache);
        let mflops = ce.achieved_mflops();
        // 274/32 = 8.56 MFLOPS effective per CE.
        assert!(
            (mflops - 8.56).abs() < 0.2,
            "cache-fed sustained {mflops} should be near 8.56"
        );
    }

    #[test]
    fn unmasked_global_latency_cripples_throughput() {
        let mut slow = ComputationalElement::new(CeConfig::cedar());
        // 13-cycle unmasked latency per element, two outstanding
        // requests overlap -> ~6.5 effective cycles per element.
        slow.run_vector(1 << 12, 2.0, MemOperand::global(6.5));
        let mut fast = ComputationalElement::new(CeConfig::cedar());
        fast.run_vector(1 << 12, 2.0, MemOperand::global(1.1));
        assert!(slow.achieved_mflops() * 3.0 < fast.achieved_mflops() * 1.2);
    }

    #[test]
    fn scalar_work_counts_instructions() {
        let mut ce = ComputationalElement::new(CeConfig::cedar());
        ce.run_scalar(1000, 10.0);
        assert_eq!(ce.scalar_instruction_count(), 1000);
        assert_eq!(ce.busy_cycles().as_u64(), 1000);
        assert_eq!(ce.flops(), 10.0);
    }

    #[test]
    fn stall_adds_dead_time() {
        let mut ce = ComputationalElement::new(CeConfig::cedar());
        ce.run_vector(32, 2.0, MemOperand::None);
        let before = ce.achieved_mflops();
        ce.stall(CycleDelta::new(1000));
        assert!(ce.achieved_mflops() < before);
    }

    #[test]
    fn reset_clears_counters() {
        let mut ce = ComputationalElement::new(CeConfig::cedar());
        ce.run_vector(32, 2.0, MemOperand::None);
        ce.reset_counters();
        assert_eq!(ce.flops(), 0.0);
        assert_eq!(ce.busy_cycles(), CycleDelta::ZERO);
        assert_eq!(ce.achieved_mflops(), 0.0);
    }
}
