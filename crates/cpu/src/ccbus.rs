//! The concurrency control bus.
//!
//! Each CE connects to a cluster-wide concurrency control bus
//! "designed to support efficient execution of parallel loops.
//! Concurrency control instructions implement fast fork, join and
//! synchronization operations. For example: concurrent start is a
//! single instruction that 'spreads' the iterations of a parallel loop
//! from one to all the CES in a cluster by broadcasting the program
//! counter and setting up private, per processor stacks. The whole
//! cluster is thus 'gang-scheduled.' CES within a cluster can then
//! 'self-schedule' iterations of the parallel loop among themselves."
//!
//! The bus makes intra-cluster loop control orders of magnitude
//! cheaper than global-memory scheduling: a CDOALL "can typically
//! start in a few microseconds" versus the XDOALL's 90 µs.

/// Cost constants for bus operations, in CE cycles.
///
/// At 170 ns/cycle, the 18-cycle concurrent start is ~3 µs — the
/// paper's "few microseconds" — and an iteration self-schedule is a
/// single bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusCosts {
    /// `concurrent start`: broadcast PC + private stack setup.
    pub concurrent_start_cycles: u64,
    /// One self-scheduled iteration fetch over the bus.
    pub self_schedule_cycles: u64,
    /// Join/barrier across the cluster over the bus.
    pub join_cycles: u64,
}

impl BusCosts {
    /// Cedar/Alliant values.
    #[must_use]
    pub fn cedar() -> Self {
        BusCosts {
            concurrent_start_cycles: 18,
            self_schedule_cycles: 4,
            join_cycles: 12,
        }
    }
}

impl Default for BusCosts {
    fn default() -> Self {
        BusCosts::cedar()
    }
}

/// The cluster's concurrency control bus: gang-scheduling state plus
/// an iteration dispenser for self-scheduling.
///
/// # Examples
///
/// ```
/// use cedar_cpu::ccbus::ConcurrencyBus;
///
/// let mut bus = ConcurrencyBus::new(8);
/// bus.concurrent_start(20);
/// let mut iterations_by_ce = vec![0u32; 8];
/// while let Some((ce, _iter)) = bus.self_schedule_next() {
///     iterations_by_ce[ce] += 1;
/// }
/// assert_eq!(iterations_by_ce.iter().sum::<u32>(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrencyBus {
    ces: usize,
    costs: BusCosts,
    /// Remaining loop bounds for the current concurrent start.
    next_iteration: u64,
    total_iterations: u64,
    /// Round-robin pointer mimicking whichever CE's bus request wins.
    next_ce: usize,
    /// CEs that have reached the join point.
    joined: Vec<bool>,
    starts: u64,
    dispatches: u64,
}

impl ConcurrencyBus {
    /// Creates a bus for a cluster of `ces` processors.
    ///
    /// # Panics
    ///
    /// Panics if `ces` is zero.
    #[must_use]
    pub fn new(ces: usize) -> Self {
        assert!(ces > 0, "a cluster needs at least one CE");
        ConcurrencyBus {
            ces,
            costs: BusCosts::cedar(),
            next_iteration: 0,
            total_iterations: 0,
            next_ce: 0,
            joined: vec![false; ces],
            starts: 0,
            dispatches: 0,
        }
    }

    /// The bus cost constants.
    #[must_use]
    pub fn costs(&self) -> &BusCosts {
        &self.costs
    }

    /// Number of CEs on the bus.
    #[must_use]
    pub fn ces(&self) -> usize {
        self.ces
    }

    /// Executes `concurrent start` for a loop of `iterations`: the
    /// whole cluster is gang-scheduled onto the loop.
    pub fn concurrent_start(&mut self, iterations: u64) {
        self.next_iteration = 0;
        self.total_iterations = iterations;
        self.joined.iter_mut().for_each(|j| *j = false);
        self.starts += 1;
    }

    /// Dispenses the next loop iteration to a CE (round-robin among
    /// requesters), or `None` when the loop is exhausted.
    pub fn self_schedule_next(&mut self) -> Option<(usize, u64)> {
        if self.next_iteration >= self.total_iterations {
            return None;
        }
        let iter = self.next_iteration;
        self.next_iteration += 1;
        let ce = self.next_ce;
        self.next_ce = (self.next_ce + 1) % self.ces;
        self.dispatches += 1;
        Some((ce, iter))
    }

    /// Marks a CE as arrived at the join. Returns `true` when every CE
    /// has joined (the join completes and arrival state resets).
    ///
    /// # Panics
    ///
    /// Panics if `ce` is out of range.
    pub fn join(&mut self, ce: usize) -> bool {
        self.joined[ce] = true;
        if self.joined.iter().all(|&j| j) {
            self.joined.iter_mut().for_each(|j| *j = false);
            true
        } else {
            false
        }
    }

    /// Static block partition of `iterations` across the cluster:
    /// `(start, end)` for each CE, contiguous and balanced. This is the
    /// statically-scheduled CDOALL alternative to self-scheduling.
    #[must_use]
    pub fn static_partition(&self, iterations: u64) -> Vec<(u64, u64)> {
        let base = iterations / self.ces as u64;
        let extra = iterations % self.ces as u64;
        let mut out = Vec::with_capacity(self.ces);
        let mut start = 0;
        for ce in 0..self.ces as u64 {
            let len = base + u64::from(ce < extra);
            out.push((start, start + len));
            start += len;
        }
        out
    }

    /// Total `concurrent start` instructions executed.
    #[must_use]
    pub fn start_count(&self) -> u64 {
        self.starts
    }

    /// Total self-scheduled dispatches served.
    #[must_use]
    pub fn dispatch_count(&self) -> u64 {
        self.dispatches
    }

    /// Cycles to run a self-scheduled cluster loop of `iterations`
    /// iterations whose bodies each take `body_cycles`: start cost plus
    /// the per-CE share including dispatch overhead, assuming the bus
    /// serializes dispatches but bodies run in parallel.
    #[must_use]
    pub fn self_scheduled_loop_cycles(&self, iterations: u64, body_cycles: u64) -> u64 {
        if iterations == 0 {
            return self.costs.concurrent_start_cycles;
        }
        let per_iter = body_cycles + self.costs.self_schedule_cycles;
        let per_ce = iterations.div_ceil(self.ces as u64) * per_iter;
        // Bus serialization floor: one dispatch per bus transaction.
        let bus_floor = iterations * self.costs.self_schedule_cycles;
        self.costs.concurrent_start_cycles
            + per_ce.max(bus_floor / self.ces as u64)
            + self.costs.join_cycles
    }
}

cedar_snap::snapshot_struct!(BusCosts {
    concurrent_start_cycles,
    self_schedule_cycles,
    join_cycles,
});
cedar_snap::snapshot_struct!(ConcurrencyBus {
    ces,
    costs,
    next_iteration,
    total_iterations,
    next_ce,
    joined,
    starts,
    dispatches,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_start_is_microseconds() {
        let costs = BusCosts::cedar();
        let micros = costs.concurrent_start_cycles as f64 * 170e-9 * 1e6;
        assert!(
            (1.0..10.0).contains(&micros),
            "concurrent start should be a few microseconds, got {micros}"
        );
    }

    #[test]
    fn self_scheduling_dispenses_every_iteration_once() {
        let mut bus = ConcurrencyBus::new(8);
        bus.concurrent_start(100);
        let mut seen = [false; 100];
        while let Some((_, iter)) = bus.self_schedule_next() {
            assert!(!seen[iter as usize], "iteration dispensed twice");
            seen[iter as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(bus.dispatch_count(), 100);
    }

    #[test]
    fn dispatches_spread_across_ces() {
        let mut bus = ConcurrencyBus::new(4);
        bus.concurrent_start(8);
        let mut per_ce = [0u32; 4];
        while let Some((ce, _)) = bus.self_schedule_next() {
            per_ce[ce] += 1;
        }
        assert_eq!(per_ce, [2, 2, 2, 2]);
    }

    #[test]
    fn join_completes_only_when_all_arrive() {
        let mut bus = ConcurrencyBus::new(3);
        assert!(!bus.join(0));
        assert!(!bus.join(1));
        assert!(bus.join(2));
        // State resets for the next join.
        assert!(!bus.join(0));
    }

    #[test]
    fn static_partition_is_balanced_and_complete() {
        let bus = ConcurrencyBus::new(8);
        let parts = bus.static_partition(100);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0], (0, 13));
        assert_eq!(parts.last().unwrap().1, 100);
        let total: u64 = parts.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 100);
        let max = parts.iter().map(|(s, e)| e - s).max().unwrap();
        let min = parts.iter().map(|(s, e)| e - s).min().unwrap();
        assert!(max - min <= 1, "partition must be balanced");
    }

    #[test]
    fn static_partition_fewer_iterations_than_ces() {
        let bus = ConcurrencyBus::new(8);
        let parts = bus.static_partition(3);
        let nonempty = parts.iter().filter(|(s, e)| e > s).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn loop_cost_scales_with_body_and_iterations() {
        let bus = ConcurrencyBus::new(8);
        let small = bus.self_scheduled_loop_cycles(8, 100);
        let more_iters = bus.self_scheduled_loop_cycles(80, 100);
        let bigger_body = bus.self_scheduled_loop_cycles(8, 1000);
        assert!(more_iters > small);
        assert!(bigger_body > small);
    }

    #[test]
    fn empty_loop_costs_only_start() {
        let bus = ConcurrencyBus::new(8);
        assert_eq!(
            bus.self_scheduled_loop_cycles(0, 100),
            BusCosts::cedar().concurrent_start_cycles
        );
    }

    #[test]
    fn restart_resets_iteration_stream() {
        let mut bus = ConcurrencyBus::new(2);
        bus.concurrent_start(2);
        bus.self_schedule_next();
        bus.concurrent_start(2);
        let (_, iter) = bus.self_schedule_next().unwrap();
        assert_eq!(iter, 0, "new loop starts from iteration 0");
        assert_eq!(bus.start_count(), 2);
    }
}
