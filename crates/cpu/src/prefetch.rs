//! The data prefetch unit (PFU).
//!
//! From the paper (§2, "Data Prefetch"): each CE has its own PFU
//! supporting one vector load from global memory. The PFU is *armed*
//! with the length, stride and mask of the vector, then *fired* with
//! the physical address of the first word. Autonomous prefetch (from a
//! special instruction) overlaps with computation; an implicit fire
//! (from a vector load's first address) overlaps only with that
//! instruction. When a prefetch crosses a page boundary the PFU
//! suspends until the processor supplies the first address in the new
//! page, because the PFU sees only physical addresses. Absent page
//! crossings it issues up to 512 requests without pausing. Data lands
//! in a 512-word buffer, invalidated when another prefetch starts;
//! words may return out of order, and a full/empty bit per word lets
//! the CE consume in-order without waiting for the whole block.

use cedar_obs::{CounterId, Obs};

use crate::ce::PAGE_BYTES;

/// Capacity of the prefetch buffer in 64-bit words, per the paper.
pub const BUFFER_WORDS: usize = 512;

/// One word slot of the prefetch buffer with its full/empty bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Full(u64),
}

/// The 512-word prefetch data buffer with full/empty bits.
///
/// # Examples
///
/// ```
/// use cedar_cpu::prefetch::PrefetchBuffer;
///
/// let mut buf = PrefetchBuffer::new();
/// buf.fill(3, 0xAB);          // data may arrive out of order
/// assert_eq!(buf.consume(0), None); // word 0 not here yet
/// buf.fill(0, 0xCD);
/// assert_eq!(buf.consume(0), Some(0xCD));
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    slots: Vec<Slot>,
}

impl PrefetchBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        PrefetchBuffer {
            slots: vec![Slot::Empty; BUFFER_WORDS],
        }
    }

    /// Marks slot `index` full with `data` (a word returning from the
    /// reverse network, possibly out of order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fill(&mut self, index: usize, data: u64) {
        self.slots[index] = Slot::Full(data);
    }

    /// Reads slot `index` if its full bit is set. The CE uses this to
    /// access the buffer without waiting for the whole prefetch.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn consume(&self, index: usize) -> Option<u64> {
        match self.slots[index] {
            Slot::Full(d) => Some(d),
            Slot::Empty => None,
        }
    }

    /// Number of full slots.
    #[must_use]
    pub fn full_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Full(_)))
            .count()
    }

    /// Invalidates every slot — what happens when another prefetch is
    /// started.
    pub fn invalidate(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = Slot::Empty);
    }
}

impl Default for PrefetchBuffer {
    fn default() -> Self {
        PrefetchBuffer::new()
    }
}

/// PFU control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PfuState {
    /// No prefetch parameters loaded.
    Idle,
    /// Armed with length/stride/mask, awaiting fire.
    Armed,
    /// Firing: issuing requests.
    Active,
    /// Crossed a page boundary; waiting for the CPU to supply the
    /// first physical address in the new page.
    SuspendedAtPage,
    /// All requests issued.
    Done,
}

/// The prefetch unit state machine.
///
/// # Examples
///
/// ```
/// use cedar_cpu::prefetch::PrefetchUnit;
///
/// let mut pfu = PrefetchUnit::new();
/// pfu.arm(64, 1, u64::MAX);
/// pfu.fire(0x1000);
/// // Issue addresses until the page boundary or the block ends.
/// let mut issued = 0;
/// while let Some(_addr) = pfu.next_request() {
///     issued += 1;
/// }
/// assert_eq!(issued, 64); // 64 stride-1 words fit in the page
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchUnit {
    state: PfuState,
    length: u32,
    stride: u64,
    mask: u64,
    issued: u32,
    next_addr: u64,
    /// Page of the most recently issued element.
    current_page: u64,
    /// Set right after fire/resume: the next issue defines the page
    /// rather than checking against it.
    fresh_page: bool,
    buffer: PrefetchBuffer,
    page_suspensions: u64,
    prefetches_started: u64,
    obs: Option<PfuObs>,
}

/// Interned telemetry handles for the prefetch unit.
#[derive(Debug, Clone)]
struct PfuObs {
    obs: Obs,
    fired: CounterId,
    issued: CounterId,
    filled: CounterId,
    suspensions: CounterId,
}

impl PrefetchUnit {
    /// Creates an idle PFU with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        PrefetchUnit {
            state: PfuState::Idle,
            length: 0,
            stride: 1,
            mask: u64::MAX,
            issued: 0,
            next_addr: 0,
            current_page: 0,
            fresh_page: false,
            buffer: PrefetchBuffer::new(),
            page_suspensions: 0,
            prefetches_started: 0,
            obs: None,
        }
    }

    /// Attaches a telemetry handle, interning `cpu.prefetch.fired`,
    /// `cpu.prefetch.requests_issued`, `cpu.prefetch.words_filled` and
    /// `cpu.prefetch.page_suspensions` counters. A handle without live
    /// metrics detaches.
    pub fn set_obs(&mut self, obs: &Obs) {
        if !obs.metrics_enabled() {
            self.obs = None;
            return;
        }
        self.obs = Some(PfuObs {
            fired: obs.counter("cpu.prefetch.fired").expect("metrics enabled"),
            issued: obs
                .counter("cpu.prefetch.requests_issued")
                .expect("metrics enabled"),
            filled: obs
                .counter("cpu.prefetch.words_filled")
                .expect("metrics enabled"),
            suspensions: obs
                .counter("cpu.prefetch.page_suspensions")
                .expect("metrics enabled"),
            obs: obs.clone(),
        });
    }

    /// Arms the PFU with the vector's length (in words), stride (in
    /// words) and mask (bit `i` set = element `i` wanted). Masked-off
    /// elements are skipped without a request.
    ///
    /// # Panics
    ///
    /// Panics if `length` exceeds the buffer capacity or `stride` is
    /// zero.
    pub fn arm(&mut self, length: u32, stride: u64, mask: u64) {
        assert!(
            (length as usize) <= BUFFER_WORDS,
            "prefetch length {length} exceeds the {BUFFER_WORDS}-word buffer"
        );
        assert!(stride > 0, "stride must be nonzero");
        self.length = length;
        self.stride = stride;
        self.mask = mask;
        self.state = PfuState::Armed;
    }

    /// Fires an armed PFU with the physical byte address of the first
    /// word. Starting a prefetch invalidates the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the PFU is not armed.
    pub fn fire(&mut self, first_paddr: u64) {
        assert_eq!(
            self.state,
            PfuState::Armed,
            "fire requires an armed PFU (state {:?})",
            self.state
        );
        self.buffer.invalidate();
        self.issued = 0;
        self.next_addr = first_paddr;
        self.fresh_page = true;
        self.state = PfuState::Active;
        self.prefetches_started += 1;
        if let Some(pfu_obs) = &self.obs {
            pfu_obs.obs.inc(pfu_obs.fired);
        }
    }

    /// Produces the next request address, or `None` if the PFU is done,
    /// suspended at a page crossing, or not active. Masked elements are
    /// skipped. On a page crossing the PFU suspends ([`is_suspended`]
    /// becomes true) until [`resume_at`] supplies the new page address.
    ///
    /// [`is_suspended`]: Self::is_suspended
    /// [`resume_at`]: Self::resume_at
    pub fn next_request(&mut self) -> Option<u64> {
        loop {
            if self.state != PfuState::Active {
                return None;
            }
            if self.issued >= self.length {
                self.state = PfuState::Done;
                return None;
            }
            let element = self.issued;
            let addr = self.next_addr;
            // A request that would land in a new page suspends the PFU
            // *before* issuing into that page: only physical addresses
            // are available to it, so the CPU must translate the new
            // page. The first element after fire/resume never suspends.
            if !self.fresh_page && Self::page_of(addr) != self.current_page {
                self.page_suspensions += 1;
                if let Some(pfu_obs) = &self.obs {
                    pfu_obs.obs.inc(pfu_obs.suspensions);
                }
                self.state = PfuState::SuspendedAtPage;
                return None;
            }
            self.fresh_page = false;
            self.current_page = Self::page_of(addr);
            self.issued += 1;
            self.next_addr = addr + self.stride * 8;
            if self.mask & (1u64 << (element % 64)) != 0 {
                if let Some(pfu_obs) = &self.obs {
                    pfu_obs.obs.inc(pfu_obs.issued);
                }
                return Some(addr);
            }
            // Masked off: continue to the next element silently.
        }
    }

    fn page_of(addr: u64) -> u64 {
        addr / PAGE_BYTES
    }

    /// Whether the PFU is suspended waiting for a new-page address.
    #[must_use]
    pub fn is_suspended(&self) -> bool {
        self.state == PfuState::SuspendedAtPage
    }

    /// Whether every element's request has been issued.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == PfuState::Done
    }

    /// Supplies the first physical address in the new page, resuming a
    /// suspended prefetch.
    ///
    /// # Panics
    ///
    /// Panics if the PFU is not suspended.
    pub fn resume_at(&mut self, paddr: u64) {
        assert!(self.is_suspended(), "resume requires a suspended PFU");
        self.next_addr = paddr;
        self.fresh_page = true;
        self.state = PfuState::Active;
    }

    /// Requests issued so far in the current prefetch.
    #[must_use]
    pub fn issued(&self) -> u32 {
        self.issued
    }

    /// Page-boundary suspensions observed over the PFU's lifetime.
    #[must_use]
    pub fn page_suspension_count(&self) -> u64 {
        self.page_suspensions
    }

    /// Prefetches fired over the PFU's lifetime.
    #[must_use]
    pub fn prefetch_count(&self) -> u64 {
        self.prefetches_started
    }

    /// The data buffer.
    #[must_use]
    pub fn buffer(&self) -> &PrefetchBuffer {
        &self.buffer
    }

    /// Mutable access to the data buffer (the reverse network fills it).
    pub fn buffer_mut(&mut self) -> &mut PrefetchBuffer {
        &mut self.buffer
    }

    /// Marks slot `index` full with `data`, counting the completion in
    /// the attached registry. Equivalent to `buffer_mut().fill(..)`
    /// plus telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fill_word(&mut self, index: usize, data: u64) {
        self.buffer.fill(index, data);
        if let Some(pfu_obs) = &self.obs {
            pfu_obs.obs.inc(pfu_obs.filled);
        }
    }
}

impl Default for PrefetchUnit {
    fn default() -> Self {
        PrefetchUnit::new()
    }
}

impl cedar_snap::Snapshot for Slot {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        match self {
            Slot::Empty => w.put_u8(0),
            Slot::Full(d) => {
                w.put_u8(1);
                w.put_u64(*d);
            }
        }
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(Slot::Empty),
            1 => Ok(Slot::Full(r.get_u64()?)),
            _ => Err(cedar_snap::SnapError::Invalid("prefetch slot tag")),
        }
    }
}

cedar_snap::snapshot_struct!(PrefetchBuffer { slots });

impl cedar_snap::Snapshot for PfuState {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u8(match self {
            PfuState::Idle => 0,
            PfuState::Armed => 1,
            PfuState::Active => 2,
            PfuState::SuspendedAtPage => 3,
            PfuState::Done => 4,
        });
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(PfuState::Idle),
            1 => Ok(PfuState::Armed),
            2 => Ok(PfuState::Active),
            3 => Ok(PfuState::SuspendedAtPage),
            4 => Ok(PfuState::Done),
            _ => Err(cedar_snap::SnapError::Invalid("PFU state tag")),
        }
    }
}

// Telemetry is a pure overlay: a restored PFU has no `Obs` attached
// and the caller reattaches it with `set_obs`.
impl cedar_snap::Snapshot for PrefetchUnit {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        self.state.snap(w);
        self.length.snap(w);
        self.stride.snap(w);
        self.mask.snap(w);
        self.issued.snap(w);
        self.next_addr.snap(w);
        self.current_page.snap(w);
        self.fresh_page.snap(w);
        self.buffer.snap(w);
        self.page_suspensions.snap(w);
        self.prefetches_started.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        Ok(PrefetchUnit {
            state: Snapshot::restore(r)?,
            length: Snapshot::restore(r)?,
            stride: Snapshot::restore(r)?,
            mask: Snapshot::restore(r)?,
            issued: Snapshot::restore(r)?,
            next_addr: Snapshot::restore(r)?,
            current_page: Snapshot::restore(r)?,
            fresh_page: Snapshot::restore(r)?,
            buffer: Snapshot::restore(r)?,
            page_suspensions: Snapshot::restore(r)?,
            prefetches_started: Snapshot::restore(r)?,
            obs: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_out_of_order_fill_in_order_consume() {
        let mut buf = PrefetchBuffer::new();
        buf.fill(2, 22);
        buf.fill(0, 0);
        assert_eq!(buf.consume(0), Some(0));
        assert_eq!(buf.consume(1), None);
        assert_eq!(buf.consume(2), Some(22));
        assert_eq!(buf.full_count(), 2);
    }

    #[test]
    fn buffer_invalidate_clears_full_bits() {
        let mut buf = PrefetchBuffer::new();
        buf.fill(0, 1);
        buf.invalidate();
        assert_eq!(buf.consume(0), None);
        assert_eq!(buf.full_count(), 0);
    }

    #[test]
    fn issues_exactly_length_requests() {
        let mut pfu = PrefetchUnit::new();
        pfu.arm(32, 1, u64::MAX);
        pfu.fire(0);
        let addrs: Vec<u64> = std::iter::from_fn(|| pfu.next_request()).collect();
        assert_eq!(addrs.len(), 32);
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[31], 31 * 8);
        assert!(pfu.is_done());
    }

    #[test]
    fn stride_walks_by_words() {
        let mut pfu = PrefetchUnit::new();
        pfu.arm(4, 4, u64::MAX);
        pfu.fire(0);
        let addrs: Vec<u64> = std::iter::from_fn(|| pfu.next_request()).collect();
        assert_eq!(addrs, vec![0, 32, 64, 96]);
    }

    #[test]
    fn mask_skips_elements() {
        let mut pfu = PrefetchUnit::new();
        pfu.arm(8, 1, 0b1010_1010);
        pfu.fire(0);
        let addrs: Vec<u64> = std::iter::from_fn(|| pfu.next_request()).collect();
        assert_eq!(addrs, vec![8, 24, 40, 56], "odd elements only");
    }

    #[test]
    fn suspends_at_page_crossing_and_resumes() {
        let mut pfu = PrefetchUnit::new();
        // Start 16 words before a page boundary, fetch 32.
        let start = PAGE_BYTES - 16 * 8;
        pfu.arm(32, 1, u64::MAX);
        pfu.fire(start);
        let first: Vec<u64> = std::iter::from_fn(|| pfu.next_request()).collect();
        assert_eq!(first.len(), 16, "issues up to the page boundary");
        assert!(pfu.is_suspended());
        assert_eq!(pfu.page_suspension_count(), 1);
        pfu.resume_at(PAGE_BYTES);
        let rest: Vec<u64> = std::iter::from_fn(|| pfu.next_request()).collect();
        assert_eq!(rest.len(), 16);
        assert_eq!(rest[0], PAGE_BYTES);
        assert!(pfu.is_done());
    }

    #[test]
    fn no_crossing_when_block_fits_page() {
        let mut pfu = PrefetchUnit::new();
        pfu.arm(512, 1, u64::MAX);
        pfu.fire(0);
        let n = std::iter::from_fn(|| pfu.next_request()).count();
        assert_eq!(n, 512, "512 stride-1 words fit in a 4KB page");
        assert_eq!(pfu.page_suspension_count(), 0);
    }

    #[test]
    fn refire_invalidates_buffer() {
        let mut pfu = PrefetchUnit::new();
        pfu.arm(4, 1, u64::MAX);
        pfu.fire(0);
        pfu.buffer_mut().fill(0, 7);
        pfu.arm(4, 1, u64::MAX);
        pfu.fire(4096);
        assert_eq!(pfu.buffer().consume(0), None, "new prefetch invalidates");
        assert_eq!(pfu.prefetch_count(), 2);
    }

    #[test]
    fn restored_pfu_resumes_mid_suspension_identically() {
        use cedar_snap::Snapshot;
        let mut pfu = PrefetchUnit::new();
        let start = PAGE_BYTES - 16 * 8;
        pfu.arm(32, 1, u64::MAX);
        pfu.fire(start);
        while pfu.next_request().is_some() {}
        assert!(pfu.is_suspended());
        pfu.buffer_mut().fill(3, 33);
        let mut copy = PrefetchUnit::from_snapshot_bytes(&pfu.to_snapshot_bytes()).unwrap();
        pfu.resume_at(PAGE_BYTES);
        copy.resume_at(PAGE_BYTES);
        let original: Vec<u64> = std::iter::from_fn(|| pfu.next_request()).collect();
        let restored: Vec<u64> = std::iter::from_fn(|| copy.next_request()).collect();
        assert_eq!(original, restored);
        assert_eq!(copy.buffer().consume(3), Some(33), "full bits round-trip");
        assert_eq!(copy.page_suspension_count(), pfu.page_suspension_count());
    }

    #[test]
    fn obs_counters_track_the_prefetch_lifecycle() {
        let obs = Obs::new(cedar_obs::ObsConfig::enabled());
        let mut pfu = PrefetchUnit::new();
        pfu.set_obs(&obs);
        let start = PAGE_BYTES - 4 * 8;
        pfu.arm(8, 1, u64::MAX);
        pfu.fire(start);
        while pfu.next_request().is_some() {}
        assert!(pfu.is_suspended());
        pfu.resume_at(PAGE_BYTES);
        while pfu.next_request().is_some() {}
        pfu.fill_word(0, 42);
        assert_eq!(obs.counter_value("cpu.prefetch.fired"), 1);
        assert_eq!(obs.counter_value("cpu.prefetch.requests_issued"), 8);
        assert_eq!(obs.counter_value("cpu.prefetch.page_suspensions"), 1);
        assert_eq!(obs.counter_value("cpu.prefetch.words_filled"), 1);
        assert_eq!(pfu.buffer().consume(0), Some(42));
    }

    #[test]
    #[should_panic(expected = "exceeds the 512-word buffer")]
    fn overlong_arm_rejected() {
        PrefetchUnit::new().arm(513, 1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "fire requires an armed PFU")]
    fn fire_without_arm_rejected() {
        PrefetchUnit::new().fire(0);
    }
}
