//! `cedar-cpu` — the Cedar computational element (CE).
//!
//! Each of Cedar's 32 CEs is a pipelined 68020-compatible processor
//! with vector extensions (§2, "Alliant clusters"):
//!
//! * a 170 ns instruction cycle;
//! * a vector unit with eight 32-word registers, 64-bit floating-point
//!   and integer operations, register-memory instructions with one
//!   memory operand, and an 11.8 MFLOPS peak on 64-bit vector
//!   operations ([`vector`]);
//! * a data prefetch unit (PFU) that masks global-memory latency: armed
//!   with length/stride/mask, fired with a physical address, issuing up
//!   to 512 requests into a 512-word full/empty-bit buffer, suspending
//!   at page crossings ([`prefetch`]);
//! * a concurrency control bus supporting single-instruction
//!   `concurrent start` (gang-scheduling a parallel loop across the
//!   cluster) and fast self-scheduling ([`ccbus`]).
//!
//! # Examples
//!
//! ```
//! use cedar_cpu::vector::{MemOperand, VectorTiming, VectorUnit};
//!
//! let vu = VectorUnit::cedar();
//! // One chained multiply-add over a 32-element register-memory
//! // vector from the cluster cache.
//! let cycles = vu.op_cycles(32, MemOperand::ClusterCache, &VectorTiming::cedar());
//! assert!(cycles >= 32 + 12, "startup plus per-element time");
//! ```

#![warn(missing_docs)]

pub mod ccbus;
pub mod ce;
pub mod prefetch;
pub mod vector;

pub use ccbus::ConcurrencyBus;
pub use ce::{CeConfig, ComputationalElement};
pub use prefetch::{PrefetchBuffer, PrefetchUnit};
pub use vector::{MemOperand, VectorTiming, VectorUnit};
