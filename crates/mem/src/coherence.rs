//! Software-managed coherence for cluster copies of global data.
//!
//! §2: "Cluster memories form a distributed memory system in addition
//! to the global shared memory. **Coherence between multiple copies of
//! globally shared data residing in cluster memory is maintained in
//! software.**" There is no hardware protocol: the compiler/runtime
//! tracks which clusters hold copies of a global block and issues
//! explicit invalidations and write-backs around the parallel
//! constructs (this is exactly what CEDAR FORTRAN's loop-local
//! placement and explicit moves lean on).
//!
//! [`CoherenceDirectory`] is that software directory: blocks of global
//! words, per-cluster copy state, and the operations the runtime
//! performs — `acquire_read`, `acquire_write`, `release` — with their
//! protocol actions reported so the caller can charge movement costs.

use std::collections::BTreeMap;

/// A block of global memory tracked by the directory, identified by
/// its starting word index (blocks are non-overlapping by
/// construction: the directory is keyed on the start).
pub type BlockId = u64;

/// A cluster's relationship to a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyState {
    /// No copy in this cluster's memory.
    None,
    /// A read-only copy.
    Shared,
    /// A writable copy (exclusive machine-wide).
    Exclusive,
}

/// What the runtime must do to honour an acquire — each action has an
/// obvious cost in explicit-move traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolAction {
    /// Copy the block from global memory into the cluster.
    FetchFromGlobal {
        /// Destination cluster.
        cluster: usize,
    },
    /// Write a dirty copy back to global memory first.
    WriteBack {
        /// Cluster holding the dirty copy.
        cluster: usize,
    },
    /// Drop a stale copy from a cluster.
    Invalidate {
        /// Cluster losing its copy.
        cluster: usize,
    },
    /// Nothing to do: the copy is already valid.
    Hit,
}

/// Per-block directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    states: Vec<CopyState>,
}

/// The software coherence directory.
///
/// # Examples
///
/// ```
/// use cedar_mem::coherence::{CoherenceDirectory, ProtocolAction};
///
/// let mut dir = CoherenceDirectory::new(4);
/// // Cluster 0 reads block 16: fetched from global.
/// let actions = dir.acquire_read(0, 16);
/// assert_eq!(actions, vec![ProtocolAction::FetchFromGlobal { cluster: 0 }]);
/// // A second read hits the local copy.
/// assert_eq!(dir.acquire_read(0, 16), vec![ProtocolAction::Hit]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceDirectory {
    clusters: usize,
    entries: BTreeMap<BlockId, Entry>,
    fetches: u64,
    writebacks: u64,
    invalidations: u64,
}

impl CoherenceDirectory {
    /// Creates a directory for `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    #[must_use]
    pub fn new(clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        CoherenceDirectory {
            clusters,
            entries: BTreeMap::new(),
            fetches: 0,
            writebacks: 0,
            invalidations: 0,
        }
    }

    fn entry(&mut self, block: BlockId) -> &mut Entry {
        let clusters = self.clusters;
        self.entries.entry(block).or_insert_with(|| Entry {
            states: vec![CopyState::None; clusters],
        })
    }

    /// The state of `cluster`'s copy of `block`.
    #[must_use]
    pub fn state(&self, cluster: usize, block: BlockId) -> CopyState {
        self.entries
            .get(&block)
            .map_or(CopyState::None, |e| e.states[cluster])
    }

    /// Acquires a read-only copy of `block` for `cluster`, returning
    /// the protocol actions performed in order.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn acquire_read(&mut self, cluster: usize, block: BlockId) -> Vec<ProtocolAction> {
        assert!(cluster < self.clusters, "cluster out of range");
        let mut actions = Vec::new();
        let clusters = self.clusters;
        let mut writebacks = 0;
        {
            let entry = self.entry(block);
            match entry.states[cluster] {
                CopyState::Shared | CopyState::Exclusive => {
                    actions.push(ProtocolAction::Hit);
                    return actions;
                }
                CopyState::None => {}
            }
            // A writer elsewhere must write back and demote to shared.
            for c in 0..clusters {
                if entry.states[c] == CopyState::Exclusive {
                    entry.states[c] = CopyState::Shared;
                    actions.push(ProtocolAction::WriteBack { cluster: c });
                    writebacks += 1;
                }
            }
            entry.states[cluster] = CopyState::Shared;
        }
        self.writebacks += writebacks;
        actions.push(ProtocolAction::FetchFromGlobal { cluster });
        self.fetches += 1;
        actions
    }

    /// Acquires an exclusive (writable) copy of `block` for `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn acquire_write(&mut self, cluster: usize, block: BlockId) -> Vec<ProtocolAction> {
        assert!(cluster < self.clusters, "cluster out of range");
        let mut actions = Vec::new();
        let clusters = self.clusters;
        let mut writebacks = 0;
        let mut invalidations = 0;
        let had_copy;
        {
            let entry = self.entry(block);
            if entry.states[cluster] == CopyState::Exclusive {
                actions.push(ProtocolAction::Hit);
                return actions;
            }
            had_copy = entry.states[cluster] == CopyState::Shared;
            for c in 0..clusters {
                if c == cluster {
                    continue;
                }
                match entry.states[c] {
                    CopyState::Exclusive => {
                        entry.states[c] = CopyState::None;
                        actions.push(ProtocolAction::WriteBack { cluster: c });
                        actions.push(ProtocolAction::Invalidate { cluster: c });
                        writebacks += 1;
                        invalidations += 1;
                    }
                    CopyState::Shared => {
                        entry.states[c] = CopyState::None;
                        actions.push(ProtocolAction::Invalidate { cluster: c });
                        invalidations += 1;
                    }
                    CopyState::None => {}
                }
            }
            entry.states[cluster] = CopyState::Exclusive;
        }
        self.writebacks += writebacks;
        self.invalidations += invalidations;
        if had_copy {
            actions.push(ProtocolAction::Hit);
        } else {
            actions.push(ProtocolAction::FetchFromGlobal { cluster });
            self.fetches += 1;
        }
        actions
    }

    /// Releases `cluster`'s copy of `block` (end of a parallel
    /// section): dirty copies write back, all copies drop.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn release(&mut self, cluster: usize, block: BlockId) -> Vec<ProtocolAction> {
        assert!(cluster < self.clusters, "cluster out of range");
        let mut actions = Vec::new();
        let state = {
            let entry = self.entry(block);
            let state = entry.states[cluster];
            if state != CopyState::None {
                entry.states[cluster] = CopyState::None;
            }
            state
        };
        match state {
            CopyState::Exclusive => {
                actions.push(ProtocolAction::WriteBack { cluster });
                self.writebacks += 1;
            }
            CopyState::Shared => {
                actions.push(ProtocolAction::Invalidate { cluster });
                self.invalidations += 1;
            }
            CopyState::None => {}
        }
        actions
    }

    /// Machine-wide invariant: at most one exclusive copy per block,
    /// and never exclusive alongside shared copies.
    #[must_use]
    pub fn invariant_holds(&self) -> bool {
        self.entries.values().all(|e| {
            let exclusive = e
                .states
                .iter()
                .filter(|&&s| s == CopyState::Exclusive)
                .count();
            let shared = e.states.iter().filter(|&&s| s == CopyState::Shared).count();
            exclusive <= 1 && (exclusive == 0 || shared == 0)
        })
    }

    /// Global fetches performed.
    #[must_use]
    pub fn fetch_count(&self) -> u64 {
        self.fetches
    }

    /// Write-backs performed.
    #[must_use]
    pub fn writeback_count(&self) -> u64 {
        self.writebacks
    }

    /// Invalidations performed.
    #[must_use]
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sharing_spreads_copies() {
        let mut dir = CoherenceDirectory::new(4);
        for c in 0..4 {
            dir.acquire_read(c, 0);
        }
        for c in 0..4 {
            assert_eq!(dir.state(c, 0), CopyState::Shared);
        }
        assert_eq!(dir.fetch_count(), 4);
        assert!(dir.invariant_holds());
    }

    #[test]
    fn write_invalidates_all_readers() {
        let mut dir = CoherenceDirectory::new(4);
        for c in 0..4 {
            dir.acquire_read(c, 0);
        }
        let actions = dir.acquire_write(1, 0);
        let invalidations = actions
            .iter()
            .filter(|a| matches!(a, ProtocolAction::Invalidate { .. }))
            .count();
        assert_eq!(invalidations, 3, "the three other clusters drop copies");
        assert_eq!(dir.state(1, 0), CopyState::Exclusive);
        assert_eq!(dir.state(0, 0), CopyState::None);
        assert!(dir.invariant_holds());
    }

    #[test]
    fn reader_after_writer_forces_writeback() {
        let mut dir = CoherenceDirectory::new(4);
        dir.acquire_write(2, 8);
        let actions = dir.acquire_read(0, 8);
        assert!(actions.contains(&ProtocolAction::WriteBack { cluster: 2 }));
        assert_eq!(dir.state(2, 8), CopyState::Shared, "writer demotes");
        assert_eq!(dir.state(0, 8), CopyState::Shared);
        assert!(dir.invariant_holds());
    }

    #[test]
    fn writer_handoff_writes_back_and_invalidates() {
        let mut dir = CoherenceDirectory::new(2);
        dir.acquire_write(0, 0);
        let actions = dir.acquire_write(1, 0);
        assert!(actions.contains(&ProtocolAction::WriteBack { cluster: 0 }));
        assert!(actions.contains(&ProtocolAction::Invalidate { cluster: 0 }));
        assert_eq!(dir.state(0, 0), CopyState::None);
        assert_eq!(dir.state(1, 0), CopyState::Exclusive);
    }

    #[test]
    fn repeated_access_hits() {
        let mut dir = CoherenceDirectory::new(2);
        dir.acquire_write(0, 0);
        assert_eq!(dir.acquire_write(0, 0), vec![ProtocolAction::Hit]);
        assert_eq!(dir.acquire_read(0, 0), vec![ProtocolAction::Hit]);
        assert_eq!(dir.fetch_count(), 1);
    }

    #[test]
    fn shared_upgrade_needs_no_refetch() {
        let mut dir = CoherenceDirectory::new(2);
        dir.acquire_read(0, 0);
        let actions = dir.acquire_write(0, 0);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ProtocolAction::FetchFromGlobal { .. })),
            "upgrading a shared copy must not refetch: {actions:?}"
        );
        assert_eq!(dir.state(0, 0), CopyState::Exclusive);
    }

    #[test]
    fn release_writes_back_dirty_copies() {
        let mut dir = CoherenceDirectory::new(2);
        dir.acquire_write(0, 0);
        let actions = dir.release(0, 0);
        assert_eq!(actions, vec![ProtocolAction::WriteBack { cluster: 0 }]);
        assert_eq!(dir.state(0, 0), CopyState::None);
        // Releasing again is a no-op.
        assert!(dir.release(0, 0).is_empty());
    }

    #[test]
    fn distinct_blocks_are_independent() {
        let mut dir = CoherenceDirectory::new(2);
        dir.acquire_write(0, 0);
        dir.acquire_write(1, 64);
        assert_eq!(dir.state(0, 0), CopyState::Exclusive);
        assert_eq!(dir.state(1, 64), CopyState::Exclusive);
        assert!(dir.invariant_holds());
        assert_eq!(dir.invalidation_count(), 0);
    }
}
