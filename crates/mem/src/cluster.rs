//! Cluster memory: the per-cluster interleaved DRAM behind the shared
//! cache.
//!
//! Each Alliant FX/8 cluster has 32 MB of cluster memory, accessible
//! only to the CEs within that cluster, with half the cache's
//! bandwidth: 192 MB/s per cluster (the cache supplies 384 MB/s, eight
//! 64-bit words per instruction cycle).

use crate::address::WORD_BYTES;

/// Default capacity: 32 MB, per the paper.
pub const DEFAULT_CAPACITY_BYTES: u64 = 32 << 20;

/// Cluster-memory bandwidth in 64-bit words per CE instruction cycle,
/// per the paper's 192 MB/s at the 170 ns clock:
/// 192 MB/s × 170 ns ≈ 32.6 bytes ≈ 4 words per cycle.
pub const WORDS_PER_CYCLE: f64 = 4.0;

/// Cache-to-CE bandwidth in words per cycle per cluster (the paper:
/// "eight 64-bit words per instruction cycle", 384 MB/s).
pub const CACHE_WORDS_PER_CYCLE: f64 = 8.0;

/// One cluster's private memory.
///
/// # Examples
///
/// ```
/// use cedar_mem::cluster::ClusterMemory;
///
/// let mut cm = ClusterMemory::with_words(128);
/// cm.write_word(5, 7);
/// assert_eq!(cm.read_word(5), 7);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterMemory {
    words: Vec<u64>,
    reads: u64,
    writes: u64,
}

impl ClusterMemory {
    /// Creates a cluster memory holding `words` 64-bit words,
    /// zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn with_words(words: usize) -> Self {
        assert!(words > 0, "memory must hold at least one word");
        ClusterMemory {
            words: vec![0; words],
            reads: 0,
            writes: 0,
        }
    }

    /// The production configuration: 32 MB.
    #[must_use]
    pub fn cedar() -> Self {
        ClusterMemory::with_words((DEFAULT_CAPACITY_BYTES / WORD_BYTES) as usize)
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero capacity (never true after
    /// construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn read_word(&mut self, index: u64) -> u64 {
        self.reads += 1;
        self.words[index as usize]
    }

    /// Writes the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn write_word(&mut self, index: u64, value: u64) {
        self.writes += 1;
        self.words[index as usize] = value;
    }

    /// Bulk copy out of cluster memory.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_out(&mut self, src: u64, dst: &mut [u64]) {
        let s = src as usize;
        dst.copy_from_slice(&self.words[s..s + dst.len()]);
        self.reads += dst.len() as u64;
    }

    /// Bulk copy into cluster memory.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_in(&mut self, dst: u64, src: &[u64]) {
        let d = dst as usize;
        self.words[d..d + src.len()].copy_from_slice(src);
        self.writes += src.len() as u64;
    }

    /// Total word reads served.
    #[must_use]
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total word writes served.
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

cedar_snap::snapshot_struct!(ClusterMemory {
    words,
    reads,
    writes,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut cm = ClusterMemory::with_words(32);
        cm.write_word(0, 11);
        cm.write_word(31, 22);
        assert_eq!(cm.read_word(0), 11);
        assert_eq!(cm.read_word(31), 22);
    }

    #[test]
    fn cedar_capacity_is_32_mb() {
        let cm = ClusterMemory::cedar();
        assert_eq!(cm.len() as u64 * WORD_BYTES, 32 << 20);
    }

    #[test]
    fn bandwidth_constants_match_paper_ratios() {
        // Cluster memory bandwidth is half the cache bandwidth.
        assert!((CACHE_WORDS_PER_CYCLE / WORDS_PER_CYCLE - 2.0).abs() < 1e-12);
        // 8 words x 8 bytes / 170ns = 376 MB/s ≈ the paper's 384 MB/s.
        let bytes_per_sec = CACHE_WORDS_PER_CYCLE * 8.0 / 170e-9;
        assert!((bytes_per_sec / 1e6 - 376.5).abs() < 1.0);
    }

    #[test]
    fn bulk_copies() {
        let mut cm = ClusterMemory::with_words(16);
        cm.copy_in(4, &[9, 8, 7]);
        let mut out = [0u64; 3];
        cm.copy_out(4, &mut out);
        assert_eq!(out, [9, 8, 7]);
        assert_eq!(cm.write_count(), 3);
        assert_eq!(cm.read_count(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_write_panics() {
        ClusterMemory::with_words(4).write_word(9, 0);
    }
}
