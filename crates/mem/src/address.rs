//! Addresses, pages, and the cluster/global physical split.
//!
//! Cedar's physical address space is divided into two equal halves:
//! cluster memory occupies the lower half and globally shared memory
//! the upper half. Virtual memory uses 4 KB pages. Global memory is
//! double-word (8-byte) interleaved and aligned.

use std::fmt;

/// Bytes per page (the paper: "a virtual memory system with a 4KB
/// page size").
pub const PAGE_SIZE_BYTES: u64 = 4096;

/// Bytes per machine word (64-bit).
pub const WORD_BYTES: u64 = 8;

/// Words per page.
pub const PAGE_SIZE_WORDS: u64 = PAGE_SIZE_BYTES / WORD_BYTES;

/// Size of the physical address space in bytes. Each half holds one
/// region; the value is far larger than the installed memory, as on
/// the real machine.
pub const PHYSICAL_SPACE_BYTES: u64 = 1 << 32;

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

impl VAddr {
    /// The virtual page number containing this address.
    #[must_use]
    pub const fn page(self) -> u64 {
        self.0 / PAGE_SIZE_BYTES
    }

    /// The byte offset within the page.
    #[must_use]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE_BYTES
    }

    /// The address `bytes` later.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> VAddr {
        VAddr(self.0 + bytes)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#010x}", self.0)
    }
}

/// A physical byte address. The top half of the space is global
/// memory; the bottom half is cluster memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

impl PAddr {
    /// Builds a physical address inside the cluster-memory half.
    ///
    /// # Panics
    ///
    /// Panics if `offset` reaches into the global half.
    #[must_use]
    pub fn in_cluster(offset: u64) -> PAddr {
        assert!(
            offset < PHYSICAL_SPACE_BYTES / 2,
            "cluster offset {offset:#x} overflows the lower half"
        );
        PAddr(offset)
    }

    /// Builds a physical address inside the global-memory half.
    ///
    /// # Panics
    ///
    /// Panics if `offset` overflows the upper half.
    #[must_use]
    pub fn in_global(offset: u64) -> PAddr {
        assert!(
            offset < PHYSICAL_SPACE_BYTES / 2,
            "global offset {offset:#x} overflows the upper half"
        );
        PAddr(PHYSICAL_SPACE_BYTES / 2 + offset)
    }

    /// Which half of the physical space this address falls in.
    ///
    /// # Examples
    ///
    /// ```
    /// use cedar_mem::address::{PAddr, Region};
    ///
    /// assert_eq!(PAddr::in_cluster(64).region(), Region::Cluster);
    /// assert_eq!(PAddr::in_global(64).region(), Region::Global);
    /// ```
    #[must_use]
    pub fn region(self) -> Region {
        if self.0 < PHYSICAL_SPACE_BYTES / 2 {
            Region::Cluster
        } else {
            Region::Global
        }
    }

    /// The offset within its half.
    #[must_use]
    pub fn region_offset(self) -> u64 {
        self.0 % (PHYSICAL_SPACE_BYTES / 2)
    }

    /// The word index within its half (addresses are expected to be
    /// word-aligned for word accesses).
    #[must_use]
    pub fn word_index(self) -> u64 {
        self.region_offset() / WORD_BYTES
    }

    /// The global-memory module serving this address under `modules`-way
    /// double-word interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `modules` is zero.
    #[must_use]
    pub fn interleaved_module(self, modules: usize) -> usize {
        assert!(modules > 0, "need at least one module");
        (self.word_index() % modules as u64) as usize
    }

    /// The physical page number.
    #[must_use]
    pub const fn page(self) -> u64 {
        self.0 / PAGE_SIZE_BYTES
    }

    /// The address `bytes` later.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> PAddr {
        PAddr(self.0 + bytes)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{:#010x}", self.0)
    }
}

/// The two halves of Cedar's physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Cluster memory: private to one cluster, cached by the shared
    /// cluster cache.
    Cluster,
    /// Global shared memory: reached through the omega networks,
    /// visible to all CEs, never cached by hardware.
    Global,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Cluster => write!(f, "cluster"),
            Region::Global => write!(f, "global"),
        }
    }
}

impl cedar_snap::Snapshot for Region {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u8(match self {
            Region::Cluster => 0,
            Region::Global => 1,
        });
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(Region::Cluster),
            1 => Ok(Region::Global),
            _ => Err(cedar_snap::SnapError::Invalid("memory region tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let a = VAddr(PAGE_SIZE_BYTES * 3 + 100);
        assert_eq!(a.page(), 3);
        assert_eq!(a.page_offset(), 100);
        assert_eq!(a.offset(28).0, PAGE_SIZE_BYTES * 3 + 128);
    }

    #[test]
    fn physical_split_is_half_and_half() {
        assert_eq!(PAddr(0).region(), Region::Cluster);
        assert_eq!(
            PAddr(PHYSICAL_SPACE_BYTES / 2 - 1).region(),
            Region::Cluster
        );
        assert_eq!(PAddr(PHYSICAL_SPACE_BYTES / 2).region(), Region::Global);
    }

    #[test]
    fn region_offsets_round_trip() {
        let g = PAddr::in_global(4096);
        assert_eq!(g.region(), Region::Global);
        assert_eq!(g.region_offset(), 4096);
        let c = PAddr::in_cluster(4096);
        assert_eq!(c.region(), Region::Cluster);
        assert_eq!(c.region_offset(), 4096);
    }

    #[test]
    fn double_word_interleaving() {
        // Consecutive words land on consecutive modules, wrapping.
        let modules = 32;
        for w in 0..100u64 {
            let addr = PAddr::in_global(w * WORD_BYTES);
            assert_eq!(addr.interleaved_module(modules), (w % 32) as usize);
        }
    }

    #[test]
    fn word_index_ignores_region() {
        assert_eq!(PAddr::in_global(24).word_index(), 3);
        assert_eq!(PAddr::in_cluster(24).word_index(), 3);
    }

    #[test]
    #[should_panic(expected = "overflows the lower half")]
    fn cluster_offset_bounds_checked() {
        let _ = PAddr::in_cluster(PHYSICAL_SPACE_BYTES);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VAddr(0x10).to_string(), "v0x00000010");
        assert_eq!(Region::Global.to_string(), "global");
    }

    #[test]
    fn page_size_constants_consistent() {
        assert_eq!(PAGE_SIZE_WORDS * WORD_BYTES, PAGE_SIZE_BYTES);
        assert_eq!(PAGE_SIZE_BYTES, 4096, "paper: 4KB page size");
    }
}
