//! The Xylem virtual-memory model: 4 KB pages, per-cluster TLBs, and
//! page tables living in global memory.
//!
//! This module exists because of the paper's TRFD analysis (§4.2): the
//! multicluster TRFD "was shown to have almost four times the number
//! of page faults relative to the one-cluster version and was spending
//! close to 50% of the time in virtual memory activity. The extra
//! faults are TLB miss faults as each additional cluster of a
//! multicluster version first accesses pages for which a valid PTE
//! exists in global memory." The fix was a distributed-memory version
//! of the code (\[MaEG92\]); the `ablation_vm` bench regenerates that
//! comparison.

use std::collections::HashMap;

use crate::address::{PAddr, Region, VAddr, PAGE_SIZE_BYTES};

/// A page-table entry: where a virtual page lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PageEntry {
    region: Region,
    /// Physical page number within the region.
    ppage: u64,
    /// For cluster pages, which cluster owns the frame.
    home_cluster: usize,
}

/// What a translation cost: the three rungs of the VM ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageFaultKind {
    /// The TLB held the translation; no fault.
    TlbHit,
    /// The TLB missed but a valid PTE existed in global memory — the
    /// fault class that dominates multicluster TRFD.
    TlbMissPteValid,
    /// No PTE existed: first touch, page allocated.
    HardFault,
}

/// A simple fully-associative LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// vpage → (ppage key, stamp)
    entries: HashMap<u64, u64>,
    clock: u64,
}

impl Tlb {
    /// Creates an empty TLB with room for `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            entries: HashMap::new(),
            clock: 0,
        }
    }

    /// Looks up a virtual page, refreshing its recency on hit.
    pub fn lookup(&mut self, vpage: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&vpage) {
            Some(stamp) => {
                *stamp = clock;
                true
            }
            None => false,
        }
    }

    /// Inserts a translation, evicting the least recently used if full.
    pub fn insert(&mut self, vpage: u64) {
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&vpage) {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, &stamp)| stamp) {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(vpage, self.clock);
    }

    /// Drops every cached translation (context switch / task migration).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Number of cached translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no translations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Cost parameters for VM events, in CE cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmCosts {
    /// Servicing a TLB miss whose PTE is valid in global memory:
    /// a kernel trap plus global-memory page-table reads.
    pub tlb_miss_cycles: u64,
    /// Servicing a hard fault: allocation, zeroing, table update.
    pub hard_fault_cycles: u64,
}

impl VmCosts {
    /// Defaults consistent with the TRFD observation (\[MaEG92\]): a
    /// TLB-miss fault walks the page table in global memory through
    /// the kernel (~0.5 ms at 170 ns cycles), a hard fault roughly
    /// doubles that with allocation — enough that quadrupled faults
    /// consume about half of TRFD's optimized run time.
    #[must_use]
    pub fn cedar() -> Self {
        VmCosts {
            tlb_miss_cycles: 3_000,
            hard_fault_cycles: 6_000,
        }
    }
}

impl Default for VmCosts {
    fn default() -> Self {
        VmCosts::cedar()
    }
}

/// The machine-wide virtual memory system: one page table (kept in
/// global memory) plus one TLB per cluster.
///
/// # Examples
///
/// ```
/// use cedar_mem::vm::{PageFaultKind, VirtualMemory};
/// use cedar_mem::address::VAddr;
///
/// let mut vm = VirtualMemory::new(4, 64);
/// // First touch from cluster 0: hard fault.
/// let (_, kind) = vm.translate(0, VAddr(0x1000));
/// assert_eq!(kind, PageFaultKind::HardFault);
/// // Second touch from cluster 0: TLB hit.
/// let (_, kind) = vm.translate(0, VAddr(0x1008));
/// assert_eq!(kind, PageFaultKind::TlbHit);
/// // First touch from cluster 1: the PTE is valid in global memory,
/// // but cluster 1's TLB must fault to find it — the TRFD effect.
/// let (_, kind) = vm.translate(1, VAddr(0x1000));
/// assert_eq!(kind, PageFaultKind::TlbMissPteValid);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualMemory {
    page_table: HashMap<u64, PageEntry>,
    tlbs: Vec<Tlb>,
    next_global_page: u64,
    next_cluster_page: Vec<u64>,
    /// Fault tallies per kind: [hits, tlb_miss, hard].
    counts: [u64; 3],
    /// Fault tallies per cluster (tlb_miss + hard).
    faults_per_cluster: Vec<u64>,
    costs: VmCosts,
    /// Accumulated VM service time in CE cycles.
    service_cycles: u64,
}

impl VirtualMemory {
    /// Creates a VM system for `clusters` clusters with
    /// `tlb_entries`-entry TLBs and default costs.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` or `tlb_entries` is zero.
    #[must_use]
    pub fn new(clusters: usize, tlb_entries: usize) -> Self {
        VirtualMemory::with_costs(clusters, tlb_entries, VmCosts::cedar())
    }

    /// Creates a VM system with explicit fault costs.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` or `tlb_entries` is zero.
    #[must_use]
    pub fn with_costs(clusters: usize, tlb_entries: usize, costs: VmCosts) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        VirtualMemory {
            page_table: HashMap::new(),
            tlbs: (0..clusters).map(|_| Tlb::new(tlb_entries)).collect(),
            next_global_page: 0,
            next_cluster_page: vec![0; clusters],
            counts: [0; 3],
            faults_per_cluster: vec![0; clusters],
            costs,
            service_cycles: 0,
        }
    }

    /// Number of clusters served.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.tlbs.len()
    }

    /// Translates `vaddr` on behalf of `cluster`, allocating on first
    /// touch (demand paging into global memory by default) and
    /// tracking fault costs.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn translate(&mut self, cluster: usize, vaddr: VAddr) -> (PAddr, PageFaultKind) {
        let vpage = vaddr.page();
        let kind = if self.tlbs[cluster].lookup(vpage) {
            self.counts[0] += 1;
            PageFaultKind::TlbHit
        } else if self.page_table.contains_key(&vpage) {
            self.counts[1] += 1;
            self.faults_per_cluster[cluster] += 1;
            self.service_cycles += self.costs.tlb_miss_cycles;
            self.tlbs[cluster].insert(vpage);
            PageFaultKind::TlbMissPteValid
        } else {
            self.counts[2] += 1;
            self.faults_per_cluster[cluster] += 1;
            self.service_cycles += self.costs.hard_fault_cycles;
            let ppage = self.next_global_page;
            self.next_global_page += 1;
            self.page_table.insert(
                vpage,
                PageEntry {
                    region: Region::Global,
                    ppage,
                    home_cluster: 0,
                },
            );
            self.tlbs[cluster].insert(vpage);
            PageFaultKind::HardFault
        };
        let entry = self.page_table[&vpage];
        let paddr = match entry.region {
            Region::Global => PAddr::in_global(entry.ppage * PAGE_SIZE_BYTES + vaddr.page_offset()),
            Region::Cluster => {
                PAddr::in_cluster(entry.ppage * PAGE_SIZE_BYTES + vaddr.page_offset())
            }
        };
        (paddr, kind)
    }

    /// Pre-maps `pages` consecutive virtual pages starting at `vpage`
    /// into `cluster`'s own memory — the distributed-memory placement
    /// that fixed TRFD. Pages already mapped are left alone.
    pub fn map_into_cluster(&mut self, cluster: usize, vpage: u64, pages: u64) {
        for p in vpage..vpage + pages {
            if self.page_table.contains_key(&p) {
                continue;
            }
            let ppage = self.next_cluster_page[cluster];
            self.next_cluster_page[cluster] += 1;
            self.page_table.insert(
                p,
                PageEntry {
                    region: Region::Cluster,
                    ppage,
                    home_cluster: cluster,
                },
            );
        }
    }

    /// The region and home cluster of a mapped page, if present.
    #[must_use]
    pub fn page_home(&self, vpage: u64) -> Option<(Region, usize)> {
        self.page_table
            .get(&vpage)
            .map(|e| (e.region, e.home_cluster))
    }

    /// Flushes one cluster's TLB.
    pub fn flush_tlb(&mut self, cluster: usize) {
        self.tlbs[cluster].flush();
    }

    /// TLB hits observed.
    #[must_use]
    pub fn tlb_hits(&self) -> u64 {
        self.counts[0]
    }

    /// TLB-miss-with-valid-PTE faults observed.
    #[must_use]
    pub fn tlb_miss_faults(&self) -> u64 {
        self.counts[1]
    }

    /// Hard (first-touch) faults observed.
    #[must_use]
    pub fn hard_faults(&self) -> u64 {
        self.counts[2]
    }

    /// All faults (both kinds) per cluster.
    #[must_use]
    pub fn faults_per_cluster(&self) -> &[u64] {
        &self.faults_per_cluster
    }

    /// Accumulated VM service time in CE cycles.
    #[must_use]
    pub fn service_cycles(&self) -> u64 {
        self.service_cycles
    }
}

cedar_snap::snapshot_struct!(PageEntry {
    region,
    ppage,
    home_cluster,
});
cedar_snap::snapshot_struct!(VmCosts {
    tlb_miss_cycles,
    hard_fault_cycles,
});

impl cedar_snap::Snapshot for Tlb {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        self.capacity.snap(w);
        // Hash maps iterate in arbitrary order; sort by key so equal
        // TLBs always produce identical bytes.
        let mut entries: Vec<(u64, u64)> = self.entries.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        entries.snap(w);
        self.clock.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        let capacity: usize = Snapshot::restore(r)?;
        let entries: Vec<(u64, u64)> = Snapshot::restore(r)?;
        let clock = Snapshot::restore(r)?;
        Ok(Tlb {
            capacity,
            entries: entries.into_iter().collect(),
            clock,
        })
    }
}

impl cedar_snap::Snapshot for VirtualMemory {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        let mut table: Vec<(u64, PageEntry)> =
            self.page_table.iter().map(|(&k, &v)| (k, v)).collect();
        table.sort_unstable_by_key(|(k, _)| *k);
        table.snap(w);
        self.tlbs.snap(w);
        self.next_global_page.snap(w);
        self.next_cluster_page.snap(w);
        self.counts.snap(w);
        self.faults_per_cluster.snap(w);
        self.costs.snap(w);
        self.service_cycles.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        use cedar_snap::Snapshot;
        let table: Vec<(u64, PageEntry)> = Snapshot::restore(r)?;
        Ok(VirtualMemory {
            page_table: table.into_iter().collect(),
            tlbs: Snapshot::restore(r)?,
            next_global_page: Snapshot::restore(r)?,
            next_cluster_page: Snapshot::restore(r)?,
            counts: Snapshot::restore(r)?,
            faults_per_cluster: Snapshot::restore(r)?,
            costs: Snapshot::restore(r)?,
            service_cycles: Snapshot::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlb_lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1);
        tlb.insert(2);
        assert!(tlb.lookup(1)); // 2 becomes LRU
        tlb.insert(3); // evicts 2
        assert!(tlb.lookup(1));
        assert!(!tlb.lookup(2));
        assert!(tlb.lookup(3));
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn tlb_flush_empties() {
        let mut tlb = Tlb::new(4);
        tlb.insert(1);
        tlb.flush();
        assert!(tlb.is_empty());
        assert!(!tlb.lookup(1));
    }

    #[test]
    fn reinserting_resident_page_does_not_evict() {
        let mut tlb = Tlb::new(2);
        tlb.insert(1);
        tlb.insert(2);
        tlb.insert(1); // already resident
        assert!(tlb.lookup(2), "2 must not have been evicted");
    }

    #[test]
    fn first_touch_hard_faults_then_hits() {
        let mut vm = VirtualMemory::new(1, 16);
        let (_, k1) = vm.translate(0, VAddr(0));
        let (_, k2) = vm.translate(0, VAddr(8));
        let (_, k3) = vm.translate(0, VAddr(PAGE_SIZE_BYTES));
        assert_eq!(k1, PageFaultKind::HardFault);
        assert_eq!(k2, PageFaultKind::TlbHit);
        assert_eq!(k3, PageFaultKind::HardFault);
        assert_eq!(vm.hard_faults(), 2);
        assert_eq!(vm.tlb_hits(), 1);
    }

    #[test]
    fn trfd_effect_second_cluster_tlb_faults() {
        // Cluster 0 touches N pages; clusters 1..4 then touch the same
        // pages: every one is a TLB-miss-with-valid-PTE fault, nearly
        // quadrupling total faults — the paper's TRFD observation.
        let pages = 100u64;
        let mut vm = VirtualMemory::new(4, 1024);
        for p in 0..pages {
            vm.translate(0, VAddr(p * PAGE_SIZE_BYTES));
        }
        let single_cluster_faults: u64 = vm.faults_per_cluster().iter().sum();
        for c in 1..4 {
            for p in 0..pages {
                let (_, kind) = vm.translate(c, VAddr(p * PAGE_SIZE_BYTES));
                assert_eq!(kind, PageFaultKind::TlbMissPteValid);
            }
        }
        let total: u64 = vm.faults_per_cluster().iter().sum();
        assert_eq!(single_cluster_faults, pages);
        assert_eq!(total, 4 * pages, "almost four times the faults");
    }

    #[test]
    fn translations_are_stable_and_distinct() {
        let mut vm = VirtualMemory::new(2, 64);
        let (a1, _) = vm.translate(0, VAddr(0));
        let (b1, _) = vm.translate(0, VAddr(PAGE_SIZE_BYTES * 5));
        let (a2, _) = vm.translate(1, VAddr(0));
        assert_eq!(a1, a2, "same page maps to same frame for all clusters");
        assert_ne!(a1.page(), b1.page(), "different pages get different frames");
    }

    #[test]
    fn offsets_preserved_through_translation() {
        let mut vm = VirtualMemory::new(1, 16);
        let (p, _) = vm.translate(0, VAddr(PAGE_SIZE_BYTES + 123));
        assert_eq!(p.0 % PAGE_SIZE_BYTES, 123);
    }

    #[test]
    fn distributed_placement_maps_into_cluster_memory() {
        let mut vm = VirtualMemory::new(4, 64);
        vm.map_into_cluster(2, 10, 5);
        assert_eq!(vm.page_home(10), Some((Region::Cluster, 2)));
        let (paddr, kind) = vm.translate(2, VAddr(10 * PAGE_SIZE_BYTES));
        assert_eq!(kind, PageFaultKind::TlbMissPteValid, "PTE pre-exists");
        assert_eq!(paddr.region(), Region::Cluster);
    }

    #[test]
    fn map_into_cluster_respects_existing_mappings() {
        let mut vm = VirtualMemory::new(2, 64);
        vm.translate(0, VAddr(0)); // page 0 now global
        vm.map_into_cluster(1, 0, 2); // page 0 skipped, page 1 mapped
        assert_eq!(vm.page_home(0), Some((Region::Global, 0)));
        assert_eq!(vm.page_home(1), Some((Region::Cluster, 1)));
    }

    #[test]
    fn service_cycles_accumulate_by_kind() {
        let costs = VmCosts {
            tlb_miss_cycles: 10,
            hard_fault_cycles: 100,
        };
        let mut vm = VirtualMemory::with_costs(2, 16, costs);
        vm.translate(0, VAddr(0)); // hard: 100
        vm.translate(1, VAddr(0)); // tlb miss: 10
        vm.translate(1, VAddr(8)); // hit: 0
        assert_eq!(vm.service_cycles(), 110);
    }

    #[test]
    fn tlb_flush_forces_refaults() {
        let mut vm = VirtualMemory::new(1, 16);
        vm.translate(0, VAddr(0));
        vm.flush_tlb(0);
        let (_, kind) = vm.translate(0, VAddr(0));
        assert_eq!(kind, PageFaultKind::TlbMissPteValid);
    }
}
