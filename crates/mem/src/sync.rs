//! Memory-based synchronization instructions.
//!
//! The paper (§2, "Memory-based Synchronization"): given a multistage
//! network, ordinary lock cycles are impossible, so "Cedar implements
//! a set of indivisible synchronization instructions in each memory
//! module. These include Test-And-Set and Cedar synchronization
//! instructions based on \[ZhYe87\] … Cedar synchronization
//! instructions implement Test-And-Operate, where Test is any
//! relational operation on 32-bit data (e.g. >) and Operate is a
//! Read, Write, Add, Subtract, or Logical operation on 32-bit data."
//!
//! Each instruction executes atomically at the memory module's
//! synchronization processor; the CE receives the old value and the
//! test outcome in the reply.

use std::fmt;

/// The relational test half of a Test-And-Operate instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestOp {
    /// Always passes (an unconditional Operate).
    Always,
    /// `mem == operand`
    Equal,
    /// `mem != operand`
    NotEqual,
    /// `mem < operand`
    Less,
    /// `mem <= operand`
    LessEqual,
    /// `mem > operand`
    Greater,
    /// `mem >= operand`
    GreaterEqual,
}

impl TestOp {
    /// Evaluates the test against the memory value.
    #[must_use]
    pub fn evaluate(self, mem: i32, operand: i32) -> bool {
        match self {
            TestOp::Always => true,
            TestOp::Equal => mem == operand,
            TestOp::NotEqual => mem != operand,
            TestOp::Less => mem < operand,
            TestOp::LessEqual => mem <= operand,
            TestOp::Greater => mem > operand,
            TestOp::GreaterEqual => mem >= operand,
        }
    }
}

impl fmt::Display for TestOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TestOp::Always => "true",
            TestOp::Equal => "==",
            TestOp::NotEqual => "!=",
            TestOp::Less => "<",
            TestOp::LessEqual => "<=",
            TestOp::Greater => ">",
            TestOp::GreaterEqual => ">=",
        };
        f.write_str(s)
    }
}

/// The Operate half of a Test-And-Operate instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Leave memory unchanged (fetch only).
    Read,
    /// Store the operand.
    Write,
    /// Add the operand.
    Add,
    /// Subtract the operand.
    Sub,
    /// Bitwise AND with the operand.
    And,
    /// Bitwise OR with the operand.
    Or,
    /// Bitwise XOR with the operand.
    Xor,
}

impl AtomicOp {
    /// Applies the operation, returning the new memory value.
    #[must_use]
    pub fn apply(self, mem: i32, operand: i32) -> i32 {
        match self {
            AtomicOp::Read => mem,
            AtomicOp::Write => operand,
            AtomicOp::Add => mem.wrapping_add(operand),
            AtomicOp::Sub => mem.wrapping_sub(operand),
            AtomicOp::And => mem & operand,
            AtomicOp::Or => mem | operand,
            AtomicOp::Xor => mem ^ operand,
        }
    }
}

/// A complete synchronization instruction as shipped to a memory
/// module: test, test operand, operate, operate operand.
///
/// # Examples
///
/// A classic Test-And-Set built from the primitives:
///
/// ```
/// use cedar_mem::sync::{SyncInstruction, SyncOutcome};
///
/// let tas = SyncInstruction::test_and_set();
/// let mut cell = 0i32;
/// let first = tas.execute(&mut cell);
/// let second = tas.execute(&mut cell);
/// assert!(first.test_passed && !second.test_passed);
/// assert_eq!(cell, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncInstruction {
    /// Relational test applied to the 32-bit memory cell.
    pub test: TestOp,
    /// Right-hand operand of the test.
    pub test_operand: i32,
    /// Operation performed when the test passes.
    pub op: AtomicOp,
    /// Operand of the operation.
    pub op_operand: i32,
}

impl SyncInstruction {
    /// Builds a Test-And-Operate instruction.
    #[must_use]
    pub fn test_and_op(test: TestOp, test_operand: i32, op: AtomicOp, op_operand: i32) -> Self {
        SyncInstruction {
            test,
            test_operand,
            op,
            op_operand,
        }
    }

    /// Test-And-Set: if the cell is 0, set it to 1. The lock is
    /// acquired iff the test passed.
    #[must_use]
    pub fn test_and_set() -> Self {
        SyncInstruction::test_and_op(TestOp::Equal, 0, AtomicOp::Write, 1)
    }

    /// Unconditional fetch-and-add, the workhorse of loop
    /// self-scheduling in the Cedar runtime library.
    #[must_use]
    pub fn fetch_and_add(n: i32) -> Self {
        SyncInstruction::test_and_op(TestOp::Always, 0, AtomicOp::Add, n)
    }

    /// Unconditional atomic read.
    #[must_use]
    pub fn read() -> Self {
        SyncInstruction::test_and_op(TestOp::Always, 0, AtomicOp::Read, 0)
    }

    /// Unconditional atomic write.
    #[must_use]
    pub fn write(value: i32) -> Self {
        SyncInstruction::test_and_op(TestOp::Always, 0, AtomicOp::Write, value)
    }

    /// Executes the instruction atomically against a memory cell,
    /// returning the old value and whether the test passed. The
    /// operation is applied only when the test passes.
    pub fn execute(self, cell: &mut i32) -> SyncOutcome {
        let old_value = *cell;
        let test_passed = self.test.evaluate(old_value, self.test_operand);
        if test_passed {
            *cell = self.op.apply(old_value, self.op_operand);
        }
        SyncOutcome {
            old_value,
            test_passed,
        }
    }
}

/// What a synchronization instruction reports back to the CE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncOutcome {
    /// The cell's value before the operation.
    pub old_value: i32,
    /// Whether the relational test passed (and thus the operation ran).
    pub test_passed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tests_evaluate_correctly() {
        assert!(TestOp::Always.evaluate(i32::MIN, i32::MAX));
        assert!(TestOp::Equal.evaluate(3, 3));
        assert!(!TestOp::Equal.evaluate(3, 4));
        assert!(TestOp::NotEqual.evaluate(3, 4));
        assert!(TestOp::Less.evaluate(-1, 0));
        assert!(TestOp::LessEqual.evaluate(0, 0));
        assert!(TestOp::Greater.evaluate(1, 0));
        assert!(TestOp::GreaterEqual.evaluate(0, 0));
        assert!(!TestOp::Greater.evaluate(0, 0));
    }

    #[test]
    fn all_ops_apply_correctly() {
        assert_eq!(AtomicOp::Read.apply(7, 99), 7);
        assert_eq!(AtomicOp::Write.apply(7, 99), 99);
        assert_eq!(AtomicOp::Add.apply(7, 3), 10);
        assert_eq!(AtomicOp::Sub.apply(7, 3), 4);
        assert_eq!(AtomicOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AtomicOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AtomicOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn add_wraps_instead_of_panicking() {
        assert_eq!(AtomicOp::Add.apply(i32::MAX, 1), i32::MIN);
        assert_eq!(AtomicOp::Sub.apply(i32::MIN, 1), i32::MAX);
    }

    #[test]
    fn test_and_set_acquires_once() {
        let mut lock = 0;
        let tas = SyncInstruction::test_and_set();
        assert!(tas.execute(&mut lock).test_passed);
        for _ in 0..5 {
            assert!(!tas.execute(&mut lock).test_passed);
        }
        assert_eq!(lock, 1);
    }

    #[test]
    fn failed_test_leaves_memory_unchanged() {
        let mut cell = 10;
        let instr = SyncInstruction::test_and_op(TestOp::Less, 5, AtomicOp::Write, 0);
        let out = instr.execute(&mut cell);
        assert!(!out.test_passed);
        assert_eq!(out.old_value, 10);
        assert_eq!(cell, 10);
    }

    #[test]
    fn fetch_and_add_returns_old_value() {
        let mut counter = 0;
        let faa = SyncInstruction::fetch_and_add(1);
        let olds: Vec<i32> = (0..4)
            .map(|_| faa.execute(&mut counter).old_value)
            .collect();
        assert_eq!(olds, [0, 1, 2, 3]);
        assert_eq!(counter, 4);
    }

    #[test]
    fn bounded_counter_with_test_and_op() {
        // Increment only while below a bound — a ticket dispenser that
        // cannot overshoot, straight out of [ZhYe87]-style usage.
        let mut counter = 0;
        let instr = SyncInstruction::test_and_op(TestOp::Less, 3, AtomicOp::Add, 1);
        let grants = (0..10)
            .filter(|_| instr.execute(&mut counter).test_passed)
            .count();
        assert_eq!(grants, 3);
        assert_eq!(counter, 3);
    }

    #[test]
    fn read_and_write_helpers() {
        let mut cell = 42;
        assert_eq!(SyncInstruction::read().execute(&mut cell).old_value, 42);
        assert_eq!(cell, 42);
        SyncInstruction::write(7).execute(&mut cell);
        assert_eq!(cell, 7);
    }

    #[test]
    fn display_of_test_ops() {
        assert_eq!(TestOp::Greater.to_string(), ">");
        assert_eq!(TestOp::Always.to_string(), "true");
    }
}
