//! The globally shared memory: interleaved modules with per-module
//! synchronization processors.
//!
//! Global memory is 64 MB, double-word (8-byte) interleaved and
//! aligned, directly addressable and shared by all CEs, with a peak
//! bandwidth of 768 MB/s (24 MB/s per processor). Synchronization
//! instructions are "performed by a special processor in each memory
//! module", making them indivisible without network lock cycles.
//!
//! This model stores real 64-bit words (so the runtime's
//! self-scheduling counters and barriers operate on genuine state) and
//! tracks per-module service occupancy for the timing layer.

use cedar_faults::FaultPlan;
use cedar_obs::{CounterId, Obs};

use crate::address::WORD_BYTES;
use crate::sync::{SyncInstruction, SyncOutcome};

/// Number of interleaved modules in the production configuration.
/// Matching the network fabric's port mapping: 32 modules at 2 CE
/// cycles per word gives the machine's 768 MB/s aggregate bandwidth.
pub const DEFAULT_MODULES: usize = 32;

/// Default capacity: 64 MB, per the paper.
pub const DEFAULT_CAPACITY_BYTES: u64 = 64 << 20;

/// The global shared memory.
///
/// Word addresses used by [`read_word`], [`write_word`] and
/// [`sync_op`] are *word indexes* into the global region (i.e.
/// [`crate::address::PAddr::word_index`] of a global physical
/// address).
///
/// [`read_word`]: GlobalMemory::read_word
/// [`write_word`]: GlobalMemory::write_word
/// [`sync_op`]: GlobalMemory::sync_op
///
/// # Examples
///
/// ```
/// use cedar_mem::global::GlobalMemory;
///
/// let mut gm = GlobalMemory::with_words(256);
/// gm.write_word(10, 0xDEAD_BEEF);
/// assert_eq!(gm.read_word(10), 0xDEAD_BEEF);
/// assert_eq!(gm.module_of_word(10), 10 % 32);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    words: Vec<u64>,
    modules: usize,
    reads: u64,
    writes: u64,
    sync_ops: u64,
    /// Per-module count of sync instructions executed, a signal the
    /// performance monitor can tap.
    sync_per_module: Vec<u64>,
    /// Sync updates whose write-back was lost to an injected fault.
    sync_lost: u64,
    /// Attached fault schedule; `None` (the default, or a benign plan)
    /// leaves every operation bit-identical to the healthy memory.
    faults: Option<FaultPlan>,
    /// Attached telemetry handles; `None` keeps every operation on its
    /// un-instrumented path.
    obs: Option<GmObs>,
}

/// Interned telemetry handles for the global memory.
#[derive(Debug, Clone)]
struct GmObs {
    obs: Obs,
    reads: CounterId,
    writes: CounterId,
    sync_ops: CounterId,
    sync_lost: CounterId,
    /// Per-module sync counters, exposing hot synchronization cells in
    /// the exported registry the way `sync_ops_per_module` does in
    /// code.
    sync_per_module: Vec<CounterId>,
}

impl GlobalMemory {
    /// Creates a memory holding `words` 64-bit words across the
    /// default module count, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn with_words(words: usize) -> Self {
        GlobalMemory::with_words_and_modules(words, DEFAULT_MODULES)
    }

    /// Creates a memory with an explicit module count.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `modules` is zero.
    #[must_use]
    pub fn with_words_and_modules(words: usize, modules: usize) -> Self {
        assert!(words > 0, "memory must hold at least one word");
        assert!(modules > 0, "need at least one module");
        GlobalMemory {
            words: vec![0; words],
            modules,
            reads: 0,
            writes: 0,
            sync_ops: 0,
            sync_per_module: vec![0; modules],
            sync_lost: 0,
            faults: None,
            obs: None,
        }
    }

    /// Attaches a telemetry handle, interning `mem.reads`,
    /// `mem.writes`, `mem.sync_ops`, `mem.sync_lost` and per-module
    /// `mem.module<m>.sync_ops` counters. A handle without live
    /// metrics detaches, leaving every operation bit-identical to an
    /// un-instrumented memory.
    pub fn set_obs(&mut self, obs: &Obs) {
        if !obs.metrics_enabled() {
            self.obs = None;
            return;
        }
        self.obs = Some(GmObs {
            reads: obs.counter("mem.reads").expect("metrics enabled"),
            writes: obs.counter("mem.writes").expect("metrics enabled"),
            sync_ops: obs.counter("mem.sync_ops").expect("metrics enabled"),
            sync_lost: obs.counter("mem.sync_lost").expect("metrics enabled"),
            sync_per_module: (0..self.modules)
                .map(|m| {
                    obs.counter(&format!("mem.module{m:02}.sync_ops"))
                        .expect("metrics enabled")
                })
                .collect(),
            obs: obs.clone(),
        });
    }

    /// Attaches a fault schedule governing lost synchronization
    /// updates. A benign plan is discarded: the memory then behaves
    /// bit-identically to one with no plan attached.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_benign() { None } else { Some(plan) };
    }

    /// The attached fault schedule, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The production configuration: 64 MB over 32 modules.
    #[must_use]
    pub fn cedar() -> Self {
        GlobalMemory::with_words_and_modules(
            (DEFAULT_CAPACITY_BYTES / WORD_BYTES) as usize,
            DEFAULT_MODULES,
        )
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero capacity (never true — construction
    /// requires at least one word).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of interleaved modules.
    #[must_use]
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// The module serving word `index` under double-word interleaving.
    #[must_use]
    pub fn module_of_word(&self, index: u64) -> usize {
        (index % self.modules as u64) as usize
    }

    /// Reads the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn read_word(&mut self, index: u64) -> u64 {
        self.reads += 1;
        if let Some(gm_obs) = &self.obs {
            gm_obs.obs.inc(gm_obs.reads);
        }
        self.words[index as usize]
    }

    /// Writes the word at `index`. Writes do not stall the issuing CE
    /// (the global system is weakly ordered); the model simply applies
    /// them immediately in program order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn write_word(&mut self, index: u64, value: u64) {
        self.writes += 1;
        if let Some(gm_obs) = &self.obs {
            gm_obs.obs.inc(gm_obs.writes);
        }
        self.words[index as usize] = value;
    }

    /// Executes a synchronization instruction indivisibly at the
    /// module owning word `index`. The cell is the low 32 bits of the
    /// word, as the instructions operate on 32-bit data.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    /// Under an attached fault schedule the update may be *lost*: the
    /// synchronization processor computes the reply (so the issuing CE
    /// sees a plausible outcome) but the memory write never commits —
    /// the failure mode a caller detects only by reading the cell
    /// back, which is what `cedar_runtime::sync`'s verify-and-retry
    /// recovery does.
    pub fn sync_op(&mut self, index: u64, instr: SyncInstruction) -> SyncOutcome {
        let op_index = self.sync_ops;
        self.sync_ops += 1;
        let module = self.module_of_word(index);
        self.sync_per_module[module] += 1;
        if let Some(gm_obs) = &self.obs {
            gm_obs.obs.inc(gm_obs.sync_ops);
            gm_obs.obs.inc(gm_obs.sync_per_module[module]);
        }
        let word = &mut self.words[index as usize];
        let mut cell = *word as u32 as i32;
        let outcome = instr.execute(&mut cell);
        if let Some(plan) = &self.faults {
            if plan.sync_update_lost(module, index, op_index) {
                self.sync_lost += 1;
                if let Some(gm_obs) = &self.obs {
                    gm_obs.obs.inc(gm_obs.sync_lost);
                }
                return outcome;
            }
        }
        *word = (*word & 0xFFFF_FFFF_0000_0000) | u64::from(cell as u32);
        outcome
    }

    /// Copies `len` words starting at `src` into a slice — the
    /// "explicit move under software control" from global memory to a
    /// cluster buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or lengths mismatch.
    pub fn copy_out(&mut self, src: u64, dst: &mut [u64]) {
        let s = src as usize;
        dst.copy_from_slice(&self.words[s..s + dst.len()]);
        self.reads += dst.len() as u64;
        if let Some(gm_obs) = &self.obs {
            gm_obs.obs.add(gm_obs.reads, dst.len() as u64);
        }
    }

    /// Copies a slice into global memory starting at `dst` — the
    /// explicit move from a cluster buffer to global memory.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_in(&mut self, dst: u64, src: &[u64]) {
        let d = dst as usize;
        self.words[d..d + src.len()].copy_from_slice(src);
        self.writes += src.len() as u64;
        if let Some(gm_obs) = &self.obs {
            gm_obs.obs.add(gm_obs.writes, src.len() as u64);
        }
    }

    /// Total word reads served.
    #[must_use]
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Total word writes served.
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total synchronization instructions executed.
    #[must_use]
    pub fn sync_op_count(&self) -> u64 {
        self.sync_ops
    }

    /// Synchronization instructions executed per module, exposing hot
    /// synchronization cells.
    #[must_use]
    pub fn sync_ops_per_module(&self) -> &[u64] {
        &self.sync_per_module
    }

    /// Synchronization updates lost to injected faults. Always zero
    /// without an attached fault schedule.
    #[must_use]
    pub fn sync_lost_count(&self) -> u64 {
        self.sync_lost
    }
}

// Telemetry handles (`obs`) are deliberately not serialized: they are
// a pure overlay (proven equivalent to the un-instrumented path by the
// obs tests) and hold interned ids into a registry that outlives the
// snapshot. Restore leaves them detached; callers re-attach via
// `set_obs`. Everything else — including `sync_ops`, the fault-plan
// cursor that feeds `sync_update_lost` — round-trips.
impl cedar_snap::Snapshot for GlobalMemory {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        self.words.snap(w);
        self.modules.snap(w);
        self.reads.snap(w);
        self.writes.snap(w);
        self.sync_ops.snap(w);
        self.sync_per_module.snap(w);
        self.sync_lost.snap(w);
        self.faults.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        Ok(GlobalMemory {
            words: cedar_snap::Snapshot::restore(r)?,
            modules: cedar_snap::Snapshot::restore(r)?,
            reads: cedar_snap::Snapshot::restore(r)?,
            writes: cedar_snap::Snapshot::restore(r)?,
            sync_ops: cedar_snap::Snapshot::restore(r)?,
            sync_per_module: cedar_snap::Snapshot::restore(r)?,
            sync_lost: cedar_snap::Snapshot::restore(r)?,
            faults: cedar_snap::Snapshot::restore(r)?,
            obs: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicOp, TestOp};

    #[test]
    fn read_write_round_trip() {
        let mut gm = GlobalMemory::with_words(64);
        gm.write_word(3, 99);
        assert_eq!(gm.read_word(3), 99);
        assert_eq!(gm.read_word(4), 0, "untouched words are zero");
    }

    #[test]
    fn obs_counters_mirror_the_internal_tallies() {
        let obs = Obs::new(cedar_obs::ObsConfig::enabled());
        let mut gm = GlobalMemory::with_words_and_modules(64, 4);
        gm.set_obs(&obs);
        gm.write_word(3, 7);
        gm.read_word(3);
        gm.copy_in(8, &[1, 2, 3]);
        let mut out = [0u64; 2];
        gm.copy_out(8, &mut out);
        gm.sync_op(5, SyncInstruction::fetch_and_add(1));
        gm.sync_op(5, SyncInstruction::fetch_and_add(1));
        let value = |name: &str| obs.counter_value(name);
        assert_eq!(value("mem.reads"), gm.read_count());
        assert_eq!(value("mem.writes"), gm.write_count());
        assert_eq!(value("mem.sync_ops"), 2);
        assert_eq!(value("mem.module01.sync_ops"), 2);
        assert_eq!(value("mem.sync_lost"), 0);
    }

    #[test]
    fn disabled_obs_handle_detaches() {
        let mut gm = GlobalMemory::with_words(64);
        gm.set_obs(&Obs::disabled());
        assert!(gm.obs.is_none());
        gm.write_word(0, 1);
        assert_eq!(gm.read_word(0), 1);
    }

    #[test]
    fn cedar_capacity_is_64_mb() {
        let gm = GlobalMemory::cedar();
        assert_eq!(gm.len() as u64 * WORD_BYTES, 64 << 20);
        assert_eq!(gm.modules(), 32);
    }

    #[test]
    fn interleaving_spreads_consecutive_words() {
        let gm = GlobalMemory::with_words_and_modules(128, 8);
        let modules: Vec<usize> = (0..8).map(|w| gm.module_of_word(w)).collect();
        assert_eq!(modules, [0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(gm.module_of_word(8), 0);
    }

    #[test]
    fn sync_op_is_atomic_and_reports_old_value() {
        let mut gm = GlobalMemory::with_words(16);
        gm.write_word(0, 41);
        let out = gm.sync_op(0, SyncInstruction::fetch_and_add(1));
        assert_eq!(out.old_value, 41);
        assert_eq!(gm.read_word(0), 42);
    }

    #[test]
    fn sync_op_touches_only_low_half() {
        let mut gm = GlobalMemory::with_words(16);
        gm.write_word(0, 0xAAAA_BBBB_0000_0001);
        gm.sync_op(0, SyncInstruction::fetch_and_add(1));
        assert_eq!(gm.read_word(0), 0xAAAA_BBBB_0000_0002);
    }

    #[test]
    fn sync_op_negative_values() {
        let mut gm = GlobalMemory::with_words(16);
        gm.sync_op(0, SyncInstruction::write(-5));
        let out = gm.sync_op(
            0,
            SyncInstruction::test_and_op(TestOp::Less, 0, AtomicOp::Add, 10),
        );
        assert!(out.test_passed);
        assert_eq!(out.old_value, -5);
        let final_val = gm.sync_op(0, SyncInstruction::read());
        assert_eq!(final_val.old_value, 5);
    }

    #[test]
    fn explicit_moves_copy_blocks() {
        let mut gm = GlobalMemory::with_words(64);
        gm.copy_in(8, &[1, 2, 3, 4]);
        let mut buf = [0u64; 4];
        gm.copy_out(8, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn counters_track_traffic() {
        let mut gm = GlobalMemory::with_words(64);
        gm.write_word(0, 1);
        gm.read_word(0);
        gm.copy_in(0, &[1, 2]);
        gm.copy_out(0, &mut [0u64; 2]);
        gm.sync_op(5, SyncInstruction::test_and_set());
        assert_eq!(gm.write_count(), 3);
        assert_eq!(gm.read_count(), 3);
        assert_eq!(gm.sync_op_count(), 1);
        assert_eq!(gm.sync_ops_per_module()[5], 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        GlobalMemory::with_words(4).read_word(4);
    }

    mod faults {
        use super::*;
        use cedar_faults::{FaultConfig, FaultPlan, MachineShape};

        fn plan(cfg: &FaultConfig) -> FaultPlan {
            FaultPlan::generate(cfg, &MachineShape::cedar()).unwrap()
        }

        #[test]
        fn benign_plan_is_discarded() {
            let mut gm = GlobalMemory::with_words(64);
            gm.attach_faults(plan(&FaultConfig::none(1)));
            assert!(gm.faults().is_none());
            gm.sync_op(0, SyncInstruction::fetch_and_add(1));
            assert_eq!(gm.read_word(0), 1);
            assert_eq!(gm.sync_lost_count(), 0);
        }

        #[test]
        fn dead_sync_module_loses_update_but_replies() {
            let mut gm = GlobalMemory::with_words(64);
            gm.write_word(5, 41);
            // Word 5 lives on module 5 under 32-way interleave.
            gm.attach_faults(plan(&FaultConfig::dead_sync_processor(1, 5)));
            let out = gm.sync_op(5, SyncInstruction::fetch_and_add(1));
            assert_eq!(out.old_value, 41, "the reply looks committed");
            assert_eq!(gm.read_word(5), 41, "but the write never landed");
            assert_eq!(gm.sync_lost_count(), 1);
            // Other modules are unaffected.
            let out = gm.sync_op(6, SyncInstruction::fetch_and_add(1));
            assert_eq!(out.old_value, 0);
            assert_eq!(gm.read_word(6), 1);
        }

        #[test]
        fn probabilistic_losses_are_deterministic() {
            let run = || {
                let mut gm = GlobalMemory::with_words(64);
                let cfg = FaultConfig {
                    sync_lost_prob: 0.5,
                    ..FaultConfig::none(9)
                };
                gm.attach_faults(plan(&cfg));
                for i in 0..200u64 {
                    gm.sync_op(i % 64, SyncInstruction::fetch_and_add(1));
                }
                let lost = gm.sync_lost_count();
                // Plain reads see committed state only.
                let survivors: i64 = (0..64u64).map(|i| gm.read_word(i) as i64).sum();
                (survivors, lost)
            };
            let (survivors, lost) = run();
            assert_eq!(run(), (survivors, lost), "same seed, same losses");
            assert!(lost > 0, "half the updates should vanish");
            assert_eq!(survivors + lost as i64, 200, "lost + committed = issued");
        }
    }
}
