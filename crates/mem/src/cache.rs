//! The cluster shared cache.
//!
//! Per the paper (§2, "Alliant clusters"): all references to cluster
//! memory first check a 512 KB physically-addressed shared cache with
//! 32-byte lines. The cache is write-back and lockup-free, allowing
//! each CE two outstanding misses; writes do not stall a CE. Its
//! bandwidth is eight 64-bit words per instruction cycle (one input
//! stream per vector instruction in each of the eight CEs), twice the
//! cluster-memory bandwidth behind it.
//!
//! The model is a set-associative tag store with per-set LRU and a
//! 4-way bank interleave; it reports hit/miss/writeback outcomes and
//! keeps the counters the cost model and the GM/cache experiments
//! need.

use cedar_faults::CedarError;

use crate::address::PAddr;

/// Cache geometry and behaviour parameters.
///
/// # Examples
///
/// ```
/// use cedar_mem::cache::CacheConfig;
///
/// let cfg = CacheConfig::cedar();
/// assert_eq!(cfg.capacity_bytes, 512 * 1024);
/// assert_eq!(cfg.line_bytes, 32);
/// assert_eq!(cfg.banks, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total data capacity in bytes. Cedar: 512 KB.
    pub capacity_bytes: u64,
    /// Line size in bytes. Cedar: 32.
    pub line_bytes: u64,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Interleaved banks. Cedar: 4.
    pub banks: usize,
    /// Outstanding misses allowed per CE (lockup-free depth). Cedar: 2.
    pub outstanding_misses_per_ce: u32,
}

impl CacheConfig {
    /// The Cedar / Alliant FX/8 shared-cache configuration.
    #[must_use]
    pub fn cedar() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            line_bytes: 32,
            ways: 4,
            banks: 4,
            outstanding_misses_per_ce: 2,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`CedarError::InvalidConfig`] naming the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), CedarError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(CedarError::invalid(
                "cache.line_bytes",
                format!("line size must be a power of two, got {}", self.line_bytes),
            ));
        }
        if self.ways == 0 {
            return Err(CedarError::invalid(
                "cache.ways",
                "associativity must be nonzero",
            ));
        }
        if self.banks == 0 {
            return Err(CedarError::invalid(
                "cache.banks",
                "bank count must be nonzero",
            ));
        }
        let lines = self.capacity_bytes / self.line_bytes;
        if lines == 0 || !lines.is_multiple_of(self.ways as u64) {
            return Err(CedarError::invalid(
                "cache.ways",
                format!("{} lines do not divide into {}-way sets", lines, self.ways),
            ));
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::cedar()
    }
}

/// The result of presenting one access to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and filled a free/clean way.
    Miss,
    /// The line was absent and evicted a dirty line, which must be
    /// written back to cluster memory first.
    MissWithWriteback,
}

impl CacheOutcome {
    /// Whether the access hit.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// One cached line's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
    valid: bool,
}

const INVALID_LINE: Line = Line {
    tag: 0,
    dirty: false,
    stamp: 0,
    valid: false,
};

/// The shared cluster cache (tag store model).
///
/// # Examples
///
/// ```
/// use cedar_mem::cache::{CacheConfig, CacheOutcome, SharedCache};
/// use cedar_mem::address::PAddr;
///
/// let mut cache = SharedCache::new(CacheConfig::cedar());
/// let addr = PAddr::in_cluster(0x1000);
/// assert_eq!(cache.access(addr, false), CacheOutcome::Miss);
/// assert_eq!(cache.access(addr, false), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SharedCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    /// Accesses per bank, for interleave-conflict analysis.
    bank_accesses: Vec<u64>,
}

impl SharedCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        SharedCache {
            sets: vec![vec![INVALID_LINE; cfg.ways]; cfg.sets()],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            bank_accesses: vec![0; cfg.banks],
            cfg,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Presents an access (read or write) for the line containing
    /// `addr`. Writes mark the line dirty; the write-back policy means
    /// a write miss allocates and dirties the line without stalling.
    pub fn access(&mut self, addr: PAddr, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        let line_number = addr.0 / self.cfg.line_bytes;
        let set_idx = (line_number % self.cfg.sets() as u64) as usize;
        let tag = line_number / self.cfg.sets() as u64;
        let bank = (line_number % self.cfg.banks as u64) as usize;
        self.bank_accesses[bank] += 1;

        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = clock;
            line.dirty |= is_write;
            self.hits += 1;
            return CacheOutcome::Hit;
        }

        self.misses += 1;
        // Victim: an invalid way if any, else the LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp + 1 } else { 0 })
            .expect("sets are non-empty");
        let needs_writeback = victim.valid && victim.dirty;
        *victim = Line {
            tag,
            dirty: is_write,
            stamp: clock,
            valid: true,
        };
        if needs_writeback {
            self.writebacks += 1;
            CacheOutcome::MissWithWriteback
        } else {
            CacheOutcome::Miss
        }
    }

    /// Whether the line containing `addr` is currently resident.
    #[must_use]
    pub fn contains(&self, addr: PAddr) -> bool {
        let line_number = addr.0 / self.cfg.line_bytes;
        let set_idx = (line_number % self.cfg.sets() as u64) as usize;
        let tag = line_number / self.cfg.sets() as u64;
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates every line, discarding dirty state (used when
    /// software re-purposes the physical pages under the cache).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            set.iter_mut().for_each(|l| *l = INVALID_LINE);
        }
    }

    /// Hits served so far.
    #[must_use]
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Misses taken so far.
    #[must_use]
    pub fn miss_count(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    #[must_use]
    pub fn writeback_count(&self) -> u64 {
        self.writebacks
    }

    /// Hit fraction over all accesses, or 0 when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accesses observed per interleaved bank.
    #[must_use]
    pub fn bank_accesses(&self) -> &[u64] {
        &self.bank_accesses
    }
}

cedar_snap::snapshot_struct!(CacheConfig {
    capacity_bytes,
    line_bytes,
    ways,
    banks,
    outstanding_misses_per_ce,
});
cedar_snap::snapshot_struct!(Line {
    tag,
    dirty,
    stamp,
    valid,
});
cedar_snap::snapshot_struct!(SharedCache {
    cfg,
    sets,
    clock,
    hits,
    misses,
    writebacks,
    bank_accesses,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SharedCache {
        // 4 sets x 2 ways x 32-byte lines = 256 bytes.
        SharedCache::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            ways: 2,
            banks: 4,
            outstanding_misses_per_ce: 2,
        })
    }

    #[test]
    fn cedar_geometry() {
        let cfg = CacheConfig::cedar();
        assert_eq!(cfg.sets(), 512 * 1024 / 32 / 4);
        cfg.validate().unwrap();
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = small_cache();
        let a = PAddr::in_cluster(0);
        assert_eq!(c.access(a, false), CacheOutcome::Miss);
        assert_eq!(c.access(a, false), CacheOutcome::Hit);
        assert_eq!(c.hit_count(), 1);
        assert_eq!(c.miss_count(), 1);
    }

    #[test]
    fn same_line_different_words_hit() {
        let mut c = small_cache();
        c.access(PAddr::in_cluster(0), false);
        assert_eq!(c.access(PAddr::in_cluster(24), false), CacheOutcome::Hit);
        assert_eq!(c.access(PAddr::in_cluster(32), false), CacheOutcome::Miss);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Set 0 holds lines whose line_number % 4 == 0: addresses 0,
        // 128, 256 (lines 0, 4, 8).
        c.access(PAddr::in_cluster(0), false);
        c.access(PAddr::in_cluster(128), false);
        c.access(PAddr::in_cluster(0), false); // touch: 128 becomes LRU
        c.access(PAddr::in_cluster(256), false); // evicts 128
        assert!(c.contains(PAddr::in_cluster(0)));
        assert!(!c.contains(PAddr::in_cluster(128)));
        assert!(c.contains(PAddr::in_cluster(256)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.access(PAddr::in_cluster(0), true); // dirty line 0
        c.access(PAddr::in_cluster(128), false);
        // Evict line 0 (LRU, dirty).
        let outcome = c.access(PAddr::in_cluster(256), false);
        assert_eq!(outcome, CacheOutcome::MissWithWriteback);
        assert_eq!(c.writeback_count(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small_cache();
        c.access(PAddr::in_cluster(0), false);
        c.access(PAddr::in_cluster(128), false);
        assert_eq!(c.access(PAddr::in_cluster(256), false), CacheOutcome::Miss);
        assert_eq!(c.writeback_count(), 0);
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = small_cache();
        c.access(PAddr::in_cluster(0), false);
        c.access(PAddr::in_cluster(0), true); // hit, now dirty
        c.access(PAddr::in_cluster(128), false);
        let outcome = c.access(PAddr::in_cluster(256), false);
        assert_eq!(outcome, CacheOutcome::MissWithWriteback);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = small_cache();
        c.access(PAddr::in_cluster(0), true);
        c.invalidate_all();
        assert!(!c.contains(PAddr::in_cluster(0)));
        assert_eq!(c.access(PAddr::in_cluster(0), false), CacheOutcome::Miss);
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = small_cache();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(PAddr::in_cluster(0), false);
        c.access(PAddr::in_cluster(0), false);
        c.access(PAddr::in_cluster(0), false);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn banks_interleave_by_line() {
        let mut c = small_cache();
        for line in 0..8u64 {
            c.access(PAddr::in_cluster(line * 32), false);
        }
        assert_eq!(c.bank_accesses(), &[2, 2, 2, 2]);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small_cache(); // 256 bytes
                                   // Stream 4 KB twice: second pass must still miss everywhere.
        for pass in 0..2 {
            for line in 0..128u64 {
                let outcome = c.access(PAddr::in_cluster(line * 32), false);
                assert!(
                    !outcome.is_hit(),
                    "pass {pass} line {line} unexpectedly hit"
                );
            }
        }
    }

    #[test]
    fn working_set_within_capacity_hits_on_reuse() {
        let mut c = small_cache(); // 8 lines
        for line in 0..8u64 {
            c.access(PAddr::in_cluster(line * 32), false);
        }
        for line in 0..8u64 {
            assert!(c.access(PAddr::in_cluster(line * 32), false).is_hit());
        }
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn bad_geometry_rejected() {
        let _ = SharedCache::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            ways: 3, // 8 lines do not divide into 3-way sets
            banks: 4,
            outstanding_misses_per_ce: 2,
        });
    }
}
