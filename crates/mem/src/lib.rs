//! `cedar-mem` — the Cedar memory hierarchy.
//!
//! The paper (§2, "Memory Hierarchy") describes a two-level physical
//! organization that this crate models in full:
//!
//! * 64 MB of globally shared memory, double-word (8-byte) interleaved
//!   and aligned, directly addressable by every CE, with a
//!   **synchronization processor in each module** executing indivisible
//!   Test-And-Set and Test-And-Operate instructions ([`global`],
//!   [`sync`]);
//! * four 32 MB cluster memories, each private to its cluster and
//!   fronted by a 512 KB physically-addressed, 4-way-interleaved,
//!   write-back, lockup-free shared cache with 32-byte lines
//!   ([`cluster`], [`cache`]);
//! * software-maintained coherence for cluster copies of global data
//!   ("coherence between multiple copies of globally shared data
//!   residing in cluster memory is maintained in software",
//!   [`coherence`]);
//! * a virtual memory system with 4 KB pages in which the physical
//!   address space is split in half — cluster memory below, global
//!   memory above — with software-managed coherence and page tables
//!   living in global memory ([`address`], [`vm`]).
//!
//! Data can move between cluster and global memory *only* via explicit
//! software-controlled copies; coherence between multiple cluster
//! copies of global data is maintained in software. The global memory
//! system is weakly ordered.
//!
//! # Examples
//!
//! ```
//! use cedar_mem::global::GlobalMemory;
//! use cedar_mem::sync::{SyncInstruction, TestOp, AtomicOp};
//!
//! let mut gm = GlobalMemory::with_words(1024);
//! gm.write_word(0, 5);
//! // Cedar Test-And-Operate: if mem[0] > 3 then add 10, reporting
//! // the old value and whether the test passed.
//! let outcome = gm.sync_op(0, SyncInstruction::test_and_op(
//!     TestOp::Greater, 3, AtomicOp::Add, 10,
//! ));
//! assert!(outcome.test_passed);
//! assert_eq!(outcome.old_value, 5);
//! assert_eq!(gm.read_word(0), 15);
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod cache;
pub mod cluster;
pub mod coherence;
pub mod global;
pub mod sync;
pub mod vm;

pub use address::{PAddr, Region, VAddr, PAGE_SIZE_BYTES, WORD_BYTES};
pub use cache::{CacheConfig, CacheOutcome, SharedCache};
pub use cluster::ClusterMemory;
pub use coherence::{CoherenceDirectory, CopyState, ProtocolAction};
pub use global::GlobalMemory;
pub use sync::{AtomicOp, SyncInstruction, SyncOutcome, TestOp};
pub use vm::{PageFaultKind, Tlb, VirtualMemory};
