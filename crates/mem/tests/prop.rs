//! Randomized property tests for the memory hierarchy, driven by the
//! simulator's deterministic SplitMix64 generator.

use cedar_mem::address::PAddr;
use cedar_mem::address::PAGE_SIZE_BYTES;
use cedar_mem::cache::{CacheConfig, CacheOutcome, SharedCache};
use cedar_mem::global::GlobalMemory;
use cedar_mem::sync::{AtomicOp, SyncInstruction, TestOp};
use cedar_mem::vm::VirtualMemory;
use cedar_sim::rng::SplitMix64;

use std::collections::HashMap;

fn small_cache() -> SharedCache {
    SharedCache::new(CacheConfig {
        capacity_bytes: 1024,
        line_bytes: 32,
        ways: 2,
        banks: 4,
        outstanding_misses_per_ce: 2,
    })
}

const CASES: usize = 64;

/// The cache agrees with a reference LRU model on every access of a
/// random trace: same hit/miss classification throughout.
#[test]
fn cache_matches_reference_lru() {
    let mut rng = SplitMix64::new(0x3e31);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(399) as usize;
        let trace: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.next_below(64), rng.next_bool(0.5)))
            .collect();
        let mut cache = small_cache();
        // Reference: per-set LRU lists over line numbers.
        let sets = 1024 / 32 / 2;
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for &(line, is_write) in &trace {
            let addr = PAddr::in_cluster(line * 32);
            let set = (line % sets as u64) as usize;
            let got = cache.access(addr, is_write);
            let hit = model[set].contains(&line);
            assert_eq!(got.is_hit(), hit, "line {line} in set {set}");
            model[set].retain(|&l| l != line);
            model[set].push(line);
            if model[set].len() > 2 {
                model[set].remove(0);
            }
        }
    }
}

/// Conservation: hits + misses equals accesses; writebacks never
/// exceed misses.
#[test]
fn cache_counter_conservation() {
    let mut rng = SplitMix64::new(0x3e32);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(299) as usize;
        let mut cache = small_cache();
        for _ in 0..len {
            cache.access(
                PAddr::in_cluster(rng.next_below(256) * 32),
                rng.next_bool(0.5),
            );
        }
        assert_eq!(cache.hit_count() + cache.miss_count(), len as u64);
        assert!(cache.writeback_count() <= cache.miss_count());
    }
}

/// Global memory behaves as an array: the last write to each word is
/// what reads observe, regardless of interleaving.
#[test]
fn global_memory_is_a_map() {
    let mut rng = SplitMix64::new(0x3e33);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(199) as usize;
        let mut gm = GlobalMemory::with_words(128);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..len {
            let idx = rng.next_below(128);
            let val = rng.next_u64();
            gm.write_word(idx, val);
            model.insert(idx, val);
        }
        for (&idx, &val) in &model {
            assert_eq!(gm.read_word(idx), val);
        }
    }
}

/// Sync instructions are equivalent to their sequential semantics:
/// replaying any instruction sequence against a plain i32 matches the
/// memory module's outcomes.
#[test]
fn sync_ops_match_sequential_semantics() {
    let tests = [
        TestOp::Always,
        TestOp::Equal,
        TestOp::NotEqual,
        TestOp::Less,
        TestOp::LessEqual,
        TestOp::Greater,
        TestOp::GreaterEqual,
    ];
    let aops = [
        AtomicOp::Read,
        AtomicOp::Write,
        AtomicOp::Add,
        AtomicOp::Sub,
        AtomicOp::And,
        AtomicOp::Or,
        AtomicOp::Xor,
    ];
    let mut rng = SplitMix64::new(0x3e34);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(99) as usize;
        let mut gm = GlobalMemory::with_words(4);
        let mut model: i32 = 0;
        for _ in 0..len {
            let t = rng.next_below(7) as usize;
            let a = rng.next_below(7) as usize;
            let t_op = rng.next_below(200) as i32 - 100;
            let a_op = rng.next_below(200) as i32 - 100;
            let instr = SyncInstruction::test_and_op(tests[t], t_op, aops[a], a_op);
            let out = gm.sync_op(0, instr);
            // Sequential reference.
            let old = model;
            let pass = instr.test.evaluate(old, t_op);
            if pass {
                model = instr.op.apply(old, a_op);
            }
            assert_eq!(out.old_value, old);
            assert_eq!(out.test_passed, pass);
        }
        let final_read = gm.sync_op(0, SyncInstruction::read());
        assert_eq!(final_read.old_value, model);
    }
}

/// Fetch-and-add tickets are a permutation-free sequence: n takes
/// return exactly 0..n in order.
#[test]
fn fetch_and_add_is_sequential() {
    let mut rng = SplitMix64::new(0x3e35);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(199) as usize;
        let mut gm = GlobalMemory::with_words(8);
        for expected in 0..n {
            let out = gm.sync_op(3, SyncInstruction::fetch_and_add(1));
            assert_eq!(out.old_value, expected as i32);
        }
    }
}

/// VM translation is a function: the same virtual address always maps
/// to the same physical address, from any cluster, and distinct pages
/// get distinct frames.
#[test]
fn vm_translation_is_stable_and_injective() {
    let mut rng = SplitMix64::new(0x3e36);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(99) as usize;
        let mut vm = VirtualMemory::new(4, 64);
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for _ in 0..len {
            let page = rng.next_below(500);
            let cluster = rng.next_below(4) as usize;
            let (paddr, _) =
                vm.translate(cluster, cedar_mem::address::VAddr(page * PAGE_SIZE_BYTES));
            match seen.get(&page) {
                Some(&prev) => assert_eq!(prev, paddr.0, "page {page} moved"),
                None => {
                    assert!(
                        !seen.values().any(|&v| v == paddr.0),
                        "frame reused for two pages"
                    );
                    seen.insert(page, paddr.0);
                }
            }
        }
    }
}

/// Cache classification never depends on write-vs-read of earlier
/// accesses (writes only affect dirtiness, not residency).
#[test]
fn cache_residency_ignores_write_flag() {
    let mut rng = SplitMix64::new(0x3e37);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(199) as usize;
        let mut as_reads = small_cache();
        let mut as_writes = small_cache();
        for _ in 0..len {
            let line = rng.next_below(64);
            let a = as_reads.access(PAddr::in_cluster(line * 32), false);
            let b = as_writes.access(PAddr::in_cluster(line * 32), true);
            assert_eq!(a.is_hit(), b.is_hit());
            // Clean traffic never writes back.
            assert!(a != CacheOutcome::MissWithWriteback);
        }
    }
}
