//! Seeded chaos plans for a fleet of worker processes.
//!
//! The cluster's chaos mode is the process-level sibling of
//! [`FaultPlan`](crate::FaultPlan): a [`WorkerFaultConfig`] expands
//! deterministically into a [`WorkerFaultPlan`] that names which
//! workers misbehave, how, and when — *kill* (exit without warning),
//! *stall* (stop responding but stay alive, exercising the heartbeat
//! reaper), or *corrupt* (write a garbage frame, exercising the
//! protocol's checksum path). The trigger point is counted in jobs
//! completed by that worker, so the plan is independent of wall-clock
//! scheduling and the same seed reproduces the same crash pattern on
//! any machine.
//!
//! Faults apply to a worker's **first incarnation only**: a restarted
//! worker runs clean, which is what lets a chaos sweep terminate while
//! still proving recovery. Each fault is carried to the worker process
//! as a compact environment-variable directive (see
//! [`WorkerFault::directive`] / [`parse_directive`]).

use crate::error::CedarError;
use crate::plan::event_hash;

/// How a planned worker fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFaultKind {
    /// The worker process exits immediately, mid-job, without replying.
    Kill,
    /// The worker stops reading and replying but stays alive; only the
    /// coordinator's heartbeat watchdog can detect it.
    Stall,
    /// The worker writes a garbage (checksum-failing) frame instead of
    /// its result, then keeps running.
    Corrupt,
}

impl WorkerFaultKind {
    /// Stable wire/env token for the kind.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            WorkerFaultKind::Kill => "kill",
            WorkerFaultKind::Stall => "stall",
            WorkerFaultKind::Corrupt => "corrupt",
        }
    }
}

/// One planned fault: worker `worker` misbehaves after completing
/// `after_jobs` jobs of its first incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// Index of the worker slot this fault applies to.
    pub worker: u32,
    /// Number of jobs the worker completes cleanly before the fault
    /// fires (0 = the very first job is affected).
    pub after_jobs: u32,
    /// What happens when it fires.
    pub kind: WorkerFaultKind,
}

impl WorkerFault {
    /// Encodes the fault as the `kind:after_jobs` directive string the
    /// worker process receives via its environment.
    #[must_use]
    pub fn directive(&self) -> String {
        format!("{}:{}", self.kind.token(), self.after_jobs)
    }
}

/// Parses a `kind:after_jobs` directive produced by
/// [`WorkerFault::directive`]. Returns `None` on any malformed input —
/// a worker with a garbled directive runs clean rather than guessing.
#[must_use]
pub fn parse_directive(s: &str) -> Option<(WorkerFaultKind, u32)> {
    let (kind, after) = s.split_once(':')?;
    let kind = match kind {
        "kill" => WorkerFaultKind::Kill,
        "stall" => WorkerFaultKind::Stall,
        "corrupt" => WorkerFaultKind::Corrupt,
        _ => return None,
    };
    Some((kind, after.parse().ok()?))
}

/// Shape of a fleet chaos experiment: how many workers exist and how
/// many of each fault kind to plant among them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFaultConfig {
    /// Seed for the deterministic fault placement.
    pub seed: u64,
    /// Number of worker slots in the fleet.
    pub workers: u32,
    /// How many workers get a `Kill` fault.
    pub kills: u32,
    /// How many workers get a `Stall` fault.
    pub stalls: u32,
    /// How many workers get a `Corrupt` fault.
    pub corrupts: u32,
    /// Upper bound (exclusive, minimum 1) on each fault's `after_jobs`
    /// trigger, so every fault fires early in a sweep of any real size.
    pub max_after_jobs: u32,
}

/// A fully expanded, deterministic fleet chaos plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFaultPlan {
    faults: Vec<WorkerFault>,
}

impl WorkerFaultPlan {
    /// Expands `config` into a concrete plan. Placement is a pure
    /// function of the seed: faulted workers are distinct (one fault
    /// per worker, so "≥ 2 workers die" means two distinct deaths) and
    /// kinds are assigned kills-then-stalls-then-corrupts over a
    /// seed-shuffled worker order.
    ///
    /// # Errors
    ///
    /// [`CedarError::InvalidConfig`] if more faults are requested than
    /// there are workers, or the fleet is empty.
    pub fn generate(config: &WorkerFaultConfig) -> Result<Self, CedarError> {
        if config.workers == 0 {
            return Err(CedarError::invalid(
                "cluster.workers",
                "fleet must have at least one worker",
            ));
        }
        let total = config.kills + config.stalls + config.corrupts;
        if total > config.workers {
            return Err(CedarError::invalid(
                "cluster.faults",
                format!(
                    "{} faults requested but only {} workers (one fault per worker)",
                    total, config.workers
                ),
            ));
        }
        // Seeded Fisher-Yates over the worker indices; the first
        // `total` entries receive faults.
        let mut order: Vec<u32> = (0..config.workers).collect();
        for i in (1..order.len()).rev() {
            let j = event_hash(config.seed, &[0xF1EE7, i as u64]) as usize % (i + 1);
            order.swap(i, j);
        }
        let span = u64::from(config.max_after_jobs.max(1));
        let mut faults = Vec::with_capacity(total as usize);
        for (slot, &worker) in order.iter().take(total as usize).enumerate() {
            let kind = if (slot as u32) < config.kills {
                WorkerFaultKind::Kill
            } else if (slot as u32) < config.kills + config.stalls {
                WorkerFaultKind::Stall
            } else {
                WorkerFaultKind::Corrupt
            };
            let after_jobs = (event_hash(config.seed, &[0xAF7E6, u64::from(worker)]) % span) as u32;
            faults.push(WorkerFault {
                worker,
                after_jobs,
                kind,
            });
        }
        faults.sort_by_key(|f| f.worker);
        Ok(WorkerFaultPlan { faults })
    }

    /// The fault planted on `worker`'s first incarnation, if any.
    /// Restarted incarnations always run clean.
    #[must_use]
    pub fn fault_for(&self, worker: u32, incarnation: u32) -> Option<WorkerFault> {
        if incarnation != 0 {
            return None;
        }
        self.faults.iter().copied().find(|f| f.worker == worker)
    }

    /// All planted faults, sorted by worker index.
    #[must_use]
    pub fn faults(&self) -> &[WorkerFault] {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> WorkerFaultConfig {
        WorkerFaultConfig {
            seed: 0xC1A05,
            workers: 4,
            kills: 2,
            stalls: 1,
            corrupts: 1,
            max_after_jobs: 3,
        }
    }

    #[test]
    fn same_seed_same_plan_different_seed_different_plan() {
        let a = WorkerFaultPlan::generate(&config()).unwrap();
        let b = WorkerFaultPlan::generate(&config()).unwrap();
        assert_eq!(a, b);
        let c = WorkerFaultPlan::generate(&WorkerFaultConfig {
            seed: 0x0DD,
            ..config()
        })
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn faulted_workers_are_distinct_and_counts_match() {
        let plan = WorkerFaultPlan::generate(&config()).unwrap();
        let workers: Vec<u32> = plan.faults().iter().map(|f| f.worker).collect();
        let mut deduped = workers.clone();
        deduped.dedup();
        assert_eq!(workers, deduped, "one fault per worker");
        assert_eq!(plan.faults().len(), 4);
        let count = |k: WorkerFaultKind| plan.faults().iter().filter(|f| f.kind == k).count();
        assert_eq!(count(WorkerFaultKind::Kill), 2);
        assert_eq!(count(WorkerFaultKind::Stall), 1);
        assert_eq!(count(WorkerFaultKind::Corrupt), 1);
        for f in plan.faults() {
            assert!(f.after_jobs < 3);
        }
    }

    #[test]
    fn restarted_incarnations_run_clean() {
        let plan = WorkerFaultPlan::generate(&config()).unwrap();
        let faulted = plan.faults()[0].worker;
        assert!(plan.fault_for(faulted, 0).is_some());
        assert_eq!(plan.fault_for(faulted, 1), None);
        assert_eq!(plan.fault_for(faulted, 7), None);
    }

    #[test]
    fn directives_round_trip() {
        for kind in [
            WorkerFaultKind::Kill,
            WorkerFaultKind::Stall,
            WorkerFaultKind::Corrupt,
        ] {
            let fault = WorkerFault {
                worker: 2,
                after_jobs: 5,
                kind,
            };
            assert_eq!(parse_directive(&fault.directive()), Some((kind, 5)));
        }
        assert_eq!(parse_directive(""), None);
        assert_eq!(parse_directive("kill"), None);
        assert_eq!(parse_directive("kill:"), None);
        assert_eq!(parse_directive("maim:3"), None);
        assert_eq!(parse_directive("kill:many"), None);
    }

    #[test]
    fn overcommitted_fleet_is_rejected() {
        let err = WorkerFaultPlan::generate(&WorkerFaultConfig {
            workers: 2,
            ..config()
        });
        assert!(err.is_err());
        let err = WorkerFaultPlan::generate(&WorkerFaultConfig {
            workers: 0,
            kills: 0,
            stalls: 0,
            corrupts: 0,
            ..config()
        });
        assert!(err.is_err());
    }
}
