//! Deterministic, seeded fault schedules.
//!
//! The paper's central memory-system finding is congestion collapse —
//! tree saturation at the memory-module buffers backing up into the
//! omega network \[Turn93\] — and the real Cedar shipped with
//! redundant network copies and per-module synchronization processors
//! precisely so the machine could keep running degraded. This module
//! makes that explorable: a [`FaultConfig`] (seed + rates) expands
//! into a concrete [`FaultPlan`] — which switch outputs are stuck or
//! slowed over which cycle windows, which memory modules stall or
//! fail-stop, how often a link eats a word, which synchronization
//! processors die — that the network, fabric and memory models consult
//! every cycle.
//!
//! Two properties are load-bearing:
//!
//! 1. **Determinism.** The same seed always yields the same plan, and
//!    per-event decisions (word drops, lost sync updates) are pure
//!    hashes of the event's identity — never draws from shared mutable
//!    RNG state — so they cannot depend on model call order. The same
//!    seed therefore replays the same degraded run bit-for-bit,
//!    preserving the FIFO-determinism contract of
//!    `cedar_sim::event::EventQueue`.
//! 2. **Recoverability.** Transient faults (drops, stalls, stuck
//!    windows) heal with time, so a bounded retry with backoff always
//!    makes progress; permanent faults (module fail-stop, dead sync
//!    processors) are either routed around ([`FaultPlan::fallback_module`],
//!    modelling standby-module reconfiguration) or surfaced to the
//!    watchdog as an explicit deadlock diagnostic.

use cedar_sim::rng::SplitMix64;

use crate::error::CedarError;

/// Which of the two unidirectional networks a fault lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetDirection {
    /// CE → memory (requests).
    Forward,
    /// Memory → CE (replies).
    Reverse,
}

impl NetDirection {
    fn tag(self) -> u64 {
        match self {
            NetDirection::Forward => 0x0F0F,
            NetDirection::Reverse => 0xF0F0,
        }
    }
}

/// The machine geometry a plan is generated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineShape {
    /// Crossbar radix of each network switch.
    pub radix: usize,
    /// Switch stages per network.
    pub stages: usize,
    /// Network positions (`radix ^ stages`).
    pub ports: usize,
    /// Interleaved memory modules.
    pub modules: usize,
}

impl MachineShape {
    /// The production Cedar geometry: 8×8 switches, 2 stages, 64
    /// ports, 32 memory modules.
    #[must_use]
    pub fn cedar() -> Self {
        MachineShape {
            radix: 8,
            stages: 2,
            ports: 64,
            modules: 32,
        }
    }

    fn switches_per_stage(&self) -> usize {
        self.ports / self.radix
    }
}

/// A seeded fault-injection recipe: rates and counts that
/// [`FaultPlan::generate`] expands deterministically into concrete
/// fault events.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every derived fault and per-event decision flows
    /// from it.
    pub seed: u64,
    /// Number of switch outputs stuck (fully blocked) for one window.
    pub stuck_outputs: u32,
    /// Length in network cycles of each stuck window.
    pub stuck_window_cycles: u64,
    /// Number of switch outputs permanently slowed.
    pub slow_outputs: u32,
    /// A slowed output transmits only one cycle in `slow_period`.
    pub slow_period: u64,
    /// Probability that a link traversal loses a single-word packet.
    pub link_drop_prob: f64,
    /// Number of memory modules that stall (stop serving) for one
    /// window, letting congestion tree-saturate upstream.
    pub module_stalls: u32,
    /// Length in network cycles of each module stall.
    pub stall_window_cycles: u64,
    /// Number of memory modules that fail-stop partway through the
    /// run; traffic re-targets their fallback module on retry.
    pub failed_modules: u32,
    /// Upper bound (exclusive) on the cycle at which fail-stop events
    /// occur. Tighten this so short experiments still see failures.
    pub fail_by_cycle: u64,
    /// Probability that a synchronization instruction's update is lost
    /// (executed by the module's sync processor but never committed).
    pub sync_lost_prob: f64,
    /// Modules whose synchronization processor is dead: every sync
    /// update against them is lost. The barrier-deadlock injection.
    pub dead_sync_modules: Vec<usize>,
}

impl FaultConfig {
    /// No faults at all; [`FaultPlan::is_benign`] will be true.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            stuck_outputs: 0,
            stuck_window_cycles: 0,
            slow_outputs: 0,
            slow_period: 1,
            link_drop_prob: 0.0,
            module_stalls: 0,
            stall_window_cycles: 0,
            failed_modules: 0,
            fail_by_cycle: WINDOW_HORIZON,
            sync_lost_prob: 0.0,
            dead_sync_modules: Vec::new(),
        }
    }

    /// Lossy links only: each single-word link traversal is lost with
    /// probability `p`. The workhorse of the degraded Table-2 sweep.
    #[must_use]
    pub fn link_noise(seed: u64, p: f64) -> Self {
        FaultConfig {
            link_drop_prob: p,
            ..FaultConfig::none(seed)
        }
    }

    /// A broadly degraded machine: a few stuck and slowed switch
    /// outputs, lossy links, stalling modules and occasional lost sync
    /// updates — everything transient or recoverable.
    #[must_use]
    pub fn degraded(seed: u64, drop_prob: f64) -> Self {
        FaultConfig {
            stuck_outputs: 2,
            stuck_window_cycles: 2_000,
            slow_outputs: 2,
            slow_period: 4,
            link_drop_prob: drop_prob,
            module_stalls: 2,
            stall_window_cycles: 2_000,
            sync_lost_prob: drop_prob,
            ..FaultConfig::none(seed)
        }
    }

    /// The barrier-deadlock injection: the synchronization processor
    /// of `module` is dead, so no update against it ever commits.
    #[must_use]
    pub fn dead_sync_processor(seed: u64, module: usize) -> Self {
        FaultConfig {
            dead_sync_modules: vec![module],
            ..FaultConfig::none(seed)
        }
    }
}

/// One switch output blocked over a cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StuckOutput {
    dir: NetDirection,
    stage: usize,
    switch: usize,
    port: usize,
    from: u64,
    until: u64,
}

/// One switch output that transmits only every `period` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlowOutput {
    dir: NetDirection,
    stage: usize,
    switch: usize,
    port: usize,
    period: u64,
}

/// One memory module out of service over a cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ModuleStall {
    module: usize,
    from: u64,
    until: u64,
}

/// A concrete, fully deterministic fault schedule.
///
/// Generated once from a [`FaultConfig`] and then consulted by the
/// models through pure `&self` queries — the plan carries no mutable
/// state, which is what makes degraded runs replayable.
///
/// # Examples
///
/// ```
/// use cedar_faults::plan::{FaultConfig, FaultPlan, MachineShape};
///
/// let plan = FaultPlan::generate(
///     &FaultConfig::link_noise(42, 0.01),
///     &MachineShape::cedar(),
/// ).unwrap();
/// let again = FaultPlan::generate(
///     &FaultConfig::link_noise(42, 0.01),
///     &MachineShape::cedar(),
/// ).unwrap();
/// assert_eq!(plan, again); // same seed, same schedule
/// assert!(!plan.is_benign());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    shape: MachineShape,
    stuck: Vec<StuckOutput>,
    slow: Vec<SlowOutput>,
    link_drop_prob: f64,
    stalls: Vec<ModuleStall>,
    /// `(module, fail cycle)` fail-stop events.
    failed: Vec<(usize, u64)>,
    sync_lost_prob: f64,
    dead_sync_modules: Vec<usize>,
}

/// Cycle horizon over which generated windows are scattered. Windows
/// repeat modulo this horizon so arbitrarily long runs still see them.
const WINDOW_HORIZON: u64 = 1 << 16;

impl FaultPlan {
    /// Expands a configuration into a concrete schedule.
    ///
    /// # Errors
    ///
    /// Rejects probabilities outside `[0, 1]`, a zero `slow_period`,
    /// fault counts exceeding the machine shape, and dead-sync modules
    /// out of range.
    pub fn generate(cfg: &FaultConfig, shape: &MachineShape) -> Result<FaultPlan, CedarError> {
        if !(0.0..=1.0).contains(&cfg.link_drop_prob) {
            return Err(CedarError::invalid(
                "faults.link_drop_prob",
                format!("probability must be in [0, 1], got {}", cfg.link_drop_prob),
            ));
        }
        if !(0.0..=1.0).contains(&cfg.sync_lost_prob) {
            return Err(CedarError::invalid(
                "faults.sync_lost_prob",
                format!("probability must be in [0, 1], got {}", cfg.sync_lost_prob),
            ));
        }
        if cfg.slow_period == 0 {
            return Err(CedarError::invalid(
                "faults.slow_period",
                "a slowed output must still transmit sometimes; period must be nonzero",
            ));
        }
        let outputs_per_net = shape.stages * shape.switches_per_stage() * shape.radix;
        let budget = (2 * outputs_per_net) as u32;
        if cfg.stuck_outputs + cfg.slow_outputs > budget {
            return Err(CedarError::invalid(
                "faults.stuck_outputs",
                format!(
                    "{} faulted outputs exceed the machine's {budget} switch outputs",
                    cfg.stuck_outputs + cfg.slow_outputs
                ),
            ));
        }
        if cfg.failed_modules as usize >= shape.modules {
            return Err(CedarError::invalid(
                "faults.failed_modules",
                format!(
                    "at least one of the {} modules must survive, got {} failures",
                    shape.modules, cfg.failed_modules
                ),
            ));
        }
        if let Some(&m) = cfg.dead_sync_modules.iter().find(|&&m| m >= shape.modules) {
            return Err(CedarError::invalid(
                "faults.dead_sync_modules",
                format!("module {m} out of range (machine has {})", shape.modules),
            ));
        }

        // Independent derived streams so adding one fault class never
        // perturbs the placement of another.
        let mut root = SplitMix64::new(cfg.seed);
        let mut stuck_rng = root.split();
        let mut slow_rng = root.split();
        let mut stall_rng = root.split();
        let mut fail_rng = root.split();

        let pick_output = |rng: &mut SplitMix64| {
            let dir = if rng.next_bool(0.5) {
                NetDirection::Forward
            } else {
                NetDirection::Reverse
            };
            let stage = rng.next_below(shape.stages as u64) as usize;
            let switch = rng.next_below(shape.switches_per_stage() as u64) as usize;
            let port = rng.next_below(shape.radix as u64) as usize;
            (dir, stage, switch, port)
        };

        let stuck = (0..cfg.stuck_outputs)
            .map(|_| {
                let (dir, stage, switch, port) = pick_output(&mut stuck_rng);
                let from = stuck_rng.next_below(WINDOW_HORIZON);
                StuckOutput {
                    dir,
                    stage,
                    switch,
                    port,
                    from,
                    until: from + cfg.stuck_window_cycles,
                }
            })
            .collect();
        let slow = (0..cfg.slow_outputs)
            .map(|_| {
                let (dir, stage, switch, port) = pick_output(&mut slow_rng);
                SlowOutput {
                    dir,
                    stage,
                    switch,
                    port,
                    period: cfg.slow_period,
                }
            })
            .collect();
        let stalls = (0..cfg.module_stalls)
            .map(|_| {
                let module = stall_rng.next_below(shape.modules as u64) as usize;
                let from = stall_rng.next_below(WINDOW_HORIZON);
                ModuleStall {
                    module,
                    from,
                    until: from + cfg.stall_window_cycles,
                }
            })
            .collect();
        let mut failed: Vec<(usize, u64)> = Vec::new();
        while failed.len() < cfg.failed_modules as usize {
            let module = fail_rng.next_below(shape.modules as u64) as usize;
            if failed.iter().all(|&(m, _)| m != module) {
                failed.push((module, fail_rng.next_below(cfg.fail_by_cycle.max(1))));
            }
        }

        Ok(FaultPlan {
            seed: cfg.seed,
            shape: *shape,
            stuck,
            slow,
            link_drop_prob: cfg.link_drop_prob,
            stalls,
            failed,
            sync_lost_prob: cfg.sync_lost_prob,
            dead_sync_modules: cfg.dead_sync_modules.clone(),
        })
    }

    /// The master seed the plan was generated from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The machine shape the plan was generated against.
    #[must_use]
    pub fn shape(&self) -> &MachineShape {
        &self.shape
    }

    /// Whether the plan injects nothing at all. Models treat a benign
    /// plan exactly like no plan, so healthy baselines stay
    /// bit-identical to runs without fault wiring.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.stuck.is_empty()
            && self.slow.is_empty()
            && self.link_drop_prob == 0.0
            && self.stalls.is_empty()
            && self.failed.is_empty()
            && self.sync_lost_prob == 0.0
            && self.dead_sync_modules.is_empty()
    }

    /// Whether the plan contains any fault a retry cannot eventually
    /// get past without rerouting (fail-stop modules, dead sync
    /// processors).
    #[must_use]
    pub fn has_permanent_faults(&self) -> bool {
        !self.failed.is_empty() || !self.dead_sync_modules.is_empty()
    }

    /// Whether the output `port` of `switch` at `stage` may transmit at
    /// `cycle`. Stuck windows block entirely (repeating modulo the
    /// generation horizon); slowed outputs pass one cycle in `period`.
    #[must_use]
    pub fn output_blocked(
        &self,
        dir: NetDirection,
        stage: usize,
        switch: usize,
        port: usize,
        cycle: u64,
    ) -> bool {
        let phase = cycle % WINDOW_HORIZON;
        if self.stuck.iter().any(|s| {
            s.dir == dir
                && s.stage == stage
                && s.switch == switch
                && s.port == port
                && phase >= s.from
                && phase < s.until
        }) {
            return true;
        }
        self.slow.iter().any(|s| {
            s.dir == dir
                && s.stage == stage
                && s.switch == switch
                && s.port == port
                && !cycle.is_multiple_of(s.period)
        })
    }

    /// Whether the link traversal of a single-word packet identified by
    /// `packet_id` over output `(stage, switch, port)` at `cycle` loses
    /// the word. Pure hash of the event identity: retries at later
    /// cycles roll fresh, independent outcomes.
    #[must_use]
    pub fn drops_word(
        &self,
        dir: NetDirection,
        stage: usize,
        switch: usize,
        port: usize,
        packet_id: u64,
        cycle: u64,
    ) -> bool {
        if self.link_drop_prob <= 0.0 {
            return false;
        }
        let h = event_hash(
            self.seed ^ dir.tag(),
            &[stage as u64, switch as u64, port as u64, packet_id, cycle],
        );
        to_unit(h) < self.link_drop_prob
    }

    /// Whether `module` is stalled (not receiving or serving) at
    /// `cycle` — transient; its buffer backlog tree-saturates upstream.
    #[must_use]
    pub fn module_stalled(&self, module: usize, cycle: u64) -> bool {
        let phase = cycle % WINDOW_HORIZON;
        self.stalls
            .iter()
            .any(|s| s.module == module && phase >= s.from && phase < s.until)
    }

    /// Whether `module` has fail-stopped at or before `cycle` —
    /// permanent; arrivals are discarded and sources must re-target
    /// [`fallback_module`](Self::fallback_module).
    #[must_use]
    pub fn module_failed(&self, module: usize, cycle: u64) -> bool {
        self.failed
            .iter()
            .any(|&(m, at)| m == module && cycle >= at)
    }

    /// The standby module serving a failed module's traffic: the next
    /// module (cyclically) that never fails. Models the
    /// reconfiguration that let the real machine run degraded.
    ///
    /// # Panics
    ///
    /// Never panics for plans built through [`generate`]
    /// (which guarantees at least one surviving module).
    ///
    /// [`generate`]: Self::generate
    #[must_use]
    pub fn fallback_module(&self, module: usize) -> usize {
        let n = self.shape.modules;
        (1..=n)
            .map(|step| (module + step) % n)
            .find(|&m| self.failed.iter().all(|&(f, _)| f != m))
            .expect("generate() guarantees a surviving module")
    }

    /// Whether the `op_index`-th synchronization instruction overall,
    /// executed at `module` against word `cell`, loses its update (the
    /// sync processor computes the reply but the memory write never
    /// commits). Always true for dead sync processors.
    #[must_use]
    pub fn sync_update_lost(&self, module: usize, cell: u64, op_index: u64) -> bool {
        if self.dead_sync_modules.contains(&module) {
            return true;
        }
        if self.sync_lost_prob <= 0.0 {
            return false;
        }
        let h = event_hash(self.seed ^ 0x5C5C, &[module as u64, cell, op_index]);
        to_unit(h) < self.sync_lost_prob
    }
}

/// A bounded retry schedule with exponential backoff, shared by the
/// fabric's request timeouts and the runtime's sync-operation retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry, in cycles of the caller's clock.
    pub base_delay_cycles: u64,
    /// Maximum retries after the initial attempt.
    pub max_retries: u32,
    /// Cap on any single backoff delay.
    pub max_delay_cycles: u64,
}

impl RetryPolicy {
    /// The fabric default: first retry after 4096 network cycles
    /// (far beyond any congested round trip, so healthy requests are
    /// never duplicated), doubling up to 8 retries.
    #[must_use]
    pub fn fabric() -> Self {
        RetryPolicy {
            base_delay_cycles: 4096,
            max_retries: 8,
            max_delay_cycles: 1 << 16,
        }
    }

    /// The sync-operation default: first retry after one spin-poll
    /// interval, doubling up to 8 retries.
    #[must_use]
    pub fn sync() -> Self {
        RetryPolicy {
            base_delay_cycles: 26,
            max_retries: 8,
            max_delay_cycles: 1 << 12,
        }
    }

    /// The backoff delay before retry number `attempt` (1-based):
    /// `base * 2^(attempt-1)`, saturating at the cap.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_delay_cycles
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32));
        shifted.min(self.max_delay_cycles)
    }

    /// Total delay across all permitted retries — an upper bound on
    /// how long a caller waits before giving up.
    #[must_use]
    pub fn total_delay(&self) -> u64 {
        (1..=self.max_retries).map(|a| self.delay(a)).sum()
    }

    /// [`delay`](Self::delay) with deterministic seeded jitter: the
    /// exponential backoff value ±25%, derived purely from
    /// `(seed, attempt)`. When a fleet of restarting workers shares one
    /// policy, distinct seeds (worker slot, incarnation) de-correlate
    /// their restart instants — the thundering-herd guard — while the
    /// same seed always reproduces the same schedule, preserving
    /// replayability.
    ///
    /// The jittered delay is clamped to `[1, max_delay_cycles]`, so
    /// jitter never turns a backoff into an immediate retry.
    #[must_use]
    pub fn jittered_delay(&self, attempt: u32, seed: u64) -> u64 {
        let base = self.delay(attempt);
        if base == 0 {
            return 0;
        }
        let h = event_hash(seed ^ 0x4A17, &[u64::from(attempt)]);
        // ±25%: subtract a fixed quarter, add back [0, half].
        let span = base / 2 + 1;
        (base - base / 4 + h % span).clamp(1, self.max_delay_cycles)
    }
}

/// SplitMix64-style stateless mixing of an event identity.
pub(crate) fn event_hash(seed: u64, tags: &[u64]) -> u64 {
    let mut h = seed;
    for &t in tags {
        h = SplitMix64::new(h ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
    }
    h
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl cedar_snap::Snapshot for NetDirection {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u8(match self {
            NetDirection::Forward => 0,
            NetDirection::Reverse => 1,
        });
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(NetDirection::Forward),
            1 => Ok(NetDirection::Reverse),
            _ => Err(cedar_snap::SnapError::Invalid("net direction tag")),
        }
    }
}

cedar_snap::snapshot_struct!(MachineShape {
    radix,
    stages,
    ports,
    modules,
});
cedar_snap::snapshot_struct!(FaultConfig {
    seed,
    stuck_outputs,
    stuck_window_cycles,
    slow_outputs,
    slow_period,
    link_drop_prob,
    module_stalls,
    stall_window_cycles,
    failed_modules,
    fail_by_cycle,
    sync_lost_prob,
    dead_sync_modules,
});
cedar_snap::snapshot_struct!(StuckOutput {
    dir,
    stage,
    switch,
    port,
    from,
    until,
});
cedar_snap::snapshot_struct!(SlowOutput {
    dir,
    stage,
    switch,
    port,
    period,
});
cedar_snap::snapshot_struct!(ModuleStall {
    module,
    from,
    until,
});
// The plan's fault decisions are pure hashes of event identity, so
// restoring these tables reproduces every future decision exactly.
cedar_snap::snapshot_struct!(FaultPlan {
    seed,
    shape,
    stuck,
    slow,
    link_drop_prob,
    stalls,
    failed,
    sync_lost_prob,
    dead_sync_modules,
});
cedar_snap::snapshot_struct!(RetryPolicy {
    base_delay_cycles,
    max_retries,
    max_delay_cycles,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> MachineShape {
        MachineShape::cedar()
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::degraded(7, 0.01);
        let a = FaultPlan::generate(&cfg, &shape()).unwrap();
        let b = FaultPlan::generate(&cfg, &shape()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_place_faults_differently() {
        let a = FaultPlan::generate(&FaultConfig::degraded(1, 0.01), &shape()).unwrap();
        let b = FaultPlan::generate(&FaultConfig::degraded(2, 0.01), &shape()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn none_is_benign_and_blocks_nothing() {
        let plan = FaultPlan::generate(&FaultConfig::none(5), &shape()).unwrap();
        assert!(plan.is_benign());
        assert!(!plan.has_permanent_faults());
        for cycle in 0..100 {
            assert!(!plan.output_blocked(NetDirection::Forward, 0, 0, 0, cycle));
            assert!(!plan.drops_word(NetDirection::Forward, 0, 0, 0, 1, cycle));
            assert!(!plan.module_stalled(0, cycle));
            assert!(!plan.module_failed(0, cycle));
            assert!(!plan.sync_update_lost(0, 0, cycle));
        }
    }

    #[test]
    fn drop_decisions_are_pure_functions_of_identity() {
        let plan = FaultPlan::generate(&FaultConfig::link_noise(9, 0.5), &shape()).unwrap();
        let a = plan.drops_word(NetDirection::Forward, 1, 3, 2, 77, 1000);
        let b = plan.drops_word(NetDirection::Forward, 1, 3, 2, 77, 1000);
        assert_eq!(a, b, "same event, same outcome");
        // Over many cycles the empirical rate tracks the probability.
        let hits = (0..10_000)
            .filter(|&c| plan.drops_word(NetDirection::Forward, 0, 0, 0, 1, c))
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.05, "drop rate {rate} far from 0.5");
    }

    #[test]
    fn retries_roll_fresh_outcomes() {
        let plan = FaultPlan::generate(&FaultConfig::link_noise(3, 0.5), &shape()).unwrap();
        // A packet dropped at one cycle is not doomed at later cycles.
        let outcomes: Vec<bool> = (0..64)
            .map(|c| plan.drops_word(NetDirection::Reverse, 0, 1, 1, 42, c * 100))
            .collect();
        assert!(outcomes.iter().any(|&d| d) && outcomes.iter().any(|&d| !d));
    }

    #[test]
    fn stuck_windows_block_then_heal() {
        let cfg = FaultConfig {
            stuck_outputs: 1,
            stuck_window_cycles: 100,
            ..FaultConfig::none(11)
        };
        let plan = FaultPlan::generate(&cfg, &shape()).unwrap();
        let s = plan.stuck[0];
        assert!(plan.output_blocked(s.dir, s.stage, s.switch, s.port, s.from));
        assert!(!plan.output_blocked(s.dir, s.stage, s.switch, s.port, s.until));
    }

    #[test]
    fn slow_outputs_pass_periodically() {
        let cfg = FaultConfig {
            slow_outputs: 1,
            slow_period: 4,
            ..FaultConfig::none(13)
        };
        let plan = FaultPlan::generate(&cfg, &shape()).unwrap();
        let s = plan.slow[0];
        let open = (0..100)
            .filter(|&c| !plan.output_blocked(s.dir, s.stage, s.switch, s.port, c))
            .count();
        assert_eq!(open, 25, "one cycle in four passes");
    }

    #[test]
    fn module_failure_is_permanent_and_remapped() {
        let cfg = FaultConfig {
            failed_modules: 1,
            ..FaultConfig::none(17)
        };
        let plan = FaultPlan::generate(&cfg, &shape()).unwrap();
        assert!(plan.has_permanent_faults());
        let (m, at) = plan.failed[0];
        assert!(!plan.module_failed(m, at.saturating_sub(1)));
        assert!(plan.module_failed(m, at));
        assert!(
            plan.module_failed(m, at + 1_000_000),
            "fail-stop is forever"
        );
        let fb = plan.fallback_module(m);
        assert_ne!(fb, m);
        assert!(!plan.module_failed(fb, u64::MAX), "fallback survives");
    }

    #[test]
    fn dead_sync_processor_loses_every_update() {
        let plan = FaultPlan::generate(&FaultConfig::dead_sync_processor(19, 5), &shape()).unwrap();
        for op in 0..100 {
            assert!(plan.sync_update_lost(5, 123, op));
            assert!(!plan.sync_update_lost(6, 123, op), "other modules fine");
        }
    }

    #[test]
    fn generate_rejects_bad_probability() {
        let cfg = FaultConfig::link_noise(1, 1.5);
        let err = FaultPlan::generate(&cfg, &shape()).unwrap_err();
        assert!(matches!(err, CedarError::InvalidConfig { field, .. }
            if field == "faults.link_drop_prob"));
    }

    #[test]
    fn generate_rejects_all_modules_failing() {
        let cfg = FaultConfig {
            failed_modules: 32,
            ..FaultConfig::none(1)
        };
        assert!(FaultPlan::generate(&cfg, &shape()).is_err());
    }

    #[test]
    fn generate_rejects_out_of_range_dead_sync_module() {
        let cfg = FaultConfig::dead_sync_processor(1, 99);
        let err = FaultPlan::generate(&cfg, &shape()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn generate_rejects_zero_slow_period() {
        let cfg = FaultConfig {
            slow_outputs: 1,
            slow_period: 0,
            ..FaultConfig::none(1)
        };
        assert!(FaultPlan::generate(&cfg, &shape()).is_err());
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let p = RetryPolicy {
            base_delay_cycles: 10,
            max_retries: 5,
            max_delay_cycles: 1000,
        };
        assert_eq!(p.delay(1), 10);
        assert_eq!(p.delay(2), 20);
        assert_eq!(p.delay(3), 40);
        assert_eq!(p.delay(20), 1000, "capped");
        assert_eq!(p.total_delay(), 10 + 20 + 40 + 80 + 160);
    }

    #[test]
    fn jittered_backoff_schedule_is_pinned_for_a_fixed_seed() {
        let p = RetryPolicy {
            base_delay_cycles: 100,
            max_retries: 6,
            max_delay_cycles: 10_000,
        };
        // The exact schedule for seed 0xCEDA, pinned: any change to the
        // jitter derivation shows up here as a hard failure, because
        // restart replayability depends on it.
        let schedule: Vec<u64> = (1..=6).map(|a| p.jittered_delay(a, 0xCEDA)).collect();
        assert_eq!(schedule, vec![91, 153, 443, 645, 1725, 3814]);
        // Determinism: the same (seed, attempt) always reproduces.
        let again: Vec<u64> = (1..=6).map(|a| p.jittered_delay(a, 0xCEDA)).collect();
        assert_eq!(schedule, again);
        // De-correlation: a different seed lands elsewhere.
        let other: Vec<u64> = (1..=6).map(|a| p.jittered_delay(a, 0xBEEF)).collect();
        assert_ne!(schedule, other);
        // Bounds: each jittered delay stays within ±25% of the base
        // (and within the cap), so backoff character is preserved.
        for a in 1..=6u32 {
            for seed in 0..64u64 {
                let base = p.delay(a);
                let j = p.jittered_delay(a, seed);
                assert!(j >= base - base / 4 && j <= base + base / 2);
                assert!(j <= p.max_delay_cycles);
            }
        }
        // A capped base still caps the jittered value.
        assert!(p.jittered_delay(20, 7) <= p.max_delay_cycles);
    }

    #[test]
    fn restored_plan_makes_identical_fault_decisions() {
        use cedar_snap::Snapshot;
        let cfg = FaultConfig::degraded(0xCEDA, 0.05);
        let plan = FaultPlan::generate(&cfg, &MachineShape::cedar()).unwrap();
        let bytes = plan.to_snapshot_bytes();
        let restored = FaultPlan::from_snapshot_bytes(&bytes).unwrap();
        // Fault decisions are pure functions of event identity; sample
        // them across directions, ports, cycles and op indices.
        for cycle in (0..200_000u64).step_by(7919) {
            for port in 0..8 {
                for dir in [NetDirection::Forward, NetDirection::Reverse] {
                    assert_eq!(
                        plan.output_blocked(dir, 0, 3, port, cycle),
                        restored.output_blocked(dir, 0, 3, port, cycle)
                    );
                    assert_eq!(
                        plan.drops_word(dir, 1, 2, port, cycle ^ 0x9E37, cycle),
                        restored.drops_word(dir, 1, 2, port, cycle ^ 0x9E37, cycle)
                    );
                }
            }
            for module in 0..32 {
                assert_eq!(
                    plan.module_failed(module, cycle),
                    restored.module_failed(module, cycle)
                );
                assert_eq!(
                    plan.sync_update_lost(module, cycle, cycle / 3),
                    restored.sync_update_lost(module, cycle, cycle / 3)
                );
            }
        }
        assert_eq!(plan.seed(), restored.seed());
        assert_eq!(plan.is_benign(), restored.is_benign());
    }
}
