//! The shared error type of the Cedar reproduction.
//!
//! Constructor paths across the workspace (`cedar_net::topology`,
//! `cedar_core::params`, fabric and cache configuration) validate with
//! [`CedarError`] instead of panicking, so callers — the bench
//! binaries, sweep harnesses, fuzzers — can reject a bad configuration
//! without unwinding. `assert!` remains only for internal invariants
//! that indicate bugs, never for user-supplied configuration.

use std::fmt;

use cedar_sim::watchdog::WatchdogReport;

/// Errors surfaced by the Cedar reproduction's fallible paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CedarError {
    /// A configuration value violated a structural constraint.
    InvalidConfig {
        /// Which parameter was rejected (e.g. `"net.radix"`).
        field: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A retried operation ran out of attempts (e.g. a sync
    /// instruction against a dead synchronization processor).
    RetriesExhausted {
        /// What was being retried.
        what: String,
        /// How many attempts were made.
        attempts: u32,
    },
    /// The simulation watchdog detected no progress (deadlock or
    /// livelock, e.g. a barrier that can never complete).
    Stalled(WatchdogReport),
}

impl CedarError {
    /// Convenience constructor for configuration rejections.
    #[must_use]
    pub fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        CedarError::InvalidConfig {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for CedarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CedarError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration ({field}): {message}")
            }
            CedarError::RetriesExhausted { what, attempts } => {
                write!(f, "{what}: gave up after {attempts} attempts")
            }
            CedarError::Stalled(report) => report.fmt(f),
        }
    }
}

impl std::error::Error for CedarError {}

impl From<WatchdogReport> for CedarError {
    fn from(report: WatchdogReport) -> Self {
        CedarError::Stalled(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = CedarError::invalid("net.radix", "must be a power of two, got 6");
        let msg = e.to_string();
        assert!(msg.contains("net.radix"), "{msg}");
        assert!(msg.contains("power of two"), "{msg}");
    }

    #[test]
    fn watchdog_reports_convert() {
        let report = WatchdogReport {
            context: "barrier".into(),
            stalled_since: 1,
            now: 100,
            budget: 10,
            progress: 3,
            last_span: Some("mem_service".into()),
        };
        let e: CedarError = report.clone().into();
        assert_eq!(e, CedarError::Stalled(report));
        assert!(e.to_string().contains("barrier"));
    }

    #[test]
    fn exhaustion_display() {
        let e = CedarError::RetriesExhausted {
            what: "sync op at cell 10".into(),
            attempts: 8,
        };
        assert!(e.to_string().contains("8 attempts"));
    }
}
