//! `cedar-faults` — deterministic fault injection and degraded-mode
//! support for the Cedar multiprocessor reproduction.
//!
//! The paper studies a healthy machine, but the machine it measures was
//! engineered to *run degraded*: Cedar's omega network shipped as two
//! independent copies per direction, memory modules carried their own
//! synchronization processors, and the performance study's worst
//! behaviours (tree saturation \[Turn93\]) are exactly what a partial
//! failure amplifies. This crate supplies the workspace's fault model:
//!
//! * [`plan`] — seeded, fully deterministic fault schedules
//!   ([`FaultPlan`]) generated from a [`FaultConfig`]: stuck or slowed
//!   switch outputs, lossy links, stalling or fail-stopped memory
//!   modules, and lost synchronization updates. Same seed, same
//!   degraded run — bit for bit.
//! * [`error`] — the shared [`CedarError`] type used by every fallible
//!   constructor and recovery path in the workspace.
//! * [`RetryPolicy`] — bounded exponential backoff shared by the
//!   fabric's request timeouts and the runtime's sync-operation
//!   retries.
//!
//! The models in `cedar-net`, `cedar-mem` and `cedar-core` accept an
//! optional plan; with none attached (or a benign plan) their behaviour
//! is bit-identical to the healthy baseline.
//!
//! # Examples
//!
//! ```
//! use cedar_faults::{FaultConfig, FaultPlan, MachineShape, NetDirection};
//!
//! let plan = FaultPlan::generate(
//!     &FaultConfig::link_noise(0xFA11, 0.05),
//!     &MachineShape::cedar(),
//! )
//! .unwrap();
//! // Per-event decisions are pure functions of the event identity.
//! let d1 = plan.drops_word(NetDirection::Forward, 0, 3, 1, 42, 1000);
//! let d2 = plan.drops_word(NetDirection::Forward, 0, 3, 1, 42, 1000);
//! assert_eq!(d1, d2);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod plan;

pub use cluster::{
    parse_directive, WorkerFault, WorkerFaultConfig, WorkerFaultKind, WorkerFaultPlan,
};
pub use error::CedarError;
pub use plan::{FaultConfig, FaultPlan, MachineShape, NetDirection, RetryPolicy};
