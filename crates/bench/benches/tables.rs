//! Dependency-free benches: one per regenerated table/figure, timing
//! the full regeneration (simulation + analysis) with `std::time`.
//! These are the `cargo bench` face of the experiment harness; the
//! printed tables come from the binaries in `src/bin`.

use std::hint::black_box;
use std::time::Instant;

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f()); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<40} {:>12.3} ms/iter ({iters} iters)", per * 1e3);
}

fn main() {
    bench("table1_rank64_update", 3, cedar_bench::table1::run);
    bench("table2_prefetch_contention", 3, cedar_bench::table2::run);
    bench("table3_perfect_codes", 3, cedar_bench::table3::run);
    bench("table4_manual_codes", 3, cedar_bench::table4::run);
    bench("table5_instability", 3, cedar_bench::table5::run);
    bench("table6_efficiency_bands", 3, cedar_bench::table6::run);
    bench("fig3_efficiency_scatter", 3, cedar_bench::fig3::run);
    bench("ppt4_cedar_cg_grid", 3, cedar_bench::ppt4::run_cedar);
    bench("ppt4_cm5_grid", 3, cedar_bench::ppt4::run_cm5);
    bench(
        "ablation_network_buffering",
        3,
        cedar_bench::ablation_network::run,
    );
    bench("ablation_vm_trfd", 3, cedar_bench::ablation_vm::run);
    bench(
        "ablation_barriers_flo52",
        3,
        cedar_bench::ablation_barriers::run,
    );
    bench("ablation_loops_dyfesm", 3, cedar_bench::ablation_loops::run);
    bench("ablation_io_bdna", 3, cedar_bench::ablation_io::run);
    bench("ablation_hotspot", 3, cedar_bench::hotspot::run);
    bench("loop_overheads", 3, cedar_bench::overheads::run);
    bench("degraded_sweep_point", 3, || {
        cedar_bench::degraded::measure(0.02, 8)
    });
}
