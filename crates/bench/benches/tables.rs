//! Criterion benches: one per regenerated table/figure, timing the
//! full regeneration (simulation + analysis). These are the `cargo
//! bench` face of the experiment harness; the printed tables come
//! from the binaries in `src/bin`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_rank64_update");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::table1::run())));
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_prefetch_contention");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::table2::run())));
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_perfect_codes");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::table3::run())));
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_manual_codes");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::table4::run())));
    g.finish();
}

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_instability");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::table5::run())));
    g.finish();
}

fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_efficiency_bands");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::table6::run())));
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_efficiency_scatter");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::fig3::run())));
    g.finish();
}

fn bench_ppt4(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppt4_scalability");
    g.sample_size(10);
    g.bench_function("cedar_cg_grid", |b| {
        b.iter(|| black_box(cedar_bench::ppt4::run_cedar()))
    });
    g.bench_function("cm5_grid", |b| b.iter(|| black_box(cedar_bench::ppt4::run_cm5())));
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("network_buffering", |b| {
        b.iter(|| black_box(cedar_bench::ablation_network::run()))
    });
    g.bench_function("vm_trfd", |b| {
        b.iter(|| black_box(cedar_bench::ablation_vm::run()))
    });
    g.bench_function("barriers_flo52", |b| {
        b.iter(|| black_box(cedar_bench::ablation_barriers::run()))
    });
    g.bench_function("loops_dyfesm", |b| {
        b.iter(|| black_box(cedar_bench::ablation_loops::run()))
    });
    g.bench_function("io_bdna", |b| {
        b.iter(|| black_box(cedar_bench::ablation_io::run()))
    });
    g.bench_function("hotspot", |b| {
        b.iter(|| black_box(cedar_bench::hotspot::run()))
    });
    g.finish();
}

fn bench_overheads(c: &mut Criterion) {
    let mut g = c.benchmark_group("loop_overheads");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(cedar_bench::overheads::run())));
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_table5,
    bench_table6,
    bench_fig3,
    bench_ppt4,
    bench_ablations,
    bench_overheads
);
criterion_main!(tables);
