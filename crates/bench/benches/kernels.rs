//! Criterion microbenches of the functional numerics: the real
//! computations behind the simulated kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cedar_kernels::banded::Banded;
use cedar_kernels::cg::{self, Penta};
use cedar_kernels::rank_update;
use cedar_kernels::tridiag::Tridiagonal;

fn bench_rank_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank64_update_compute");
    g.sample_size(10);
    for n in [64usize, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let u = vec![0.5; n * rank_update::RANK];
            let v = vec![0.25; n * rank_update::RANK];
            let mut a = vec![0.0; n * n];
            b.iter(|| {
                rank_update::compute(&mut a, &u, &v, n);
                black_box(a[0])
            });
        });
    }
    g.finish();
}

fn bench_tridiag(c: &mut Criterion) {
    c.bench_function("tridiag_matvec_64k", |b| {
        let n = 65_536;
        let a = Tridiagonal::new(vec![-1.0; n - 1], vec![2.0; n], vec![-1.0; n - 1]);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        b.iter(|| {
            a.matvec(&x, &mut y);
            black_box(y[n / 2])
        });
    });
}

fn bench_banded(c: &mut Criterion) {
    let mut g = c.benchmark_group("banded_matvec_16k");
    for bw in [3usize, 11] {
        g.bench_with_input(BenchmarkId::from_parameter(bw), &bw, |b, &bw| {
            let n = 16_384;
            let a = Banded::from_fn(n, bw, |i, d| 1.0 / (1 + i + d) as f64);
            let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let mut y = vec![0.0; n];
            b.iter(|| {
                a.matvec(&x, &mut y);
                black_box(y[0])
            });
        });
    }
    g.finish();
}

fn bench_cg_solve(c: &mut Criterion) {
    c.bench_function("cg_solve_poisson_32x32", |b| {
        let a = Penta::laplacian(32);
        let rhs = vec![1.0; a.n()];
        b.iter(|| black_box(cg::solve(&a, &rhs, 1e-8, 4000).iterations));
    });
}

criterion_group!(kernels, bench_rank_update, bench_tridiag, bench_banded, bench_cg_solve);
criterion_main!(kernels);
