//! Dependency-free microbenches of the functional numerics: the real
//! computations behind the simulated kernels.

use std::hint::black_box;
use std::time::Instant;

use cedar_kernels::banded::Banded;
use cedar_kernels::cg::{self, Penta};
use cedar_kernels::rank_update;
use cedar_kernels::tridiag::Tridiagonal;

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f()); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<40} {:>12.3} ms/iter ({iters} iters)", per * 1e3);
}

fn main() {
    for n in [64usize, 128] {
        let u = vec![0.5; n * rank_update::RANK];
        let v = vec![0.25; n * rank_update::RANK];
        let mut a = vec![0.0; n * n];
        bench(&format!("rank64_update_compute_n{n}"), 20, || {
            rank_update::compute(&mut a, &u, &v, n);
            a[0]
        });
    }

    {
        let n = 65_536;
        let a = Tridiagonal::new(vec![-1.0; n - 1], vec![2.0; n], vec![-1.0; n - 1]);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        bench("tridiag_matvec_64k", 50, || {
            a.matvec(&x, &mut y);
            y[n / 2]
        });
    }

    for bw in [3usize, 11] {
        let n = 16_384;
        let a = Banded::from_fn(n, bw, |i, d| 1.0 / (1 + i + d) as f64);
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut y = vec![0.0; n];
        bench(&format!("banded_matvec_16k_bw{bw}"), 50, || {
            a.matvec(&x, &mut y);
            y[0]
        });
    }

    {
        let a = Penta::laplacian(32);
        let rhs = vec![1.0; a.n()];
        bench("cg_solve_poisson_32x32", 10, || {
            cg::solve(&a, &rhs, 1e-8, 4000).iterations
        });
    }
}
