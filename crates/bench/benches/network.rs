//! Dependency-free microbenches of the network substrate itself: raw
//! omega step rate, round-trip fabric throughput (healthy and
//! degraded), and the cost of one measured memory profile.

use std::hint::black_box;
use std::time::Instant;

use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::config::NetworkConfig;
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
use cedar_net::network::OmegaNetwork;
use cedar_net::packet::Packet;

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f()); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name:<40} {:>12.3} ms/iter ({iters} iters)", per * 1e3);
}

fn main() {
    let mut idle = OmegaNetwork::new(NetworkConfig::cedar());
    bench("omega_idle_step_x1000", 100, || {
        for _ in 0..1000 {
            idle.step();
        }
        idle.now()
    });

    let mut loaded = OmegaNetwork::new(NetworkConfig::cedar());
    let mut id = 0u64;
    bench("omega_loaded_step_x1000", 100, || {
        let mut delivered = 0usize;
        for _ in 0..1000 {
            for src in 0..32 {
                let _ = loaded.try_inject(Packet::request(src, (src * 7 + 3) % 64, id));
                id += 1;
            }
            loaded.step();
            delivered += loaded.drain_delivered().len();
        }
        delivered
    });

    for ces in [8usize, 32] {
        bench(&format!("fabric_prefetch_experiment_{ces}ces"), 5, || {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.run_prefetch_experiment(ces, PrefetchTraffic::compiler_default(4), 8_000_000)
        });
    }

    let plan = FaultPlan::generate(&FaultConfig::degraded(0xCEDA, 0.02), &MachineShape::cedar())
        .expect("valid degraded preset");
    bench("fabric_degraded_experiment_8ces", 5, || {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        fabric.attach_faults(plan.clone(), RetryPolicy::fabric());
        fabric.run_prefetch_experiment(8, PrefetchTraffic::compiler_default(4), 8_000_000)
    });
}
