//! Criterion microbenches of the network substrate itself: raw omega
//! step rate, round-trip fabric throughput, and the cost of one
//! measured memory profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cedar_net::config::NetworkConfig;
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
use cedar_net::network::OmegaNetwork;
use cedar_net::packet::Packet;

fn bench_omega_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("omega_network");
    g.bench_function("idle_step", |b| {
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        b.iter(|| {
            net.step();
            black_box(net.now())
        });
    });
    g.bench_function("loaded_step", |b| {
        let mut net = OmegaNetwork::new(NetworkConfig::cedar());
        let mut id = 0u64;
        b.iter(|| {
            for src in 0..32 {
                let _ = net.try_inject(Packet::request(src, (src * 7 + 3) % 64, id));
                id += 1;
            }
            net.step();
            black_box(net.drain_delivered().len())
        });
    });
    g.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("roundtrip_fabric");
    g.sample_size(10);
    for ces in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("prefetch_experiment", ces), &ces, |b, &ces| {
            b.iter(|| {
                let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
                black_box(fabric.run_prefetch_experiment(
                    ces,
                    PrefetchTraffic::compiler_default(4),
                    8_000_000,
                ))
            });
        });
    }
    g.finish();
}

criterion_group!(network, bench_omega_step, bench_fabric);
criterion_main!(network);
