//! PPT4 (§4.3): CG scalability on Cedar versus the CM-5's banded
//! matrix-vector products.

use cedar_baselines::cm5::Cm5Model;
use cedar_kernels::cg;
use cedar_metrics::bands::{classify, PerfBand};
use cedar_metrics::ppt::{ppt4, Ppt4Verdict, ScalabilityPoint};

use crate::paper_machine;

/// Processor counts of the Cedar sweep ("varying the number of
/// processors from 2 to 32").
pub const CEDAR_PROCS: [usize; 5] = [2, 4, 8, 16, 32];

/// Problem sizes of the Cedar sweep (1K ≤ N ≤ 172K).
pub const CEDAR_SIZES: [usize; 6] = [1_000, 4_000, 10_000, 16_000, 48_000, 172_000];

/// One Cedar grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CedarCell {
    /// Processors used.
    pub processors: usize,
    /// Problem size.
    pub n: usize,
    /// Achieved MFLOPS per CG iteration.
    pub mflops: f64,
    /// Speedup over the serial scalar version.
    pub speedup: f64,
    /// Performance band.
    pub band: PerfBand,
}

/// Regenerates the Cedar CG grid.
#[must_use]
pub fn run_cedar() -> Vec<CedarCell> {
    let mut sys = paper_machine();
    let mut cells = Vec::new();
    for &p in &CEDAR_PROCS {
        for &n in &CEDAR_SIZES {
            let report = cg::simulate_iteration(&mut sys, n, p);
            let speedup = cg::speedup(&mut sys, n, p);
            cells.push(CedarCell {
                processors: p,
                n,
                mflops: report.mflops,
                speedup,
                band: classify(speedup, p),
            });
        }
    }
    cells
}

/// The PPT4 verdict over the Cedar grid.
#[must_use]
pub fn cedar_verdict() -> Ppt4Verdict {
    let cells = run_cedar();
    let points: Vec<ScalabilityPoint> = cells
        .iter()
        .map(|c| ScalabilityPoint {
            processors: c.processors,
            problem_size: c.n,
            speedup: c.speedup,
        })
        .collect();
    let rates: Vec<f64> = cells.iter().map(|c| c.mflops).collect();
    ppt4(&points, &rates)
}

/// One CM-5 grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cm5Cell {
    /// Nodes used.
    pub processors: usize,
    /// Band width of the matrix.
    pub bandwidth: usize,
    /// Problem size.
    pub n: usize,
    /// Achieved MFLOPS.
    pub mflops: f64,
    /// Performance band.
    pub band: PerfBand,
}

/// Regenerates the CM-5 comparison grid.
#[must_use]
pub fn run_cm5() -> Vec<Cm5Cell> {
    let m = Cm5Model::paper();
    let mut cells = Vec::new();
    for &p in &[32usize, 256, 512] {
        for &bw in &[3usize, 11] {
            for &n in &[16_384usize, 65_536, 262_144] {
                cells.push(Cm5Cell {
                    processors: p,
                    bandwidth: bw,
                    n,
                    mflops: m.matvec_mflops(n, bw, p),
                    band: m.band(n, bw, p),
                });
            }
        }
    }
    cells
}

/// Prints both sweeps and the conclusions.
pub fn print() {
    println!("PPT4: CG scalability on Cedar (speedup band per (P, N) cell)");
    print!("{:>6}", "P\\N");
    for n in CEDAR_SIZES {
        print!(" {n:>10}");
    }
    println!();
    let cells = run_cedar();
    for &p in &CEDAR_PROCS {
        print!("{p:>6}");
        for &n in &CEDAR_SIZES {
            let cell = cells
                .iter()
                .find(|c| c.processors == p && c.n == n)
                .expect("cell exists");
            let tag = match cell.band {
                PerfBand::High => 'H',
                PerfBand::Intermediate => 'I',
                PerfBand::Unacceptable => 'U',
            };
            print!(" {:>6.1}/{tag:<2} ", cell.mflops);
        }
        println!();
    }
    let at32: Vec<&CedarCell> = cells.iter().filter(|c| c.processors == 32).collect();
    let lo = at32
        .iter()
        .filter(|c| c.n >= 10_000)
        .map(|c| c.mflops)
        .fold(f64::INFINITY, f64::min);
    let hi = at32.iter().map(|c| c.mflops).fold(0.0, f64::max);
    println!("\n32-CE CG delivers {lo:.0}-{hi:.0} MFLOPS for N in [10K, 172K] (paper: 34-48)");
    println!("paper: high band for N above ~10-16K, intermediate below, none unacceptable\n");

    println!("CM-5 banded matvec (no FP accelerators):");
    println!(
        "{:>5} {:>4} {:>9} {:>9} {:>13}",
        "P", "bw", "N", "MFLOPS", "band"
    );
    for c in run_cm5() {
        println!(
            "{:>5} {:>4} {:>9} {:>9.1} {:>13}",
            c.processors,
            c.bandwidth,
            c.n,
            c.mflops,
            c.band.to_string()
        );
    }
    println!("\npaper: 32-node CM-5 delivers 28-32 MFLOPS (bw 3) and 58-67 (bw 11);");
    println!("       scalable intermediate, never high, at 32/256/512 nodes");
    println!("       per-processor rates of the two systems roughly equivalent");
}
