//! Request-path trace study: the Table-2 fabric experiment run with
//! full telemetry attached.
//!
//! The paper instrumented Cedar with monitoring hardware ("each
//! cluster contains a performance monitoring device") and read the
//! numbers out after the run. This study does the software equivalent:
//! it attaches a [`cedar_obs::Obs`] handle to the round-trip fabric,
//! replays the compiler-default prefetch stream, and exports what the
//! probes saw in two machine-readable formats —
//!
//! * **Chrome trace-event JSON** (`chrome_json`): every request as a
//!   span track walking `request → forward_net → mem_queue →
//!   mem_service → return_net`, with retry/abandon instants
//!   interleaved on the same track. Load it in Perfetto or
//!   `chrome://tracing`; network cycles appear as microseconds.
//! * **Prometheus text exposition** (`prometheus`): the counter and
//!   histogram registry (per-stage blocked cycles, per-module service
//!   counts, conflict stalls, retries) in scrape format.
//!
//! Both outputs are deterministic: the same [`SEED`] yields the same
//! bytes. A second run with telemetry disabled reproduces the
//! un-instrumented experiment bit for bit — the probes are a pure
//! overlay.

use std::fmt::Write as _;

use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::fabric::{
    FabricConfig, PrefetchTraffic, RoundTripFabric, SPAN_FORWARD_NET, SPAN_MEM_QUEUE,
    SPAN_MEM_SERVICE, SPAN_REQUEST, SPAN_RETURN_NET,
};
use cedar_obs::trace::stage_breakdown;
use cedar_obs::{Obs, ObsConfig, TraceEvent};

/// The fault-schedule seed; same convention as the degraded-mode sweep.
pub const SEED: u64 = 0xCEDA;

/// Link-drop rate of the faulted run: high enough that retries appear
/// on the trace, low enough that no request is abandoned.
pub const FAULT_RATE: f64 = 0.02;

/// CEs driving the full study (one Table-2 column).
pub const CES: usize = 8;

/// Network-cycle budget; faulted runs finish well inside it.
pub const MAX_NET_CYCLES: u64 = 16_000_000;

/// The stages of the request path, in path order.
pub const STAGES: [&str; 5] = [
    SPAN_REQUEST,
    SPAN_FORWARD_NET,
    SPAN_MEM_QUEUE,
    SPAN_MEM_SERVICE,
    SPAN_RETURN_NET,
];

/// One telemetry-instrumented run of the fabric experiment.
#[derive(Debug, Clone)]
pub struct TraceStudy {
    /// Active CEs.
    pub ces: usize,
    /// Link-drop rate (0 = healthy).
    pub rate: f64,
    /// The raw span/instant events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Chrome trace-event JSON of `events`.
    pub chrome_json: String,
    /// Prometheus text exposition of the metrics registry.
    pub prometheus: String,
    /// Requests the experiment issued.
    pub requests: u64,
    /// Requests reissued after a timeout.
    pub retries: u64,
    /// Requests abandoned after the retry budget.
    pub failed: u64,
    /// Mean first-word latency, CE cycles.
    pub latency_ce: f64,
}

/// The traffic shape traced: the compiler-default prefetch stream of
/// Table 2 (32-word blocks), kept short so the trace stays readable.
#[must_use]
pub fn traffic() -> PrefetchTraffic {
    PrefetchTraffic::compiler_default(4)
}

/// Runs the fabric experiment with telemetry attached. Rate 0 runs
/// the healthy machine; a positive rate attaches the degraded fault
/// plan (seed [`SEED`]) with the standard retry policy.
///
/// # Panics
///
/// Panics if the run does not complete inside [`MAX_NET_CYCLES`] or
/// the trace fails validation — both would be bugs, not load.
#[must_use]
pub fn run_study(ces: usize, rate: f64) -> TraceStudy {
    let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
    if rate > 0.0 {
        let plan = FaultPlan::generate(&FaultConfig::degraded(SEED, rate), &MachineShape::cedar())
            .expect("study config is valid");
        fabric.attach_faults(plan, RetryPolicy::fabric());
    }
    let obs = Obs::new(ObsConfig::enabled());
    fabric.set_obs(&obs);
    let report = fabric.run_prefetch_experiment(ces, traffic(), MAX_NET_CYCLES);
    assert!(report.completed(), "study traffic must drain");
    obs.validate_trace()
        .expect("traces are balanced by construction");
    let events = obs
        .with(|inner| inner.trace.events().to_vec())
        .expect("obs is enabled");
    TraceStudy {
        ces,
        rate,
        chrome_json: obs.chrome_trace(),
        prometheus: obs.prometheus(),
        events,
        requests: report.request_count(),
        retries: report.retries(),
        failed: report.failed_requests(),
        latency_ce: report.mean_first_word_latency_ce(),
    }
}

/// The healthy full-size study.
#[must_use]
pub fn healthy() -> TraceStudy {
    run_study(CES, 0.0)
}

/// The fault-injected full-size study: same stream, degraded fabric.
#[must_use]
pub fn faulted() -> TraceStudy {
    run_study(CES, FAULT_RATE)
}

/// A two-CE healthy study, small enough for a CI smoke check.
#[must_use]
pub fn smoke() -> TraceStudy {
    run_study(2, 0.0)
}

/// Renders one study's per-stage latency breakdown, path order.
#[must_use]
pub fn breakdown_table(study: &TraceStudy) -> String {
    let stats = stage_breakdown(&study.events);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>9} {:>9} {:>9}  (net cycles)",
        "stage", "spans", "mean", "min", "max"
    );
    for stage in STAGES {
        let Some(s) = stats.get(stage) else {
            continue;
        };
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>9.1} {:>9.0} {:>9.0}",
            stage,
            s.count(),
            s.mean(),
            s.min().unwrap_or(0.0),
            s.max().unwrap_or(0.0),
        );
    }
    out
}

/// Renders the study as text: healthy and faulted breakdowns plus the
/// export sizes. Deterministic: the same [`SEED`] yields this exact
/// string, byte for byte.
#[must_use]
pub fn report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Request-path trace study (seed {SEED:#x}, {CES} CEs, compiler prefetch stream)"
    );
    for (label, study) in [("healthy", healthy()), ("faulted", faulted())] {
        let _ = writeln!(
            out,
            "\n{label} run (drop rate {:.2}): {} requests, {} trace events, {} retries, {} failed",
            study.rate,
            study.requests,
            study.events.len(),
            study.retries,
            study.failed,
        );
        let _ = writeln!(
            out,
            "mean first-word latency {:.1} CE cycles; exports: {} B Chrome JSON, {} B Prometheus",
            study.latency_ce,
            study.chrome_json.len(),
            study.prometheus.len(),
        );
        out.push_str(&breakdown_table(&study));
    }
    let _ = writeln!(
        out,
        "\nload the JSON in Perfetto / chrome://tracing; cycles render as microseconds"
    );
    out
}

/// Prints the study.
pub fn print() {
    print!("{}", report());
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_obs::export::{parse_prometheus, validate_json};
    use cedar_obs::trace::SpanPhase;

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let a = run_study(2, FAULT_RATE);
        let b = run_study(2, FAULT_RATE);
        assert_eq!(a.chrome_json, b.chrome_json);
        assert_eq!(a.prometheus, b.prometheus);
    }

    #[test]
    fn one_request_walks_at_least_four_stages() {
        let study = smoke();
        let tid = study.events[0].tid;
        let begins: Vec<&str> = study
            .events
            .iter()
            .filter(|e| e.tid == tid && e.phase == SpanPhase::Begin)
            .map(|e| e.name)
            .collect();
        assert!(
            begins.len() >= 4,
            "a single request id must cross >= 4 stages, saw {begins:?}"
        );
        assert_eq!(begins, STAGES, "and in path order");
    }

    #[test]
    fn exports_are_machine_readable() {
        let study = smoke();
        validate_json(&study.chrome_json).expect("chrome trace is valid JSON");
        let series = parse_prometheus(&study.prometheus).expect("exposition parses");
        assert!(
            series.keys().any(|k| k.starts_with("cedar_fabric_module")),
            "per-module counters are exported"
        );
        assert!(
            series.keys().any(|k| k.starts_with("cedar_net_fwd_stage")),
            "per-stage network counters are exported"
        );
    }

    #[test]
    fn faulted_run_interleaves_retries_on_request_tracks() {
        let study = faulted();
        assert!(study.retries > 0, "the fault plan must actually bite");
        let retry = study
            .events
            .iter()
            .find(|e| e.name == "retry" && e.phase == SpanPhase::Instant)
            .expect("a retry instant is traced");
        assert!(
            study
                .events
                .iter()
                .any(|e| e.tid == retry.tid && e.name == SPAN_REQUEST),
            "the retry rides the same track as its request span"
        );
    }

    #[test]
    fn disabled_telemetry_reproduces_the_plain_experiment() {
        let mut plain = RoundTripFabric::new(FabricConfig::cedar());
        let baseline = plain.run_prefetch_experiment(2, traffic(), MAX_NET_CYCLES);
        let mut observed = RoundTripFabric::new(FabricConfig::cedar());
        observed.set_obs(&Obs::new(ObsConfig::disabled()));
        let shadowed = observed.run_prefetch_experiment(2, traffic(), MAX_NET_CYCLES);
        assert_eq!(
            baseline.mean_first_word_latency_ce(),
            shadowed.mean_first_word_latency_ce()
        );
        assert_eq!(baseline.words_per_ce_cycle(), shadowed.words_per_ce_cycle());
        assert_eq!(baseline.request_count(), shadowed.request_count());
    }
}
