//! The DYFESM hierarchical-loop ablation (§4.2, \[YaGa93\]).
//!
//! DYFESM's problem is granularity: many small parallel loops whose
//! 30 µs global-memory iteration fetches dominate. The hand
//! optimization "exploit\[s\] the hierarchical SDOALL/CDOALL control
//! structure": schedule whole substructures onto clusters through
//! global memory once, then self-schedule the fine iterations on the
//! concurrency control bus at microsecond cost. This ablation runs the
//! same synthetic fine-grained workload both ways on the real runtime
//! and measures the makespans.

use cedar_runtime::loops::{cdoall, xdoall, Schedule, Work};

use crate::paper_machine;

/// The synthetic DYFESM-like workload: `outer` substructures, each
/// with `inner` fine iterations of `body_cycles` cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Substructures (superelements).
    pub outer: u64,
    /// Fine iterations per substructure.
    pub inner: u64,
    /// Cycles per fine iteration (DYFESM's granularity is small).
    pub body_cycles: f64,
}

impl Workload {
    /// A DYFESM-scale workload: hundreds of small elements.
    #[must_use]
    pub fn dyfesm_like() -> Self {
        Workload {
            outer: 64,
            inner: 128,
            body_cycles: 250.0,
        }
    }
}

/// Both makespans, in CE cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopAblation {
    /// Flat XDOALL over all outer×inner iterations.
    pub flat_cycles: f64,
    /// SDOALL over substructures, CDOALL within each.
    pub nested_cycles: f64,
    /// Improvement factor.
    pub improvement: f64,
}

/// Runs the workload both ways on the simulated runtime. The two
/// scheduling disciplines are independent arms on fresh machines, so
/// they fan out over [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> LoopAblation {
    let w = Workload::dyfesm_like();
    let arms = cedar_exec::run_sweep(vec![false, true], |nested_arm| {
        let mut sys = paper_machine();
        if !nested_arm {
            // Flat: one XDOALL over every fine iteration, each fetch
            // through global memory.
            let flat = xdoall(&mut sys, w.outer * w.inner, Schedule::SelfScheduled, |_| {
                Work::cycles(w.body_cycles)
            });
            return flat.makespan_cycles;
        }

        // Nested: substructures spread over the four clusters (one global
        // scheduling event each); the fine iterations self-schedule on the
        // concurrency bus. The clusters run their shares concurrently.
        let mut cluster_busy = [0.0f64; 4];
        for s in 0..w.outer {
            let cluster = (s % 4) as usize;
            let inner_report = cdoall(&mut sys, cluster, w.inner, Schedule::SelfScheduled, |_| {
                Work::cycles(w.body_cycles)
            });
            cluster_busy[cluster] += inner_report.makespan_cycles;
        }
        let startup = sys.params().xdoall_startup_cycles() as f64;
        let per_substructure_fetch = sys.params().xdoall_fetch_cycles() as f64;
        startup
            + cluster_busy.iter().cloned().fold(0.0, f64::max)
            + (w.outer as f64 / 4.0) * per_substructure_fetch
    });

    LoopAblation {
        flat_cycles: arms[0],
        nested_cycles: arms[1],
        improvement: arms[0] / arms[1],
    }
}

/// Prints the ablation.
pub fn print() {
    let w = Workload::dyfesm_like();
    let a = run();
    println!("DYFESM hierarchical-loop ablation");
    println!(
        "workload: {} substructures x {} iterations of {:.0} cycles",
        w.outer, w.inner, w.body_cycles
    );
    println!(
        "flat XDOALL (30 us fetches):      {:>12.0} cycles ({:.1} ms)",
        a.flat_cycles,
        a.flat_cycles * 170e-9 * 1e3
    );
    println!(
        "SDOALL/CDOALL nest (bus fetches): {:>12.0} cycles ({:.1} ms)",
        a.nested_cycles,
        a.nested_cycles * 170e-9 * 1e3
    );
    println!("improvement: {:.1}x", a.improvement);
    println!("\nThe fine iterations cost a few hundred cycles each; fetching them");
    println!("through global memory costs 177 cycles apiece, while the concurrency");
    println!("bus dispenses them for 4. This is the control-structure half of");
    println!("DYFESM's 40 s -> 31 s hand optimization.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nest_beats_flat_substantially() {
        let a = run();
        assert!(
            a.improvement > 1.3,
            "hierarchical control must win clearly, got {:.2}",
            a.improvement
        );
    }

    #[test]
    fn flat_overhead_dominates_at_this_granularity() {
        let w = Workload::dyfesm_like();
        let pure_work = w.outer as f64 * w.inner as f64 * w.body_cycles / 32.0;
        let a = run();
        assert!(
            a.flat_cycles > 1.5 * pure_work,
            "flat scheduling should add >50% overhead: work {pure_work}, flat {}",
            a.flat_cycles
        );
        assert!(
            a.nested_cycles < 1.5 * pure_work,
            "the nest should stay close to the work: {}",
            a.nested_cycles
        );
    }
}
