//! Table 4: execution times for the manually altered Perfect codes.

use cedar_perfect::model::ExecutionModel;
use cedar_perfect::published::MANUAL;
use cedar_perfect::versions::Version;

use crate::paper_machine;

/// One regenerated row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Code name.
    pub name: &'static str,
    /// Manual time (s).
    pub time: f64,
    /// Improvement over the automatable w/ prefetch, w/o Cedar
    /// synchronization version (the Table 4 definition).
    pub improvement: f64,
    /// Whether the row appears in Table 4 proper.
    pub in_table4: bool,
    /// The optimization the paper describes.
    pub mechanism: &'static str,
}

/// Regenerates Table 4 plus the in-text §4.2 results.
#[must_use]
pub fn run() -> Vec<Row> {
    let mut sys = paper_machine();
    let model = ExecutionModel::calibrate(&mut sys);
    MANUAL
        .iter()
        .map(|m| {
            let improvement = model.code(m.name).map_or(95.1 * 1.02 / m.time, |code| {
                model.time(code, Version::NoSync) / model.time(code, Version::Manual)
            });
            Row {
                name: m.name,
                time: m.time,
                improvement,
                in_table4: m.in_table4,
                mechanism: m.mechanism,
            }
        })
        .collect()
}

/// Prints the regenerated table.
pub fn print() {
    println!("Table 4: Execution times (secs.) for manually altered Perfect codes");
    println!(
        "{:8} {:>8} {:>12}  mechanism",
        "Code", "Time", "Improvement"
    );
    for row in run() {
        let marker = if row.in_table4 { " " } else { "*" };
        println!(
            "{:8} {:>8.1} {:>11.1}{marker}  {}",
            row.name, row.time, row.improvement, row.mechanism
        );
    }
    println!("* in-text §4.2 results (not in the printed Table 4)");
    println!("paper Table 4: ARC2D 68 (2.1), BDNA 70 (1.7), TRFD 7.5 (2.8), QCD 21 (11.4)");
}
