//! Table 3: Cedar execution time, MFLOPS, and speed improvement for
//! the Perfect Benchmarks.

use cedar_perfect::model::ExecutionModel;
use cedar_perfect::published::TABLE3;
use cedar_perfect::versions::Version;

use crate::paper_machine;

/// One regenerated row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Code name.
    pub name: &'static str,
    /// KAP-compiled time (s) and improvement.
    pub kap: (f64, f64),
    /// Automatable time (s) and improvement; `None` for SPICE.
    pub auto: Option<(f64, f64)>,
    /// No-Cedar-synchronization time (s) and % slowdown vs automatable.
    pub nosync: Option<(f64, f64)>,
    /// No-prefetch time (s) and % slowdown vs no-sync.
    pub nopref: Option<(f64, f64)>,
    /// Cedar MFLOPS (automatable).
    pub mflops: f64,
    /// YMP-8 : Cedar MFLOPS ratio (from the published column).
    pub ymp_ratio: f64,
}

/// Regenerates the table from the calibrated forward model.
#[must_use]
pub fn run() -> Vec<Row> {
    let mut sys = paper_machine();
    let model = ExecutionModel::calibrate(&mut sys);
    TABLE3
        .iter()
        .map(|published| {
            let Some(code) = model.code(published.name) else {
                // SPICE: no automatable version; report its KAP level.
                return Row {
                    name: published.name,
                    kap: (published.kap_time, published.kap_improvement),
                    auto: None,
                    nosync: None,
                    nopref: None,
                    mflops: published.mflops,
                    ymp_ratio: published.ymp_ratio,
                };
            };
            let kap = model.time(code, Version::Kap);
            let auto = model.time(code, Version::Automatable);
            let nosync = model.time(code, Version::NoSync);
            let nopref = model.time(code, Version::NoPrefetch);
            Row {
                name: code.name,
                kap: (kap, model.improvement(code, Version::Kap)),
                auto: Some((auto, model.improvement(code, Version::Automatable))),
                nosync: Some((nosync, (nosync / auto - 1.0) * 100.0)),
                nopref: Some((nopref, (nopref / nosync - 1.0) * 100.0)),
                mflops: model.mflops(code, Version::Automatable),
                ymp_ratio: published.ymp_ratio,
            }
        })
        .collect()
}

/// Prints the regenerated table with the paper values inline.
pub fn print() {
    println!("Table 3: Cedar execution time, megaflops, and speed improvement");
    println!(
        "{:8} {:>14} {:>16} {:>16} {:>16} {:>8} {:>10}",
        "Program",
        "KAP s (imp)",
        "Auto s (imp)",
        "NoSync s (%)",
        "NoPref s (%)",
        "MFLOPS",
        "YMP/Cedar"
    );
    for (row, paper) in run().iter().zip(TABLE3.iter()) {
        let auto = row.auto.map_or("      NA       ".to_owned(), |(t, i)| {
            format!("{t:7.0} ({i:5.1})")
        });
        let nosync = row.nosync.map_or("      NA       ".to_owned(), |(t, p)| {
            format!("{t:7.0} ({p:4.0}%)")
        });
        let nopref = row.nopref.map_or("      NA       ".to_owned(), |(t, p)| {
            format!("{t:7.0} ({p:4.0}%)")
        });
        println!(
            "{:8} {:7.0} ({:4.1}) {} {} {} {:8.1} {:>10.2}",
            row.name, row.kap.0, row.kap.1, auto, nosync, nopref, row.mflops, row.ymp_ratio
        );
        println!(
            "  paper: {:7.0} ({:4.1}) {:7} ({:5}) {:7} {:7} {:8.1}",
            paper.kap_time,
            paper.kap_improvement,
            paper.auto_time.map_or("NA".into(), |t| format!("{t:.0}")),
            paper
                .auto_improvement
                .map_or("NA".into(), |i| format!("{i:.1}")),
            paper.nosync_time.map_or("NA".into(), |t| format!("{t:.0}")),
            paper.nopref_time.map_or("NA".into(), |t| format!("{t:.0}")),
            paper.mflops,
        );
    }
}
