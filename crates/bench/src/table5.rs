//! Table 5: instability of the Perfect-code MFLOPS ensembles on
//! Cedar, the Cray YMP/8, and the Cray-1.

use cedar_baselines::cray1;
use cedar_metrics::stability::{exceptions_to_stability, instability};
use cedar_perfect::model::ExecutionModel;

use crate::paper_machine;

/// One machine's instability row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Machine name.
    pub machine: &'static str,
    /// In(13, e) for e = 0, 2, 6.
    pub instability: [f64; 3],
    /// Fewest exclusions reaching workstation-level stability (In ≤ 5).
    pub exceptions_needed: Option<usize>,
}

/// Regenerates the study.
#[must_use]
pub fn run() -> Vec<Row> {
    let mut sys = paper_machine();
    let model = ExecutionModel::calibrate(&mut sys);
    let ensembles: [(&str, Vec<f64>); 3] = [
        ("Cedar", model.cedar_mflops_ensemble()),
        ("Cray YMP/8", model.ymp_mflops_ensemble()),
        ("Cray-1", cray1::rates()),
    ];
    ensembles
        .into_iter()
        .map(|(machine, rates)| Row {
            machine,
            instability: [
                instability(&rates, 0),
                instability(&rates, 2),
                instability(&rates, 6),
            ],
            exceptions_needed: exceptions_to_stability(&rates),
        })
        .collect()
}

/// Prints the regenerated table.
pub fn print() {
    println!("Table 5: Instability for Perfect codes, In(13, e)");
    println!(
        "{:12} {:>9} {:>9} {:>9} {:>18}",
        "Machine", "In(13,0)", "In(13,2)", "In(13,6)", "exceptions to In<=5"
    );
    for row in run() {
        println!(
            "{:12} {:>9.1} {:>9.1} {:>9.1} {:>18}",
            row.machine,
            row.instability[0],
            row.instability[1],
            row.instability[2],
            row.exceptions_needed
                .map_or("never".to_owned(), |e| e.to_string())
        );
    }
    println!();
    println!("paper: raw instabilities are 'terrible' for Cedar and the YMP;");
    println!("       two exceptions suffice on the Cray-1 and Cedar, the YMP needs six");
    println!("       (our Cedar ensemble needs 3 — see EXPERIMENTS.md)");
}
