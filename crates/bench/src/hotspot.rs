//! Synchronization hot-spot study.
//!
//! §2 motivates the memory-based synchronization hardware: "given
//! multistage interconnection networks it is impossible to provide
//! standard lock cycles and very inefficient to perform multiple
//! memory accesses for synchronization." A shared counter or lock cell
//! concentrates traffic on one memory module; as the hot fraction
//! grows, the module serializes, its queue tree-saturates back through
//! the omega network, and *all* traffic suffers — the classic hot-spot
//! collapse. Cedar's Test-And-Operate processors attack exactly this:
//! one network transaction per synchronization instead of a
//! read-modify-write sequence (two or more round trips holding the hot
//! module even longer).

use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};

/// One hot-spot operating point at 32 CEs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotPoint {
    /// Fraction of requests aimed at module 0.
    pub hot_fraction: f64,
    /// Mean first-word latency (CE cycles).
    pub latency: f64,
    /// Mean interarrival (CE cycles).
    pub interarrival: f64,
    /// Delivered bandwidth (words per CE cycle).
    pub bandwidth: f64,
}

/// The hot fractions swept.
pub const FRACTIONS: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.25];

/// Runs the sweep on 32 CEs, one fresh fabric per hot fraction,
/// fanned out over [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> Vec<HotspotPoint> {
    run_cached(None)
}

/// Cache namespace for the sweep's points. Bump the suffix when the
/// traffic shape or fabric configuration changes so stale entries
/// self-invalidate.
pub const CACHE_NAMESPACE: &str = "bench.hotspot/1";

cedar_snap::snapshot_struct!(HotspotPoint {
    hot_fraction,
    latency,
    interarrival,
    bandwidth,
});

/// [`run`] with an optional content-addressed result cache keyed per
/// hot fraction under [`CACHE_NAMESPACE`].
#[must_use]
pub fn run_cached(cache: Option<&cedar_snap::CacheDir>) -> Vec<HotspotPoint> {
    cedar_exec::run_sweep_cached(cache, CACHE_NAMESPACE, FRACTIONS.to_vec(), |fraction| {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let report = fabric.run_prefetch_experiment(
            32,
            PrefetchTraffic::sync_hotspot(8, fraction),
            32_000_000,
        );
        HotspotPoint {
            hot_fraction: fraction,
            latency: report.mean_first_word_latency_ce(),
            interarrival: report.mean_interarrival_ce(),
            bandwidth: report.words_per_ce_cycle(),
        }
    })
}

/// Prints the study.
pub fn print() {
    println!("Synchronization hot-spot study (32 CEs, one hot module)");
    println!(
        "{:>12} {:>10} {:>13} {:>12}",
        "hot fraction", "latency", "interarrival", "words/cycle"
    );
    for p in run() {
        println!(
            "{:>11.0}% {:>10.1} {:>13.2} {:>12.2}",
            p.hot_fraction * 100.0,
            p.latency,
            p.interarrival,
            p.bandwidth
        );
    }
    println!("\nA few percent of traffic to one cell is enough to serialize the");
    println!("module and saturate the tree behind it. This is why Cedar executes");
    println!("Test-And-Operate *at* the module — one transaction per sync — and");
    println!("why the runtime spreads its scheduling cells across modules.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_spot_degrades_monotonically() {
        let points = run();
        for pair in points.windows(2) {
            assert!(
                pair[1].bandwidth <= pair[0].bandwidth * 1.02,
                "bandwidth must not improve as the hot spot grows: {} -> {}",
                pair[0].bandwidth,
                pair[1].bandwidth
            );
        }
        let cold = &points[0];
        let hot = points.last().unwrap();
        assert!(
            hot.bandwidth < 0.5 * cold.bandwidth,
            "a 25% hot spot should at least halve throughput: {} -> {}",
            cold.bandwidth,
            hot.bandwidth
        );
        assert!(hot.latency > cold.latency, "and raise latency");
    }

    #[test]
    fn mild_hot_spots_already_hurt() {
        let points = run();
        let cold = &points[0];
        let mild = &points[2]; // 5%
        assert!(
            mild.bandwidth < 0.95 * cold.bandwidth,
            "5% hot traffic must be visible: {} vs {}",
            mild.bandwidth,
            cold.bandwidth
        );
    }
}
