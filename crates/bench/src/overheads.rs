//! §3.2: loop-construct overheads — the published 90 µs XDOALL
//! startup, 30 µs iteration fetch, and "few microseconds" CDOALL
//! start, measured on the simulated runtime.

use cedar_runtime::loops::{cdoall, sdoall, xdoall, Schedule, Work};

use crate::paper_machine;

/// The measured overheads in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overheads {
    /// Empty-XDOALL round trip (startup + join).
    pub xdoall_startup_us: f64,
    /// Marginal cost per self-scheduled XDOALL iteration.
    pub xdoall_fetch_us: f64,
    /// Empty-CDOALL round trip.
    pub cdoall_start_us: f64,
    /// Empty-SDOALL round trip.
    pub sdoall_start_us: f64,
}

/// Measures the overheads by running empty and tiny loops.
#[must_use]
pub fn run() -> Overheads {
    let mut sys = paper_machine();
    let empty_x = xdoall(&mut sys, 0, Schedule::Static, |_| Work::cycles(0.0));
    // Marginal fetch: 32 self-scheduled iterations on 32 CEs — one
    // fetch each on top of the startup.
    let one_each = xdoall(&mut sys, 32, Schedule::SelfScheduled, |_| Work::cycles(0.0));
    let empty_c = cdoall(&mut sys, 0, 0, Schedule::Static, |_| Work::cycles(0.0));
    let empty_s = sdoall(&mut sys, 0, Schedule::Static, |_| Work::cycles(0.0));
    let us = |cycles: f64| cycles * 170e-9 * 1e6;
    let fetch_us = us(one_each.makespan_cycles - empty_x.makespan_cycles);
    Overheads {
        // The empty loop's round trip is startup plus the final join
        // (one more global round); the paper's 90 us is startup alone.
        xdoall_startup_us: us(empty_x.makespan_cycles) - fetch_us,
        xdoall_fetch_us: fetch_us,
        cdoall_start_us: us(empty_c.makespan_cycles),
        sdoall_start_us: us(empty_s.makespan_cycles) - fetch_us,
    }
}

/// Prints the measurements against the paper's statements.
pub fn print() {
    let o = run();
    println!("Loop-construct overheads (simulated runtime vs paper)");
    println!(
        "XDOALL startup:        {:7.1} us   (paper: ~90 us)",
        o.xdoall_startup_us
    );
    println!(
        "XDOALL iteration fetch:{:7.1} us   (paper: ~30 us)",
        o.xdoall_fetch_us
    );
    println!(
        "CDOALL start:          {:7.1} us   (paper: a few microseconds)",
        o.cdoall_start_us
    );
    println!(
        "SDOALL start:          {:7.1} us   (schedules whole clusters through global memory)",
        o.sdoall_start_us
    );
}
