//! Figure 3: Cray YMP/8 vs Cedar efficiency scatter for the manually
//! optimized Perfect codes, with the U/I/H band boundaries.

use cedar_baselines::ymp;
use cedar_metrics::bands::{classify_efficiency, PerfBand};
use cedar_perfect::manual::{fig3_cedar_efficiencies, fig3_width};
use cedar_perfect::model::ExecutionModel;

use crate::paper_machine;

/// One scatter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Code name.
    pub name: &'static str,
    /// Cedar efficiency (horizontal axis).
    pub cedar: f64,
    /// YMP/8 efficiency (vertical axis).
    pub ymp: f64,
    /// Cedar band.
    pub cedar_band: PerfBand,
    /// YMP band.
    pub ymp_band: PerfBand,
}

/// Regenerates the scatter data: one shared calibration, then the
/// per-code lookups fan out over [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> Vec<Point> {
    let mut sys = paper_machine();
    let model = ExecutionModel::calibrate(&mut sys);
    cedar_exec::run_sweep(fig3_cedar_efficiencies(&model), |c| {
        let y = ymp::FIG3_EFFICIENCIES
            .iter()
            .find(|e| e.name == c.name)
            .expect("every code has a YMP point");
        Point {
            name: c.name,
            cedar: c.efficiency,
            ymp: y.efficiency,
            cedar_band: classify_efficiency(c.efficiency, fig3_width(c.name)),
            ymp_band: classify_efficiency(y.efficiency, 8),
        }
    })
}

/// Renders the data as a CSV-ish listing plus an ASCII scatter.
/// Deterministic: every run yields this exact string, byte for byte.
#[must_use]
pub fn report() -> String {
    use std::fmt::Write;

    let points = run();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: Cray YMP/8 vs Cedar efficiency (manually optimized Perfect codes)"
    );
    let _ = writeln!(
        out,
        "{:8} {:>9} {:>13} {:>9} {:>13}",
        "code", "cedar", "band", "ymp", "band"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:8} {:>9.3} {:>13} {:>9.3} {:>13}",
            p.name,
            p.cedar,
            p.cedar_band.to_string(),
            p.ymp,
            p.ymp_band.to_string()
        );
    }

    // ASCII scatter: 21 rows (YMP eff 1.0 -> 0.0), 41 cols (Cedar eff).
    let rows = 21usize;
    let cols = 41usize;
    let mut grid = vec![vec![' '; cols]; rows];
    for p in &points {
        let col = ((p.cedar * (cols - 1) as f64).round() as usize).min(cols - 1);
        let row = rows - 1 - ((p.ymp * (rows - 1) as f64).round() as usize).min(rows - 1);
        grid[row][col] = match grid[row][col] {
            ' ' => p.name.chars().next().unwrap_or('?'),
            _ => '*',
        };
    }
    let _ = writeln!(out, "\nYMP eff");
    for (i, line) in grid.iter().enumerate() {
        let y = 1.0 - i as f64 / (rows - 1) as f64;
        let s: String = line.iter().collect();
        let _ = writeln!(out, "{y:4.1} |{s}|");
    }
    let _ = writeln!(out, "      0.0 {:^31} 1.0", "Cedar efficiency");
    let high = points
        .iter()
        .filter(|p| p.cedar_band == PerfBand::High)
        .count();
    let unacc_cedar = points
        .iter()
        .filter(|p| p.cedar_band == PerfBand::Unacceptable)
        .count();
    let unacc_ymp = points
        .iter()
        .filter(|p| p.ymp_band == PerfBand::Unacceptable)
        .count();
    let _ = writeln!(
        out,
        "\nCedar: {high} high, {} intermediate, {unacc_cedar} unacceptable  (paper: ~1/4 high, rest intermediate, none unacceptable)",
        points.len() - high - unacc_cedar
    );
    let _ = writeln!(
        out,
        "YMP: {} high, {} intermediate, {unacc_ymp} unacceptable  (paper: ~half high, half intermediate, one unacceptable)",
        points.iter().filter(|p| p.ymp_band == PerfBand::High).count(),
        points
            .iter()
            .filter(|p| p.ymp_band == PerfBand::Intermediate)
            .count()
    );
    out
}

/// Prints the data.
pub fn print() {
    print!("{}", report());
}
