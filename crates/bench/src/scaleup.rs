//! Scaled-up Cedar-like systems — the study the paper announces but
//! defers ("We are in the process of collecting detailed simulation
//! data for various computations on scaled-up Cedar-like systems.
//! This takes us into the realm of PPT 5…").
//!
//! PPT5 asks whether the architecture can be reimplemented with much
//! larger processor counts. We scale the machine the way the design
//! scales naturally: more clusters of eight CEs, a three-stage radix-8
//! omega pair (512 positions), and memory modules growing with the
//! machine so per-processor bandwidth is preserved. The rank-64 update
//! and the prefetch fabric are then measured at 4, 8, and 16 clusters.

use cedar_core::params::CedarParams;
use cedar_core::system::CedarSystem;
use cedar_kernels::rank_update::{self, RankUpdateVersion};
use cedar_net::config::NetworkConfig;
use cedar_net::fabric::{FabricConfig, PrefetchTraffic};

/// One scaled machine's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Clusters in the machine.
    pub clusters: usize,
    /// Total CEs.
    pub ces: usize,
    /// Unloaded-vs-loaded prefetch latency (CE cycles) at full machine.
    pub latency: f64,
    /// Interarrival at full machine.
    pub interarrival: f64,
    /// Cached rank-64 update MFLOPS at full machine.
    pub cache_mflops: f64,
    /// Prefetched rank-64 update MFLOPS at full machine.
    pub pref_mflops: f64,
}

/// Builds a Cedar-like machine of `clusters` clusters with the network
/// and memory scaled to preserve the per-processor ratios.
///
/// # Panics
///
/// Panics if `clusters` exceeds what a three-stage network carries.
#[must_use]
pub fn scaled_params(clusters: usize) -> CedarParams {
    let ces = clusters * 8;
    let stages = if ces <= 32 { 2 } else { 3 };
    let net = NetworkConfig {
        stages,
        ..NetworkConfig::cedar()
    };
    assert!(ces <= net.ports(), "machine larger than the network");
    // Modules scale with the machine: one per CE, at the Cedar service
    // rate, preserving the 0.5 words/CE-cycle per-processor bandwidth.
    let fabric = FabricConfig {
        net,
        mem_modules: ces.max(32),
        ..FabricConfig::cedar()
    };
    CedarParams::paper()
        .with_fabric(fabric)
        .with_clusters(clusters)
        .expect("scaled machine fits its network")
}

/// The cluster counts studied.
pub const SCALES: [usize; 3] = [4, 8, 16];

/// Runs the scale-up study, one fresh scaled machine per cluster
/// count, fanned out over [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> Vec<ScalePoint> {
    cedar_exec::run_sweep(SCALES.to_vec(), |clusters| {
        let mut sys = CedarSystem::new(scaled_params(clusters));
        let ces = clusters * 8;
        let profile = sys.measure_memory(PrefetchTraffic::rk_aggressive(4), ces);
        let cache = rank_update::simulate(&mut sys, 1024, RankUpdateVersion::GmCache, clusters);
        let pref = rank_update::simulate(&mut sys, 1024, RankUpdateVersion::GmPref, clusters);
        ScalePoint {
            clusters,
            ces,
            latency: profile.latency,
            interarrival: profile.interarrival,
            cache_mflops: cache.mflops,
            pref_mflops: pref.mflops,
        }
    })
}

/// Prints the study.
pub fn print() {
    println!("Scaled-up Cedar-like systems (PPT5 exploration)");
    println!("(clusters of 8 CEs; 3-stage omega beyond 32 CEs; modules scale with CEs)");
    println!(
        "{:>9} {:>6} {:>9} {:>13} {:>12} {:>11}",
        "clusters", "CEs", "latency", "interarrival", "cache MF", "pref MF"
    );
    for p in run() {
        println!(
            "{:>9} {:>6} {:>9.1} {:>13.2} {:>12.1} {:>11.1}",
            p.clusters, p.ces, p.latency, p.interarrival, p.cache_mflops, p.pref_mflops
        );
    }
    println!("\nThe cached (cluster-local) version keeps scaling linearly — the");
    println!("cluster design decouples it from the global system. The prefetched");
    println!("version scales while per-processor memory bandwidth is held, at the");
    println!("cost of one more network stage of latency past 32 CEs: the");
    println!("architecture passes a first PPT5 smoke test, with global bandwidth");
    println!("as the resource that must be reimplemented along with the CEs.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_machines_validate() {
        for &c in &SCALES {
            scaled_params(c).validate().unwrap();
        }
        assert_eq!(scaled_params(16).total_ces(), 128);
        assert_eq!(scaled_params(16).fabric.net.ports(), 512);
    }

    /// One expensive sweep shared by all the behavioural assertions
    /// (the 128-CE fabric run dominates the cost).
    #[test]
    fn scaling_behaviour() {
        let points = run();

        // The cached version scales linearly with clusters.
        let per_cluster: Vec<f64> = points
            .iter()
            .map(|p| p.cache_mflops / p.clusters as f64)
            .collect();
        for w in per_cluster.windows(2) {
            assert!(
                (w[1] / w[0] - 1.0).abs() < 0.05,
                "cached MFLOPS per cluster must stay flat: {per_cluster:?}"
            );
        }

        // With per-processor bandwidth preserved, the prefetched
        // version's per-CE rate must not collapse when the machine
        // quadruples (within 40%).
        let first = points[0].pref_mflops / points[0].ces as f64;
        let last = points.last().unwrap().pref_mflops / points.last().unwrap().ces as f64;
        assert!(
            last > 0.6 * first,
            "per-CE prefetched rate collapsed: {first} -> {last}"
        );

        // The extra network stage past 32 CEs costs latency.
        assert!(
            points[2].latency > points[0].latency * 0.9,
            "128-CE machine should not have lower latency than 32-CE"
        );
    }
}
