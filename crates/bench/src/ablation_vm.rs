//! The \[MaEG92\] virtual-memory ablation: TRFD's page-fault storm.
//!
//! "The improved version was shown to have almost four times the
//! number of page faults relative to the one-cluster version and was
//! spending close to 50% of the time in virtual memory activity. The
//! extra faults are TLB miss faults as each additional cluster …
//! first accesses pages for which a valid PTE exists in global
//! memory. … a distributed memory version of the code was developed
//! to mitigate this problem."

use cedar_mem::address::{VAddr, PAGE_SIZE_BYTES};
use cedar_mem::vm::VirtualMemory;

/// One VM experiment outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmOutcome {
    /// Configuration label.
    pub label: &'static str,
    /// Total page faults (hard + TLB-miss).
    pub faults: u64,
    /// VM service time as a fraction of a fixed compute budget.
    pub vm_fraction: f64,
}

/// TRFD's touched working set, in pages (the Perfect data set's
/// integral tables: a few thousand 4 KB pages).
pub const PAGES: u64 = 3_000;

/// Compute cycles of the (kernel-optimized) TRFD per sweep — sized so
/// the multicluster fault storm costs about half the run, as measured.
pub const COMPUTE_CYCLES: u64 = 45_000_000;

fn touch_all(vm: &mut VirtualMemory, cluster: usize) {
    for p in 0..PAGES {
        vm.translate(cluster, VAddr(p * PAGE_SIZE_BYTES));
    }
}

/// Runs the three configurations: one cluster, four clusters sharing
/// global pages, four clusters with distributed placement. Each arm
/// builds its own [`VirtualMemory`], so the three fan out over
/// [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> Vec<VmOutcome> {
    let outcome = |label, vm: &VirtualMemory| {
        let service = vm.service_cycles() as f64;
        VmOutcome {
            label,
            faults: vm.faults_per_cluster().iter().sum(),
            vm_fraction: service / (service + COMPUTE_CYCLES as f64),
        }
    };

    cedar_exec::run_sweep((0..3).collect(), |arm| match arm {
        0 => {
            // One cluster: first-touch faults only.
            let mut one = VirtualMemory::new(4, 256);
            touch_all(&mut one, 0);
            outcome("1 cluster, global pages", &one)
        }
        1 => {
            // Four clusters, shared global pages: every other cluster
            // TLB-miss faults on every page cluster 0 mapped.
            let mut shared = VirtualMemory::new(4, 256);
            for c in 0..4 {
                touch_all(&mut shared, c);
            }
            outcome("4 clusters, global pages", &shared)
        }
        _ => {
            // Distributed version: each cluster's partition pre-mapped
            // into its own memory; clusters touch only their own quarter.
            let mut dist = VirtualMemory::new(4, 256);
            let quarter = PAGES / 4;
            for c in 0..4 {
                dist.map_into_cluster(c, c as u64 * quarter, quarter);
            }
            for c in 0..4 {
                for p in 0..quarter {
                    dist.translate(c, VAddr((c as u64 * quarter + p) * PAGE_SIZE_BYTES));
                }
            }
            outcome("4 clusters, distributed", &dist)
        }
    })
}

/// Prints the ablation.
pub fn print() {
    println!("[MaEG92] ablation: TRFD page-fault behaviour");
    println!(
        "{:28} {:>10} {:>14}",
        "configuration", "faults", "VM time share"
    );
    let outcomes = run();
    for o in &outcomes {
        println!(
            "{:28} {:>10} {:>13.0}%",
            o.label,
            o.faults,
            o.vm_fraction * 100.0
        );
    }
    let ratio = outcomes[1].faults as f64 / outcomes[0].faults as f64;
    println!(
        "\nmulticluster/single fault ratio: {ratio:.1} (paper: almost 4x);\n\
         multicluster VM share: {:.0}% (paper: close to 50%);\n\
         the distributed version returns to first-touch faults only.",
        outcomes[1].vm_fraction * 100.0
    );
}
