//! The \[Turn93\] network ablation.
//!
//! "We have shown via detailed simulations that this degradation is
//! not inherent in the type of network used but is a result of
//! specific implementation constraints." The ablation keeps the omega
//! topology fixed and varies only implementation parameters:
//!
//! * **buffer depth** — deepening the two-word crossbar queues and
//!   module buffers does *not* repair the 32-CE degradation (the
//!   backlog just queues deeper, raising latency at the same
//!   throughput), showing the bottleneck is not FIFO capacity;
//! * **memory-module service rate** — doubling the modules' service
//!   rate (an implementation constraint of the memory boards, not the
//!   shuffle-exchange network) removes the degradation entirely,
//!   returning 32-CE latency and interarrival to near their minima.
//!
//! Same topology, different implementation, no degradation — the
//! paper's claim.

use cedar_net::config::NetworkConfig;
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};

/// One operating point at 32 CEs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationPoint {
    /// Row label.
    pub label: &'static str,
    /// Crossbar queue depth in words.
    pub queue_words: usize,
    /// Module service time in network cycles.
    pub service_net_cycles: u64,
    /// Mean first-word latency (CE cycles).
    pub latency: f64,
    /// Mean interarrival (CE cycles).
    pub interarrival: f64,
    /// Delivered bandwidth (words per CE cycle).
    pub bandwidth: f64,
}

/// The swept configurations: Cedar, deeper buffers, faster modules.
pub const CONFIGS: [(&str, usize, u64); 5] = [
    ("Cedar (ships)", 2, 4),
    ("4-word queues", 4, 4),
    ("16-word queues", 16, 4),
    ("2x module rate", 2, 2),
    ("2x rate + 4w queues", 4, 2),
];

/// Runs the 32-CE stress test at each configuration, one fresh fabric
/// per point, fanned out over [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> Vec<AblationPoint> {
    cedar_exec::run_sweep(CONFIGS.to_vec(), |(label, queue_words, service)| {
        let mut cfg = FabricConfig::cedar();
        cfg.net = NetworkConfig::cedar_with_queue_words(queue_words);
        cfg.net.exit_fifo_words = queue_words;
        cfg.module_buffer_requests = queue_words;
        cfg.mem_service_net_cycles = service;
        let mut fabric = RoundTripFabric::new(cfg);
        let report =
            fabric.run_prefetch_experiment(32, PrefetchTraffic::rk_aggressive(6), 32_000_000);
        AblationPoint {
            label,
            queue_words,
            service_net_cycles: service,
            latency: report.mean_first_word_latency_ce(),
            interarrival: report.mean_interarrival_ce(),
            bandwidth: report.words_per_ce_cycle(),
        }
    })
}

/// Prints the ablation.
pub fn print() {
    println!("[Turn93] ablation: implementation parameters vs 32-CE contention");
    println!("(omega topology fixed throughout; RK traffic on 32 CEs)");
    println!(
        "{:22} {:>7} {:>9} {:>9} {:>13} {:>12}",
        "configuration", "queues", "service", "latency", "interarrival", "words/cycle"
    );
    for p in run() {
        println!(
            "{:22} {:>7} {:>9} {:>9.1} {:>13.2} {:>12.2}",
            p.label, p.queue_words, p.service_net_cycles, p.latency, p.interarrival, p.bandwidth
        );
    }
    println!(
        "
Deeper FIFOs alone leave throughput pinned and *raise* latency;"
    );
    println!("faster memory modules (an implementation constraint, not the");
    println!("network type) remove the degradation — the paper's conclusion.");
}
