//! `cedar-bench` — the experiment harness.
//!
//! One module per table or figure of the paper's evaluation, each with
//! a `run` function returning structured results (consumed by the
//! integration tests) and a `print` function producing the
//! paper-shaped table (used by the regeneration binaries in
//! `src/bin`). EXPERIMENTS.md records paper-vs-measured for every
//! row.
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`table1`] | Table 1 — rank-64 update MFLOPS |
//! | [`table2`] | Table 2 — prefetch speedup, latency, interarrival |
//! | [`table3`] | Table 3 — Perfect codes times/improvements/MFLOPS |
//! | [`table4`] | Table 4 — manually optimized codes |
//! | [`table5`] | Table 5 — instability of Cedar / YMP-8 / Cray-1 |
//! | [`table6`] | Table 6 — restructuring-efficiency band census |
//! | [`fig3`] | Figure 3 — YMP vs Cedar efficiency scatter |
//! | [`ppt4`] | §4.3 PPT4 — CG scalability + CM-5 comparison |
//! | [`overheads`] | §3.2 — loop-construct overheads |
//! | [`ablation_network`] | \[Turn93\] — queue-depth network ablation |
//! | [`ablation_vm`] | \[MaEG92\] — TRFD page-fault ablation |
//! | [`ablation_barriers`] | §4.2 — FLO52 barrier restructuring |
//! | [`ablation_loops`] | §4.2 — DYFESM SDOALL/CDOALL nest |
//! | [`ablation_io`] | §4.2 — BDNA formatted vs unformatted I/O |
//! | [`figures`] | Figures 1 and 2 — machine/cluster organization |
//! | [`scaleup`] | PPT5 exploration — scaled-up Cedar-like systems |
//! | [`hotspot`] | §2 motivation — synchronization hot-spot collapse |
//! | [`whatif`] | design what-ifs over the Perfect workload |
//! | [`fidelity32`] | regular omega vs the production dual-link 32×32 network |

#![warn(missing_docs)]

pub mod ablation_barriers;
pub mod ablation_io;
pub mod ablation_loops;
pub mod ablation_network;
pub mod ablation_vm;
pub mod degraded;
pub mod fidelity32;
pub mod fig3;
pub mod figures;
pub mod hotspot;
pub mod overheads;
pub mod ppt4;
pub mod scaleup;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod trace;
pub mod whatif;

use cedar_core::params::CedarParams;
use cedar_core::system::CedarSystem;

/// Builds the paper-configuration machine every experiment starts
/// from.
#[must_use]
pub fn paper_machine() -> CedarSystem {
    CedarSystem::new(CedarParams::paper())
}

/// Formats a float with one decimal, right-aligned to `w`.
#[must_use]
pub fn f1(x: f64, w: usize) -> String {
    format!("{x:>w$.1}")
}

/// Formats a float with two decimals, right-aligned to `w`.
#[must_use]
pub fn f2(x: f64, w: usize) -> String {
    format!("{x:>w$.2}")
}
