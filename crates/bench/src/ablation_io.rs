//! The BDNA I/O ablation (§4.2).
//!
//! "The execution time for BDNA is reduced to 70 secs. by simply
//! replacing formatted with unformatted I/O." The automatable BDNA
//! runs 111 s; the 41 s gap is almost entirely ASCII conversion on the
//! interactive processors. This ablation reconstructs BDNA's I/O
//! volume from that gap and replays it through the Xylem I/O model
//! both ways.

use cedar_runtime::io::{IoSubsystem, RecordFormat};

/// BDNA's published automatable and hand-optimized times, seconds.
pub const BDNA_AUTO_S: f64 = 111.0;
/// The manual (unformatted-I/O) time.
pub const BDNA_MANUAL_S: f64 = 70.0;

/// The ablation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoAblation {
    /// Words of trajectory output inferred from the published gap.
    pub words: u64,
    /// IP seconds spent with formatted records.
    pub formatted_seconds: f64,
    /// IP seconds spent with unformatted records.
    pub unformatted_seconds: f64,
    /// Whole-application time with formatted I/O.
    pub app_formatted_s: f64,
    /// Whole-application time with unformatted I/O.
    pub app_unformatted_s: f64,
}

/// Reconstructs the volume and replays both encodings, one arm per
/// record format over [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> IoAblation {
    let probe = IoSubsystem::new();
    // Invert the published gap for the output volume.
    let gap = BDNA_AUTO_S - BDNA_MANUAL_S;
    let per_word_gap = probe.reformat_savings_seconds(1);
    let words = (gap / per_word_gap).round() as u64;

    let arms = cedar_exec::run_sweep(
        vec![RecordFormat::Formatted, RecordFormat::Unformatted],
        |format| IoSubsystem::new().transfer(format, words),
    );
    let (f, u) = (arms[0], arms[1]);

    let compute = BDNA_AUTO_S - f.seconds;
    IoAblation {
        words,
        formatted_seconds: f.seconds,
        unformatted_seconds: u.seconds,
        app_formatted_s: compute + f.seconds,
        app_unformatted_s: compute + u.seconds,
    }
}

/// Prints the ablation.
pub fn print() {
    let a = run();
    println!("BDNA I/O ablation (Xylem file service through the IPs)");
    println!(
        "inferred trajectory output: {:.1} M words",
        a.words as f64 / 1e6
    );
    println!(
        "formatted:   {:6.1} s of IP conversion -> application {:6.1} s (paper: 111 s)",
        a.formatted_seconds, a.app_formatted_s
    );
    println!(
        "unformatted: {:6.1} s of block I/O     -> application {:6.1} s (paper:  70 s)",
        a.unformatted_seconds, a.app_unformatted_s
    );
    println!(
        "improvement: {:.2}x from changing one WRITE statement (paper: 1.7x)",
        a.app_formatted_s / a.app_unformatted_s
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaying_the_volume_reproduces_both_times() {
        let a = run();
        assert!((a.app_formatted_s - BDNA_AUTO_S).abs() < 0.5);
        assert!((a.app_unformatted_s - BDNA_MANUAL_S).abs() < 3.0);
    }

    #[test]
    fn inferred_volume_is_physically_plausible() {
        // A biomolecular trajectory dump of a couple of million words
        // (tens of MB) is the right order for BDNA's data set.
        let a = run();
        assert!(
            (500_000..10_000_000).contains(&a.words),
            "inferred {} words",
            a.words
        );
    }

    #[test]
    fn improvement_matches_table4() {
        let a = run();
        let improvement = a.app_formatted_s / a.app_unformatted_s;
        assert!(
            (1.5..1.9).contains(&improvement),
            "paper prints 1.7, got {improvement:.2}"
        );
    }
}
