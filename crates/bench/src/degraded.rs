//! Degraded-mode study: Table 2's latency/bandwidth columns regenerated
//! across deterministic fault rates.
//!
//! The paper measures the healthy machine. This experiment asks how the
//! global-memory system holds up when the fabric is injected with the
//! deterministic fault plan of `cedar-faults`: lossy links, stuck and
//! slowed switch outputs, stalling memory modules. Requests lost to
//! drops are recovered by the fabric's timeout-and-retry machinery, so
//! every row reports both the delivered performance and what the
//! recovery cost (retries, dropped words, abandoned requests).
//!
//! Rate 0 attaches a benign plan, which the fabric discards — that row
//! is the healthy baseline, bit-identical to a run with no plan at all.

use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
use cedar_sim::watchdog::Watchdog;

/// The link-drop / sync-loss rates swept (rate 0 = healthy baseline).
pub const RATES: [f64; 4] = [0.0, 0.01, 0.02, 0.05];

/// The CE counts of the study (Table 2's columns).
pub const CES: [usize; 3] = [8, 16, 32];

/// The fault-schedule seed. Any run with this seed reproduces the
/// degraded machine — and this report — exactly.
pub const SEED: u64 = 0xCEDA;

/// Watchdog budget in network cycles: far beyond any healthy or
/// recoverable stall, so tripping means genuine lack of progress.
pub const WATCHDOG_BUDGET: u64 = 4_000_000;

/// One measured operating point of the degraded machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedPoint {
    /// Link-drop (and sync-loss) probability.
    pub rate: f64,
    /// Active CEs.
    pub ces: usize,
    /// Mean first-word latency, CE cycles.
    pub latency: f64,
    /// Mean interarrival between streamed words, CE cycles.
    pub interarrival: f64,
    /// Delivered bandwidth, words per CE cycle.
    pub words_per_cycle: f64,
    /// Words eaten by faulted links across both networks.
    pub words_dropped: u64,
    /// Requests reissued after a timeout.
    pub retries: u64,
    /// Requests abandoned after the retry budget.
    pub failed: u64,
}

/// The fault configuration at a sweep rate. Rate 0 is the explicit
/// no-fault plan (benign — the fabric discards it); positive rates use
/// the broadly degraded preset with lossy links at `rate`.
#[must_use]
pub fn config_at(rate: f64) -> FaultConfig {
    if rate == 0.0 {
        FaultConfig::none(SEED)
    } else {
        FaultConfig::degraded(SEED, rate)
    }
}

/// The traffic shape measured: the rank-update prefetch stream, the
/// heaviest global-memory customer in Table 2.
#[must_use]
pub fn traffic() -> PrefetchTraffic {
    let mut t = PrefetchTraffic::rk_aggressive(4);
    t.blocks = 8;
    t
}

/// Measures one operating point on a freshly built, freshly degraded
/// fabric.
///
/// # Panics
///
/// Panics if the watchdog trips — at these rates every request either
/// completes or exhausts its retries well inside the budget, so a trip
/// means the recovery machinery itself wedged.
#[must_use]
pub fn measure(rate: f64, ces: usize) -> DegradedPoint {
    let plan = FaultPlan::generate(&config_at(rate), &MachineShape::cedar())
        .expect("sweep configs are valid");
    let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
    fabric.attach_faults(plan, RetryPolicy::fabric());
    let mut dog = Watchdog::new(WATCHDOG_BUDGET, "degraded fabric experiment");
    let report = fabric
        .run_watched_experiment(ces, traffic(), 64_000_000, &mut dog)
        .expect("degraded run made progress");
    DegradedPoint {
        rate,
        ces,
        latency: report.mean_first_word_latency_ce(),
        interarrival: report.mean_interarrival_ce(),
        words_per_cycle: report.words_per_ce_cycle(),
        words_dropped: report.words_dropped(),
        retries: report.retries(),
        failed: report.failed_requests(),
    }
}

/// How often the resumable runner checkpoints, in network cycles.
/// Grid points complete in a few thousand to a few tens of thousands
/// of net cycles (the healthy 8-CE point drains in ~4k), so 2k yields
/// several checkpoints per point — a killed run loses only a sliver
/// of one point — while serialization stays invisible in the profile.
pub const CHECKPOINT_EVERY_NET_CYCLES: u64 = 2_000;

/// [`measure`] with crash resilience: the experiment auto-checkpoints
/// to `checkpoint` every [`CHECKPOINT_EVERY_NET_CYCLES`] and, if a
/// matching checkpoint already exists there (a previous invocation
/// was killed mid-run), resumes from it instead of restarting. The
/// result is bit-identical to an uninterrupted [`measure`] either
/// way; the checkpoint file is removed on completion.
///
/// # Panics
///
/// Panics if the watchdog trips, like [`measure`].
#[must_use]
pub fn measure_resumable(rate: f64, ces: usize, checkpoint: &std::path::Path) -> DegradedPoint {
    let plan = FaultPlan::generate(&config_at(rate), &MachineShape::cedar())
        .expect("sweep configs are valid");
    let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
    fabric.attach_faults(plan, RetryPolicy::fabric());
    let mut dog = Watchdog::new(WATCHDOG_BUDGET, "degraded fabric experiment");
    let report = fabric
        .run_watched_checkpointed(
            ces,
            traffic(),
            64_000_000,
            &mut dog,
            CHECKPOINT_EVERY_NET_CYCLES,
            checkpoint,
        )
        .expect("degraded run made progress");
    DegradedPoint {
        rate,
        ces,
        latency: report.mean_first_word_latency_ce(),
        interarrival: report.mean_interarrival_ce(),
        words_per_cycle: report.words_per_ce_cycle(),
        words_dropped: report.words_dropped(),
        retries: report.retries(),
        failed: report.failed_requests(),
    }
}

cedar_snap::snapshot_struct!(DegradedPoint {
    rate,
    ces,
    latency,
    interarrival,
    words_per_cycle,
    words_dropped,
    retries,
    failed,
});

/// Runs the full sweep: every rate at every CE count. Points are
/// independent freshly built fabrics, so they fan out over
/// [`cedar_exec::run_sweep`] with results committed in grid order.
#[must_use]
pub fn run() -> Vec<DegradedPoint> {
    run_cached(None)
}

/// Cache namespace for the sweep's points. Bump the suffix when the
/// measurement recipe, [`SEED`] or traffic shape changes so stale
/// entries self-invalidate.
pub const CACHE_NAMESPACE: &str = "bench.degraded/1";

/// [`run`] with an optional content-addressed result cache keyed per
/// `(rate, ces)` grid point under [`CACHE_NAMESPACE`].
#[must_use]
pub fn run_cached(cache: Option<&cedar_snap::CacheDir>) -> Vec<DegradedPoint> {
    let mut grid = Vec::new();
    for &rate in &RATES {
        for &ces in &CES {
            grid.push((rate, ces));
        }
    }
    cedar_exec::run_sweep_cached(cache, CACHE_NAMESPACE, grid, |(rate, ces)| {
        measure(rate, ces)
    })
}

/// Renders the sweep as a Table-2-style text table. Deterministic:
/// the same [`SEED`] yields this exact string, byte for byte.
#[must_use]
pub fn report() -> String {
    report_cached(None)
}

/// [`report`] backed by an optional sweep-point cache.
#[must_use]
pub fn report_cached(cache: Option<&cedar_snap::CacheDir>) -> String {
    render(&run_cached(cache))
}

/// Formats sweep points (in [`run`]'s grid order) as the report table.
#[must_use]
pub fn render(points: &[DegradedPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Degraded-mode global memory performance (seed {SEED:#x}, RK prefetch stream)"
    );
    let _ = writeln!(
        out,
        "{:>6} | {:^23} | {:^23} | {:^23}",
        "", "Latency (cycles)", "Interarrival (cycles)", "BW (words/CE-cycle)"
    );
    let _ = writeln!(
        out,
        "{:>6} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "rate", 8, 16, 32, 8, 16, 32, 8, 16, 32
    );
    for chunk in points.chunks(CES.len()) {
        let _ = writeln!(
            out,
            "{:>6.2} | {:>7.1} {:>7.1} {:>7.1} | {:>7.2} {:>7.2} {:>7.2} | {:>7.3} {:>7.3} {:>7.3}",
            chunk[0].rate,
            chunk[0].latency,
            chunk[1].latency,
            chunk[2].latency,
            chunk[0].interarrival,
            chunk[1].interarrival,
            chunk[2].interarrival,
            chunk[0].words_per_cycle,
            chunk[1].words_per_cycle,
            chunk[2].words_per_cycle,
        );
        let _ = writeln!(
            out,
            "{:>6} | dropped {:>5} {:>5} {:>5}   retried {:>5} {:>5} {:>5}   failed {:>3} {:>3} {:>3}",
            "",
            chunk[0].words_dropped,
            chunk[1].words_dropped,
            chunk[2].words_dropped,
            chunk[0].retries,
            chunk[1].retries,
            chunk[2].retries,
            chunk[0].failed,
            chunk[1].failed,
            chunk[2].failed,
        );
    }
    let _ = writeln!(
        out,
        "\nrate 0.00 attaches a benign plan and matches the healthy machine exactly"
    );
    out
}

/// Prints the sweep.
pub fn print() {
    print!("{}", report());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_matches_an_unfaulted_fabric() {
        let baseline = {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            fabric.run_prefetch_experiment(8, traffic(), 64_000_000)
        };
        let p = measure(0.0, 8);
        assert_eq!(p.latency, baseline.mean_first_word_latency_ce());
        assert_eq!(p.interarrival, baseline.mean_interarrival_ce());
        assert_eq!(p.words_per_cycle, baseline.words_per_ce_cycle());
        assert_eq!(p.words_dropped, 0);
        assert_eq!(p.retries, 0);
        assert_eq!(p.failed, 0);
    }

    #[test]
    fn faults_cost_bandwidth_and_recovery_work() {
        let healthy = measure(0.0, 16);
        let degraded = measure(0.05, 16);
        assert!(degraded.words_dropped > 0, "5% drops should eat words");
        assert!(degraded.retries > 0, "drops should force reissues");
        assert!(
            degraded.words_per_cycle < healthy.words_per_cycle,
            "degraded bandwidth {} should fall below healthy {}",
            degraded.words_per_cycle,
            healthy.words_per_cycle
        );
    }

    #[test]
    fn sweep_point_is_deterministic() {
        assert_eq!(measure(0.02, 8), measure(0.02, 8));
    }

    #[test]
    fn resumable_measure_matches_plain_measure() {
        let path =
            std::env::temp_dir().join(format!("cedar-degraded-resume-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let resumable = measure_resumable(0.02, 8, &path);
        assert_eq!(resumable, measure(0.02, 8));
        assert!(!path.exists(), "completed run must remove its checkpoint");
    }

    #[test]
    fn cached_sweep_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("cedar-degraded-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = cedar_snap::CacheDir::new(&dir).unwrap();
        let cold = report_cached(Some(&cache));
        let warm = report_cached(Some(&cache));
        assert_eq!(cold, warm, "cached report must be byte-identical");
        assert_eq!(cold, report(), "and equal to the uncached report");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
