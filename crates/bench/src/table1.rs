//! Table 1: MFLOPS for the rank-64 update on Cedar.

use cedar_kernels::rank_update::{self, RankUpdateVersion};

use crate::paper_machine;

/// The paper's Table 1 values, `[version][clusters-1]`.
pub const PAPER: [(&str, [f64; 4]); 3] = [
    ("GM/no pref", [14.5, 29.0, 43.0, 55.0]),
    ("GM/pref", [50.0, 84.0, 96.0, 104.0]),
    ("GM/Cache", [52.0, 104.0, 152.0, 208.0]),
];

/// One regenerated row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Version label as printed in the paper.
    pub label: &'static str,
    /// MFLOPS at 1..=4 clusters.
    pub mflops: [f64; 4],
}

/// Regenerates the table on a fresh paper machine (n = 1K).
#[must_use]
pub fn run() -> Vec<Row> {
    let mut sys = paper_machine();
    rank_update::table1(&mut sys, 1024)
        .into_iter()
        .map(|(v, row)| Row {
            label: match v {
                RankUpdateVersion::GmNoPref => "GM/no pref",
                RankUpdateVersion::GmPref => "GM/pref",
                RankUpdateVersion::GmCache => "GM/Cache",
            },
            mflops: [row[0], row[1], row[2], row[3]],
        })
        .collect()
}

/// Prints the regenerated table next to the paper's values, plus the
/// in-text derived quantities (prefetch improvement factors, fraction
/// of effective peak).
pub fn print() {
    let rows = run();
    println!("Table 1: MFLOPS for rank-64 update on Cedar (n = 1K)");
    println!(
        "{:12} {:>28}   {:>28}",
        "", "measured (1-4 clusters)", "paper"
    );
    for (row, (_, paper)) in rows.iter().zip(PAPER.iter()) {
        print!("{:12}", row.label);
        for m in row.mflops {
            print!(" {m:6.1}");
        }
        print!("  |");
        for p in paper {
            print!(" {p:6.1}");
        }
        println!();
    }
    let nopref = &rows[0].mflops;
    let pref = &rows[1].mflops;
    let cache = &rows[2].mflops;
    print!("\nprefetch improvement factors: ");
    for c in 0..4 {
        print!("{:.1} ", pref[c] / nopref[c]);
    }
    println!(" (paper: 3.5 2.9 2.2 1.9)");
    print!("cache improvement factors:    ");
    for c in 0..4 {
        print!("{:.1} ", cache[c] / nopref[c]);
    }
    println!(" (paper: 3.5 .. 3.8)");
    println!(
        "32-CE cache version at {:.0}% of the 274 MFLOPS effective peak (paper: 74%)",
        cache[3] / 274.0 * 100.0
    );
}
