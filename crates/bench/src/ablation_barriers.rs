//! The FLO52 barrier-restructuring ablation (§4.2, \[GJWY93\]).
//!
//! "Four of the five major routines in FLO52 require a series of
//! multicluster barriers. Unfortunately, the associated
//! synchronization overhead degrades performance for problems that are
//! not sufficiently large, e.g., the Perfect data set. … by
//! introducing a small amount of redundancy, we can transform the
//! sequence of multicluster barriers into a single multicluster
//! barrier and four independent sequences of barriers that can exploit
//! the concurrency control hardware in each cluster."
//!
//! The ablation builds a synthetic FLO52-like sweep — `phases` phases
//! of parallel work separated by barriers — and compares the original
//! all-multicluster pattern against the restructured pattern at
//! several problem sizes, showing (a) the restructured pattern's
//! barrier overhead is an order of magnitude lower and (b) the
//! original's overhead *fraction* shrinks as the problem grows, which
//! is why only small problems suffered.

use cedar_runtime::sync::{cluster_barrier_cycles, multicluster_barrier_cycles};

/// One synthetic sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOutcome {
    /// Grid points in the problem.
    pub n: usize,
    /// Total cycles with the original all-multicluster barriers.
    pub original_cycles: f64,
    /// Total cycles with the restructured barrier pattern.
    pub restructured_cycles: f64,
    /// Barrier overhead as a fraction of the original sweep.
    pub original_overhead_fraction: f64,
    /// Speedup of the restructuring.
    pub improvement: f64,
}

/// Barrier points per sweep in the synthetic FLO52 (multigrid stages ×
/// Runge-Kutta steps across the four barrier-heavy routines).
pub const PHASES: usize = 120;

/// Work cycles per grid point per phase on 32 CEs (vectorized stencil
/// updates at global-memory rates).
pub const WORK_CYCLES_PER_POINT: f64 = 0.12;

/// Straggler window added to every barrier: the last CE arrives this
/// many cycles after the first (load imbalance the barrier exposes).
pub const IMBALANCE_CYCLES: f64 = 260.0;

/// Simulates one relaxation sweep at problem size `n` under both
/// barrier patterns.
#[must_use]
pub fn sweep(n: usize) -> SweepOutcome {
    let work = PHASES as f64 * n as f64 * WORK_CYCLES_PER_POINT / 32.0;
    let multicluster = multicluster_barrier_cycles(4) + IMBALANCE_CYCLES;
    let intracluster = cluster_barrier_cycles() + IMBALANCE_CYCLES / 4.0;
    // Original: every phase ends in a multicluster barrier.
    let original_overhead = PHASES as f64 * multicluster;
    // Restructured: one multicluster barrier per sweep; each phase
    // syncs only within its cluster (the redundancy the paper adds
    // makes the clusters independent between the end barriers).
    let restructured_overhead = multicluster + PHASES as f64 * intracluster;
    let original_cycles = work + original_overhead;
    let restructured_cycles = work + restructured_overhead;
    SweepOutcome {
        n,
        original_cycles,
        restructured_cycles,
        original_overhead_fraction: original_overhead / original_cycles,
        improvement: original_cycles / restructured_cycles,
    }
}

/// The swept problem sizes (the Perfect data set is the small end).
pub const SIZES: [usize; 4] = [16_384, 65_536, 262_144, 1_048_576];

/// Runs the ablation across problem sizes, fanned out over
/// [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> Vec<SweepOutcome> {
    cedar_exec::run_sweep(SIZES.to_vec(), sweep)
}

/// Prints the ablation.
pub fn print() {
    println!("FLO52 barrier-restructuring ablation (synthetic sweep, 32 CEs)");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12}",
        "N", "original cyc", "restruct cyc", "orig ovhd", "improvement"
    );
    for o in run() {
        println!(
            "{:>10} {:>14.0} {:>14.0} {:>11.0}% {:>12.2}",
            o.n,
            o.original_cycles,
            o.restructured_cycles,
            o.original_overhead_fraction * 100.0,
            o.improvement
        );
    }
    println!("\nThe barrier overhead fraction shrinks with problem size — the");
    println!("paper's observation that the multicluster barriers hurt 'problems");
    println!("that are not sufficiently large, e.g., the Perfect data set'. The");
    println!("restructured pattern (one multicluster barrier + per-cluster");
    println!("sequences on the concurrency bus) removes most of the overhead at");
    println!("the Perfect size, part of FLO52's 64 s -> 33 s hand optimization.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restructuring_always_helps() {
        for o in run() {
            assert!(o.improvement > 1.0, "N={}: {}", o.n, o.improvement);
            assert!(o.restructured_cycles < o.original_cycles);
        }
    }

    #[test]
    fn overhead_fraction_shrinks_with_problem_size() {
        let outcomes = run();
        for pair in outcomes.windows(2) {
            assert!(
                pair[1].original_overhead_fraction < pair[0].original_overhead_fraction,
                "overhead fraction must fall: {} -> {}",
                pair[0].original_overhead_fraction,
                pair[1].original_overhead_fraction
            );
        }
    }

    #[test]
    fn small_problems_suffer_materially() {
        let small = sweep(SIZES[0]);
        assert!(
            small.original_overhead_fraction > 0.25,
            "at the Perfect size barriers must cost a large fraction, got {}",
            small.original_overhead_fraction
        );
        let large = sweep(SIZES[3]);
        assert!(
            large.original_overhead_fraction < 0.10,
            "large problems amortize the barriers, got {}",
            large.original_overhead_fraction
        );
    }

    #[test]
    fn improvement_is_largest_at_the_small_end() {
        let outcomes = run();
        assert!(outcomes[0].improvement > outcomes[3].improvement);
        assert!(
            (1.2..3.5).contains(&outcomes[0].improvement),
            "Perfect-size improvement {} should be material (FLO52's total \
             hand gain was ~1.9x including recurrence elimination)",
            outcomes[0].improvement
        );
    }
}
