//! Table 2: global-memory performance of the four monitored kernels.
//!
//! For TM, CG, VF and RK at 8, 16 and 32 CEs: the prefetch speedup
//! (kernel time without prefetch over with prefetch) and the
//! first-word latency and interarrival time recorded by the
//! performance monitor on the prefetch unit's network signals.

use cedar_core::costmodel::AccessMode;
use cedar_net::fabric::PrefetchTraffic;

use crate::paper_machine;

/// One paper row: `(kernel, speedup, latency, interarrival)`, the
/// three metric arrays indexed by CE count (8/16/32).
pub type PaperRow = (&'static str, [f64; 3], [f64; 3], [f64; 3]);

/// Paper values for the four kernels at 8/16/32 CEs.
pub const PAPER: [PaperRow; 4] = [
    ("TM", [2.1, 2.0, 1.5], [9.4, 10.2, 14.2], [1.1, 1.2, 2.1]),
    ("CG", [2.4, 2.2, 1.5], [9.4, 10.3, 15.1], [1.1, 1.2, 2.1]),
    ("VF", [1.8, 1.7, 1.5], [9.6, 11.0, 16.7], [1.2, 1.4, 2.2]),
    ("RK", [3.4, 2.9, 1.8], [12.9, 15.3, 18.3], [1.2, 1.8, 3.2]),
];

/// The CE counts of the study.
pub const CES: [usize; 3] = [8, 16, 32];

/// One kernel's regenerated row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Prefetch speedup at 8/16/32 CEs.
    pub speedup: [f64; 3],
    /// First-word latency (cycles) at 8/16/32 CEs.
    pub latency: [f64; 3],
    /// Interarrival time (cycles) at 8/16/32 CEs.
    pub interarrival: [f64; 3],
}

fn traffic_of(kernel: &str) -> PrefetchTraffic {
    match kernel {
        "TM" => PrefetchTraffic::tridiagonal_matvec(8),
        "CG" => PrefetchTraffic::conjugate_gradient(8),
        "VF" => PrefetchTraffic::vector_load(8),
        "RK" => PrefetchTraffic::rk_aggressive(4),
        other => panic!("unknown kernel {other}"),
    }
}

/// Per-word non-prefetchable work of each kernel in cycles: scalar
/// address arithmetic, loop control, register-register operations and
/// stores that run identically in both versions and therefore dilute
/// the prefetch speedup. Calibrated once against the paper's 8-CE
/// speedup column (2.1 / 2.4 / 1.8 / 3.4); the 16- and 32-CE speedups
/// then follow from the measured contention alone. RK's tiny constant
/// is what makes it both the best prefetch customer and the fastest
/// to degrade.
fn overlap_cycles(kernel: &str) -> f64 {
    match kernel {
        "TM" => 4.0,
        "CG" => 2.9,
        "VF" => 6.1,
        "RK" => 1.1,
        other => panic!("unknown kernel {other}"),
    }
}

/// Regenerates the table by running the monitored fabric experiments.
///
/// The 12 `(kernel, CE-count)` cells are independent measurements on
/// deterministic fabrics, so they fan out over [`cedar_exec::run_sweep`];
/// each point builds its own machine and the committed values are
/// bit-identical to the serial single-machine run (the cost model
/// rebuilds a fresh fabric per measurement either way).
#[must_use]
pub fn run() -> Vec<Row> {
    run_cached(None)
}

/// Cache namespace for the table's sweep points. Bump the suffix when
/// the measurement recipe changes so stale entries self-invalidate.
pub const CACHE_NAMESPACE: &str = "bench.table2/1";

/// [`run`] with an optional content-addressed result cache: each
/// `(kernel, CE-count)` cell keys on its index pair under
/// [`CACHE_NAMESPACE`], so a warmed cache serves the whole table
/// without building a single fabric.
#[must_use]
pub fn run_cached(cache: Option<&cedar_snap::CacheDir>) -> Vec<Row> {
    let mut cells: Vec<(u64, u64)> = Vec::new();
    for k in 0..PAPER.len() as u64 {
        for i in 0..CES.len() as u64 {
            cells.push((k, i));
        }
    }
    let measured = cedar_exec::run_sweep_cached(cache, CACHE_NAMESPACE, cells, |(k, i)| {
        let kernel = PAPER[k as usize].0;
        let ces = CES[i as usize];
        let mut sys = paper_machine();
        let profile = sys.measure_memory(traffic_of(kernel), ces);
        // Kernel time per word: prefetched = interarrival (plus
        // overlapped compute), non-prefetched = latency/2 with
        // the same compute overlapped.
        let nopref = sys.cycles_per_word(AccessMode::GlobalNoPrefetch, ces);
        let overlap = overlap_cycles(kernel);
        let with = profile.interarrival.max(1.0) + overlap;
        let without = nopref + overlap;
        (
            (k, i),
            (without / with, profile.latency, profile.interarrival),
        )
    });

    let mut rows: Vec<Row> = PAPER
        .iter()
        .map(|&(kernel, ..)| Row {
            kernel,
            speedup: [0.0; 3],
            latency: [0.0; 3],
            interarrival: [0.0; 3],
        })
        .collect();
    for ((k, i), (speedup, latency, interarrival)) in measured {
        let (k, i) = (k as usize, i as usize);
        rows[k].speedup[i] = speedup;
        rows[k].latency[i] = latency;
        rows[k].interarrival[i] = interarrival;
    }
    rows
}

/// Renders the regenerated table against the paper's as a string.
/// Deterministic: every run yields this exact string, byte for byte.
#[must_use]
pub fn report() -> String {
    report_cached(None)
}

/// [`report`] backed by an optional sweep-point cache.
#[must_use]
pub fn report_cached(cache: Option<&cedar_snap::CacheDir>) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out, "Table 2: Global memory performance (measured | paper)");
    let _ = writeln!(
        out,
        "{:4} | {:^23} | {:^23} | {:^23}",
        "", "Prefetch Speedup", "Latency (cycles)", "Interarrival (cycles)"
    );
    let _ = writeln!(
        out,
        "{:4} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "#CEs", 8, 16, 32, 8, 16, 32, 8, 16, 32
    );
    for (row, (_, sp, lp, ip)) in run_cached(cache).iter().zip(PAPER.iter()) {
        let _ = writeln!(
            out,
            "{:4} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1}",
            row.kernel,
            row.speedup[0],
            row.speedup[1],
            row.speedup[2],
            row.latency[0],
            row.latency[1],
            row.latency[2],
            row.interarrival[0],
            row.interarrival[1],
            row.interarrival[2],
        );
        let _ = writeln!(
            out,
            "     | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1}  (paper)",
            sp[0], sp[1], sp[2], lp[0], lp[1], lp[2], ip[0], ip[1], ip[2],
        );
    }
    let _ = writeln!(
        out,
        "\nminimal latency 8 cycles, minimal interarrival 1 cycle (paper)"
    );
    out
}

/// Prints the regenerated table against the paper's.
pub fn print() {
    print!("{}", report());
}
