//! Machine what-ifs over the Perfect workload.
//!
//! The calibrated Perfect model is mechanistic in the machine costs,
//! so it can answer the design questions the paper's discussion
//! raises: how much of the automatable-version time is Cedar's
//! synchronization hardware buying, and what would faster global
//! scheduling or a better prefetch story be worth? Each scenario
//! re-runs the forward model with one machine cost changed.

use cedar_perfect::model::ExecutionModel;
use cedar_perfect::versions::Version;

use crate::paper_machine;

/// One scenario's aggregate outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario label.
    pub label: &'static str,
    /// Sum of automatable times over the 12 modelled codes, seconds.
    pub total_seconds: f64,
    /// Geometric-mean improvement over serial.
    pub geomean_improvement: f64,
}

fn summarize(label: &'static str, model: &ExecutionModel) -> Scenario {
    let mut total = 0.0;
    let mut log_sum = 0.0;
    for code in model.codes() {
        let t = model.time(code, Version::Automatable);
        total += t;
        log_sum += model.improvement(code, Version::Automatable).ln();
    }
    Scenario {
        label,
        total_seconds: total,
        geomean_improvement: (log_sum / model.codes().len() as f64).exp(),
    }
}

/// Runs the scenarios: one shared calibration (the expensive fabric
/// measurements), then the four what-if re-evaluations fan out over
/// [`cedar_exec::run_sweep`] reading the calibrated model.
#[must_use]
pub fn run() -> Vec<Scenario> {
    let mut sys = paper_machine();
    let base = ExecutionModel::calibrate(&mut sys);
    let base_costs = *base.costs();

    cedar_exec::run_sweep((0..4).collect(), |scenario| match scenario {
        0 => summarize("Cedar as built", &base),
        1 => {
            // Faster global scheduling: the 30 us fetch halves (e.g.
            // dedicated scheduling hardware beyond the sync processors).
            let mut fast_sched = base_costs;
            fast_sched.sched_cedar_s /= 2.0;
            fast_sched.sched_tas_s /= 2.0;
            summarize(
                "2x faster loop scheduling",
                &base.with_swapped_costs(fast_sched),
            )
        }
        2 => {
            // No synchronization hardware at all: every code runs at its
            // Test-And-Set scheduling cost (the NoSync column machine-wide).
            let mut no_sync_hw = base_costs;
            no_sync_hw.sched_cedar_s = base_costs.sched_tas_s;
            summarize("no sync hardware", &base.with_swapped_costs(no_sync_hw))
        }
        _ => {
            // The prefetch unit removed (Cedar synchronization kept): every
            // code's prefetched fetch volume is re-priced at the unmasked
            // global rate on top of its automatable time — what the PFU buys
            // across the workload.
            let mut total = 0.0;
            let mut log_sum = 0.0;
            for code in base.codes() {
                let k = base_costs.nopref_factor(code.width_ces);
                let t = base.time(code, Version::Automatable) + code.prefetched_seconds * (k - 1.0);
                total += t;
                log_sum += (code.serial_seconds / t).ln();
            }
            Scenario {
                label: "prefetch unit removed",
                total_seconds: total,
                geomean_improvement: (log_sum / base.codes().len() as f64).exp(),
            }
        }
    })
}

/// Prints the scenarios.
pub fn print() {
    println!("Perfect-workload what-ifs (12 modelled codes, automatable versions)");
    println!(
        "{:44} {:>12} {:>18}",
        "scenario", "total (s)", "geomean improv."
    );
    for s in run() {
        println!(
            "{:44} {:>12.0} {:>18.1}",
            s.label, s.total_seconds, s.geomean_improvement
        );
    }
    println!("\nThe gap between 'Cedar as built' and 'no sync hardware' is what the");
    println!("memory-module synchronization processors buy across the workload;");
    println!("the scheduling and memory rows bound how much further runtime and");
    println!("memory-system engineering could have gone.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_hardware_pays_for_itself() {
        let scenarios = run();
        let built = &scenarios[0];
        let no_sync = &scenarios[2];
        assert!(
            no_sync.total_seconds > built.total_seconds + 10.0,
            "removing the sync hardware must cost tens of seconds: {} vs {}",
            no_sync.total_seconds,
            built.total_seconds
        );
    }

    #[test]
    fn faster_scheduling_helps_but_less_than_sync_removal_hurts() {
        let scenarios = run();
        let built = &scenarios[0];
        let fast = &scenarios[1];
        let no_sync = &scenarios[2];
        assert!(fast.total_seconds < built.total_seconds);
        let gain = built.total_seconds - fast.total_seconds;
        let loss = no_sync.total_seconds - built.total_seconds;
        assert!(
            loss > gain,
            "diminishing returns past the existing hardware"
        );
    }

    #[test]
    fn prefetch_unit_pays_for_itself() {
        let scenarios = run();
        let built = &scenarios[0];
        let no_pfu = &scenarios[3];
        assert!(
            no_pfu.total_seconds > built.total_seconds + 30.0,
            "losing the PFU must cost tens of seconds across the workload: {} vs {}",
            no_pfu.total_seconds,
            built.total_seconds
        );
        assert!(no_pfu.geomean_improvement < built.geomean_improvement);
    }
}
