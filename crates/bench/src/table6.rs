//! Table 6: restructuring efficiency — how many codes each machine's
//! automatic/automatable restructuring places in each performance
//! band.

use cedar_baselines::ymp;
use cedar_metrics::bands::{classify_efficiency, PerfBand};
use cedar_perfect::manual::{table6_cedar_efficiencies, MACHINE_CES};
use cedar_perfect::model::ExecutionModel;

use crate::paper_machine;

/// A machine's band census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Census {
    /// High-band codes (E_P > .5).
    pub high: usize,
    /// Intermediate codes (E_P > 1/(2 log P)).
    pub intermediate: usize,
    /// Unacceptable codes.
    pub unacceptable: usize,
}

/// The regenerated table: (Cedar, YMP) censuses.
#[must_use]
pub fn run() -> (Census, Census) {
    let mut sys = paper_machine();
    let model = ExecutionModel::calibrate(&mut sys);
    let mut cedar = Census {
        high: 0,
        intermediate: 0,
        unacceptable: 0,
    };
    for p in table6_cedar_efficiencies(&model) {
        match classify_efficiency(p.efficiency, MACHINE_CES) {
            PerfBand::High => cedar.high += 1,
            PerfBand::Intermediate => cedar.intermediate += 1,
            PerfBand::Unacceptable => cedar.unacceptable += 1,
        }
    }
    let (h, i, u) = ymp::band_census(&ymp::TABLE6_EFFICIENCIES);
    (
        cedar,
        Census {
            high: h,
            intermediate: i,
            unacceptable: u,
        },
    )
}

/// Prints the regenerated table.
pub fn print() {
    let (cedar, ymp_census) = run();
    println!("Table 6: Restructuring efficiency (band census over 13 Perfect codes)");
    println!(
        "{:24} {:>8} {:>10}",
        "Performance level", "Cedar", "Cray YMP"
    );
    println!(
        "{:24} {:>8} {:>10}",
        "High (Ep > .5)", cedar.high, ymp_census.high
    );
    println!(
        "{:24} {:>8} {:>10}",
        "Intermediate", cedar.intermediate, ymp_census.intermediate
    );
    println!(
        "{:24} {:>8} {:>10}",
        "Unacceptable", cedar.unacceptable, ymp_census.unacceptable
    );
    println!("\npaper: Cedar 1 / 9 / 3, Cray YMP 0 / 6 / 7");
}
