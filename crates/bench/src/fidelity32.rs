//! Network-fidelity study: the regular 64-position omega the main
//! model uses versus the production 32×32 dual-link network.
//!
//! EXPERIMENTS.md flags one simplification in the main model: the real
//! machine's network had two parallel links between every switch pair
//! and adaptive choice between them. This study runs the same
//! closed-loop 32-word-block read workload on both networks and
//! reports the latency/interarrival gap — quantifying how much of the
//! Table 2 32-CE latency overshoot the simplification explains.

use cedar_net::cedar32::run_dual_link_experiment;
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};

/// One side-by-side measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityRow {
    /// Active CEs.
    pub ces: usize,
    /// Regular-omega latency / interarrival (CE cycles).
    pub omega: (f64, f64),
    /// Dual-link latency / interarrival (CE cycles).
    pub dual_link: (f64, f64),
}

/// The CE counts studied.
pub const CES: [usize; 3] = [8, 16, 32];

/// Runs both networks on the block-read workload, one fresh pair of
/// fabrics per CE count, fanned out over [`cedar_exec::run_sweep`].
#[must_use]
pub fn run() -> Vec<FidelityRow> {
    cedar_exec::run_sweep(CES.to_vec(), |ces| {
        let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
        let mut traffic = PrefetchTraffic::compiler_default(16);
        traffic.gap_ce_cycles = 0;
        let omega_report = fabric.run_prefetch_experiment(ces, traffic, 32_000_000);
        let dual = run_dual_link_experiment(ces, 16, 2);
        FidelityRow {
            ces,
            omega: (
                omega_report.mean_first_word_latency_ce(),
                omega_report.mean_interarrival_ce(),
            ),
            dual_link: (dual.latency, dual.interarrival),
        }
    })
}

/// Prints the study.
pub fn print() {
    println!("Network fidelity: regular 64-port omega vs production 32x32 dual-link");
    println!("(same closed-loop 32-word block reads; latency/interarrival in CE cycles)");
    println!(
        "{:>5} {:>16} {:>16}",
        "CEs", "omega lat/int", "dual-link lat/int"
    );
    for row in run() {
        println!(
            "{:>5} {:>9.1}/{:<6.2} {:>9.1}/{:<6.2}",
            row.ces, row.omega.0, row.omega.1, row.dual_link.0, row.dual_link.1
        );
    }
    println!("\nFinding: the two networks perform essentially identically on this");
    println!("workload — the path diversity of the production dual-link design");
    println!("does not move the 32-CE numbers. The documented omega simplification");
    println!("therefore costs ~nothing, and the Table 2 latency overshoot is a");
    println!("memory-side effect, consistent with the [Turn93] ablation where");
    println!("doubling the module service rate removes the degradation.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_link_is_never_slower_at_scale() {
        let rows = run();
        let at32 = rows.iter().find(|r| r.ces == 32).unwrap();
        assert!(
            at32.dual_link.0 <= at32.omega.0 * 1.1,
            "path diversity must not hurt: dual {} vs omega {}",
            at32.dual_link.0,
            at32.omega.0
        );
    }

    #[test]
    fn both_networks_start_near_the_minimum() {
        let rows = run();
        let at8 = rows.iter().find(|r| r.ces == 8).unwrap();
        assert!((7.5..12.0).contains(&at8.omega.0), "omega {}", at8.omega.0);
        assert!(
            (7.5..12.0).contains(&at8.dual_link.0),
            "dual {}",
            at8.dual_link.0
        );
    }
}
