//! Regenerates the paper's ablation_vm experiment. Run with
//! `cargo run --release -p cedar-bench --bin ablation_vm`.

fn main() {
    cedar_bench::ablation_vm::print();
}
