//! Regenerates the paper's ablation_network experiment. Run with
//! `cargo run --release -p cedar-bench --bin ablation_network`.

fn main() {
    cedar_bench::ablation_network::print();
}
