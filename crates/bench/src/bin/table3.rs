//! Regenerates the paper's table3 experiment. Run with
//! `cargo run --release -p cedar-bench --bin table3`.

fn main() {
    cedar_bench::table3::print();
}
