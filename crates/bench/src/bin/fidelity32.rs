//! Runs the network-fidelity study. Run with
//! `cargo run --release -p cedar-bench --bin fidelity32`.

fn main() {
    cedar_bench::fidelity32::print();
}
