//! Regenerates the paper's overheads experiment. Run with
//! `cargo run --release -p cedar-bench --bin overheads`.

fn main() {
    cedar_bench::overheads::print();
}
