//! Regenerates the paper's table2 experiment. Run with
//! `cargo run --release -p cedar-bench --bin table2 -- [--cache DIR]`.
//!
//! `--cache DIR` serves already-measured `(kernel, CE-count)` cells
//! from a content-addressed result cache and stores fresh ones, so
//! repeated invocations (CI, sweeps over other knobs) skip the fabric
//! simulations entirely. The output is byte-identical either way.

fn main() {
    let mut cache_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => cache_dir = Some(args.next().expect("--cache requires a directory")),
            other => {
                eprintln!("unknown argument {other:?}; usage: table2 [--cache DIR]");
                std::process::exit(2);
            }
        }
    }
    let cache = cache_dir.map(|dir| cedar_snap::CacheDir::new(dir).expect("open cache dir"));
    print!("{}", cedar_bench::table2::report_cached(cache.as_ref()));
}
