//! Regenerates the paper's table2 experiment. Run with
//! `cargo run --release -p cedar-bench --bin table2`.

fn main() {
    cedar_bench::table2::print();
}
