//! Renders the paper's Figures 1 and 2 (machine and cluster
//! organization). Run with `cargo run -p cedar-bench --bin figures`.

fn main() {
    cedar_bench::figures::print();
}
