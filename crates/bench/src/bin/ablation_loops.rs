//! Regenerates the ablation_loops study. Run with
//! `cargo run --release -p cedar-bench --bin ablation_loops`.

fn main() {
    cedar_bench::ablation_loops::print();
}
