//! Regenerates the paper's table5 experiment. Run with
//! `cargo run --release -p cedar-bench --bin table5`.

fn main() {
    cedar_bench::table5::print();
}
