//! Regenerates the paper's ppt4 experiment. Run with
//! `cargo run --release -p cedar-bench --bin ppt4`.

fn main() {
    cedar_bench::ppt4::print();
}
