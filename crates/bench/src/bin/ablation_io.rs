//! Regenerates the ablation_io study. Run with
//! `cargo run --release -p cedar-bench --bin ablation_io`.

fn main() {
    cedar_bench::ablation_io::print();
}
