//! Request-path trace study with exporter output. Run with
//! `cargo run --release -p cedar-bench --bin trace -- [--smoke] [--out DIR]`.
//!
//! Without flags: runs the full healthy + fault-injected study and
//! prints the per-stage latency breakdown. `--out DIR` additionally
//! writes `trace.chrome.json`, `trace.faulted.chrome.json` (load in
//! Perfetto / `chrome://tracing`) and `trace.prom` (Prometheus text
//! exposition) into `DIR`. `--smoke` runs a two-CE healthy study and
//! only validates the exports — the CI guard. Exits nonzero if any
//! export fails validation.

use std::path::PathBuf;
use std::process::ExitCode;

use cedar_bench::trace;
use cedar_obs::export::{parse_prometheus, validate_json};

fn validate(study: &trace::TraceStudy, label: &str) -> Result<(), String> {
    validate_json(&study.chrome_json).map_err(|e| format!("{label}: bad Chrome JSON: {e}"))?;
    parse_prometheus(&study.prometheus).map_err(|e| format!("{label}: bad exposition: {e}"))?;
    if study.failed > 0 {
        return Err(format!("{label}: {} requests abandoned", study.failed));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut smoke = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                let dir = args.next().ok_or("--out needs a directory")?;
                out_dir = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    if smoke {
        let study = trace::smoke();
        validate(&study, "smoke")?;
        println!(
            "trace smoke ok: {} events, {} requests, exports validate",
            study.events.len(),
            study.requests
        );
        return Ok(());
    }

    let healthy = trace::healthy();
    validate(&healthy, "healthy")?;
    let faulted = trace::faulted();
    validate(&faulted, "faulted")?;
    trace::print();

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        for (name, data) in [
            ("trace.chrome.json", &healthy.chrome_json),
            ("trace.faulted.chrome.json", &faulted.chrome_json),
            ("trace.prom", &healthy.prometheus),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, data).map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!("wrote {}", path.display());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace: {msg}");
            ExitCode::FAILURE
        }
    }
}
