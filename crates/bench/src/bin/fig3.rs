//! Regenerates the paper's fig3 experiment. Run with
//! `cargo run --release -p cedar-bench --bin fig3`.

fn main() {
    cedar_bench::fig3::print();
}
