//! Regenerates the paper's table4 experiment. Run with
//! `cargo run --release -p cedar-bench --bin table4`.

fn main() {
    cedar_bench::table4::print();
}
