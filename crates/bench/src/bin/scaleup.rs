//! Runs the scaled-up Cedar study (PPT5 exploration). Run with
//! `cargo run --release -p cedar-bench --bin scaleup`.

fn main() {
    cedar_bench::scaleup::print();
}
