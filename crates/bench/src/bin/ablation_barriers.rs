//! Regenerates the ablation_barriers study. Run with
//! `cargo run --release -p cedar-bench --bin ablation_barriers`.

fn main() {
    cedar_bench::ablation_barriers::print();
}
