//! Regenerates the paper's table1 experiment. Run with
//! `cargo run --release -p cedar-bench --bin table1`.

fn main() {
    cedar_bench::table1::print();
}
