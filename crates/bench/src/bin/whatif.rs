//! Runs the Perfect-workload machine what-ifs. Run with
//! `cargo run --release -p cedar-bench --bin whatif`.

fn main() {
    cedar_bench::whatif::print();
}
