//! Tracked performance baseline.
//!
//! Times the reference runs the repository's wall-clock cost hangs on
//! — the healthy Table-2 fabric experiment, the 2%-faulted
//! telemetry-instrumented trace run, and the hot-spot sweep — plus the
//! sweep executor serial vs parallel, and writes the measurements to
//! `BENCH_perf.json` so perf regressions show up as a diff instead of
//! a feeling.
//!
//! ```text
//! perf [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks every workload to CI-checkable size (seconds, not
//! minutes); `--out` overrides the output path. All simulated results
//! are deterministic; only the timings vary run to run.

use std::fmt::Write as _;
use std::time::Instant;

use cedar_bench::{hotspot, trace};
use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::fabric::{FabricConfig, PrefetchTraffic, RoundTripFabric};
use cedar_obs::{Obs, ObsConfig};

/// One timed reference run.
struct RefRun {
    name: &'static str,
    wall_ms: f64,
    /// Simulated network cycles, where the workload has a single
    /// fabric clock to report (the sweep does not).
    sim_cycles: Option<u64>,
}

impl RefRun {
    fn cycles_per_sec(&self) -> Option<f64> {
        self.sim_cycles.map(|c| c as f64 / (self.wall_ms / 1000.0))
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_perf.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument {other:?}; usage: perf [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let threads = cedar_exec::threads();
    let mut runs = Vec::new();

    // Healthy Table-2 reference: the RK prefetch stream, the heaviest
    // global-memory customer in the paper's Table 2.
    let (ces, blocks) = if smoke { (8, 4) } else { (32, 16) };
    let started = Instant::now();
    let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
    let report =
        fabric.run_prefetch_experiment(ces, PrefetchTraffic::rk_aggressive(blocks), 64_000_000);
    assert!(report.completed(), "reference traffic must drain");
    runs.push(RefRun {
        name: "table2_rk_prefetch",
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        sim_cycles: Some(report.total_net_cycles),
    });

    // 2%-faulted trace run: the degraded fabric with full telemetry
    // attached — the most allocation- and branch-heavy configuration
    // the request path has.
    let trace_ces = if smoke { 2 } else { trace::CES };
    let started = Instant::now();
    let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
    let plan = FaultPlan::generate(
        &FaultConfig::degraded(trace::SEED, trace::FAULT_RATE),
        &MachineShape::cedar(),
    )
    .expect("trace study config is valid");
    fabric.attach_faults(plan, RetryPolicy::fabric());
    let obs = Obs::new(ObsConfig::enabled());
    fabric.set_obs(&obs);
    let report = fabric.run_prefetch_experiment(trace_ces, trace::traffic(), trace::MAX_NET_CYCLES);
    assert!(report.completed(), "faulted trace traffic must drain");
    runs.push(RefRun {
        name: "faulted_trace",
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        sim_cycles: Some(report.total_net_cycles),
    });

    // The hot-spot sweep, serial then parallel: the executor's
    // speedup on real sweep work, not a microbenchmark.
    let saved_threads = std::env::var(cedar_exec::THREADS_ENV).ok();
    std::env::set_var(cedar_exec::THREADS_ENV, "1");
    let started = Instant::now();
    let serial_points = hotspot::run();
    let serial_ms = started.elapsed().as_secs_f64() * 1000.0;
    match &saved_threads {
        Some(v) => std::env::set_var(cedar_exec::THREADS_ENV, v),
        None => std::env::remove_var(cedar_exec::THREADS_ENV),
    }
    let started = Instant::now();
    let parallel_points = hotspot::run();
    let parallel_ms = started.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        serial_points, parallel_points,
        "determinism contract broken"
    );
    runs.push(RefRun {
        name: "hotspot_sweep",
        wall_ms: parallel_ms,
        sim_cycles: None,
    });
    let speedup = serial_ms / parallel_ms;

    let peak_rss_kb = peak_rss_kb();
    let json = render_json(
        smoke,
        threads,
        peak_rss_kb,
        &runs,
        serial_ms,
        parallel_ms,
        speedup,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_perf.json");

    println!("perf baseline ({} mode, {threads} threads)", mode(smoke));
    for r in &runs {
        match r.cycles_per_sec() {
            Some(rate) => println!(
                "  {:<22} {:>9.1} ms  {:>12} net cycles  {:>10.2e} cycles/s",
                r.name,
                r.wall_ms,
                r.sim_cycles.unwrap_or(0),
                rate
            ),
            None => println!("  {:<22} {:>9.1} ms", r.name, r.wall_ms),
        }
    }
    println!(
        "  sweep serial {serial_ms:.1} ms / parallel {parallel_ms:.1} ms = {speedup:.2}x on {threads} threads"
    );
    match peak_rss_kb {
        Some(kb) => println!("  peak RSS {kb} kB"),
        None => println!("  peak RSS unavailable (/proc not readable)"),
    }
    println!("  wrote {out_path}");
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

/// Peak resident set size in kB, from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    threads: usize,
    peak_rss_kb: Option<u64>,
    runs: &[RefRun],
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"cedar-bench-perf/1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    match peak_rss_kb {
        Some(kb) => {
            let _ = writeln!(out, "  \"peak_rss_kb\": {kb},");
        }
        None => {
            let _ = writeln!(out, "  \"peak_rss_kb\": null,");
        }
    }
    let _ = writeln!(out, "  \"reference_runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let cycles = r
            .sim_cycles
            .map_or_else(|| "null".into(), |c| c.to_string());
        let rate = r
            .cycles_per_sec()
            .map_or_else(|| "null".into(), |c| format!("{c:.0}"));
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_cycles\": {}, \"sim_cycles_per_sec\": {}}}{}",
            r.name, r.wall_ms, cycles, rate, comma
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sweep_suite\": {{");
    let _ = writeln!(out, "    \"name\": \"hotspot_sweep\",");
    let _ = writeln!(out, "    \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(out, "    \"parallel_ms\": {parallel_ms:.3},");
    let _ = writeln!(out, "    \"threads\": {threads},");
    let _ = writeln!(out, "    \"speedup\": {speedup:.3}");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}
