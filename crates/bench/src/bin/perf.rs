//! Tracked performance baseline.
//!
//! Times the reference runs the repository's wall-clock cost hangs on
//! — the healthy Table-2 fabric experiment, the 2%-faulted
//! telemetry-instrumented trace run, and the hot-spot sweep — plus the
//! sweep executor serial vs parallel, and writes the measurements to
//! `BENCH_perf.json` so perf regressions show up as a diff instead of
//! a feeling.
//!
//! ```text
//! perf [--smoke] [--out PATH] [--cache DIR] [--track HISTORY]
//! perf --compare COLD_JSON WARM_JSON [--compare-out PATH]
//! ```
//!
//! `--smoke` shrinks every workload to CI-checkable size (seconds, not
//! minutes); `--out` overrides the output path. All simulated results
//! are deterministic; only the timings vary run to run.
//!
//! `--cache DIR` keys every reference run's full configuration into a
//! content-addressed snapshot cache: a warm second invocation loads
//! the simulated results from disk instead of re-simulating, which is
//! what the CI cache job measures. Simulated fields (`sim_cycles`) are
//! byte-identical between cold and warm runs by construction.
//!
//! `--compare COLD WARM` reads two `BENCH_perf.json` files written by
//! this binary, asserts the warm run's reference wall-clock is at
//! least 5x faster than the cold run's, and asserts every simulated
//! result field is identical; exits nonzero with a diff on failure.
//! `--compare-out PATH` additionally writes the cold/warm timings as a
//! `cedar-bench-compare/1` report `track append --compare` can ingest.
//!
//! `--track HISTORY` appends the finished report to the cedar-track
//! benchmark history (one stamped JSONL line; see `crates/track`).
//! Every report is stamped with the git commit and an ISO-8601 UTC
//! timestamp, overridable via `CEDAR_TRACK_COMMIT` /
//! `CEDAR_TRACK_TIMESTAMP` for hermetic runs.

use std::fmt::Write as _;
use std::time::Instant;

use cedar_bench::{hotspot, trace};
use cedar_faults::{FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar_net::fabric::{FabricConfig, FabricReport, PrefetchTraffic, RoundTripFabric};
use cedar_net::EngineKind;
use cedar_obs::{Obs, ObsConfig};
use cedar_snap::{CacheDir, Snapshot};

/// Thread count of the baseline's pinned parallel sweep pass.
const PARALLEL_THREADS: usize = 4;

/// One timed reference run.
struct RefRun {
    name: &'static str,
    /// Which execution engine drove the run: `"specialized"`,
    /// `"generic"`, or `"n/a"` for suites without a single fabric.
    engine: &'static str,
    wall_ms: f64,
    /// Simulated network cycles, where the workload has a single
    /// fabric clock to report (the sweep does not).
    sim_cycles: Option<u64>,
}

impl RefRun {
    fn cycles_per_sec(&self) -> Option<f64> {
        self.sim_cycles.map(|c| c as f64 / (self.wall_ms / 1000.0))
    }
}

/// Loads a reference run's report from the cache, or measures it and
/// stores the result. Cache keys are content-addressed over the run's
/// complete configuration, so any config change is automatically a
/// miss.
fn run_or_load<K: Snapshot>(
    cache: Option<&CacheDir>,
    namespace: &str,
    config: &K,
    run: impl FnOnce() -> FabricReport,
) -> FabricReport {
    let key = config.snapshot_key(namespace);
    if let Some(cache) = cache {
        if let Some(hit) = cache.load::<FabricReport>(&key) {
            return hit;
        }
    }
    let report = run();
    if let Some(cache) = cache {
        let _ = cache.store(&key, &report);
    }
    report
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_perf.json");
    let mut cache_dir: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut compare_out: Option<String> = None;
    let mut track: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--cache" => cache_dir = Some(args.next().expect("--cache requires a directory")),
            "--track" => track = Some(args.next().expect("--track requires a path")),
            "--compare" => {
                let cold = args.next().expect("--compare requires COLD and WARM paths");
                let warm = args.next().expect("--compare requires COLD and WARM paths");
                compare = Some((cold, warm));
            }
            "--compare-out" => {
                compare_out = Some(args.next().expect("--compare-out requires a path"));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: perf [--smoke] [--out PATH] [--cache DIR] [--track HISTORY] | perf --compare COLD WARM [--compare-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some((cold, warm)) = compare {
        std::process::exit(compare_baselines(&cold, &warm, compare_out.as_deref()));
    }

    let cache = cache_dir.map(|dir| CacheDir::new(dir).expect("open cache dir"));
    let cache = cache.as_ref();
    let threads = cedar_exec::threads();
    let mut runs = Vec::new();

    // Healthy Table-2 reference: the RK prefetch stream, the heaviest
    // global-memory customer in the paper's Table 2. Measured on both
    // execution engines — the specialized row is the headline number,
    // and the paired generic row keeps the engine speedup visible in
    // every baseline.
    let (ces, blocks) = if smoke { (8u64, 4) } else { (32u64, 16) };
    let traffic = PrefetchTraffic::rk_aggressive(blocks);
    let cfg = FabricConfig::cedar();
    // Cold runs time each engine best-of-3: single-shot wall clocks on
    // a shared host swing ±30%, which is wider than the regression
    // band the engine-ratio assert guards. Warm (cached) runs time the
    // cache, not the engine — one rep is the honest measurement there.
    let reps = if cache.is_none() { 3 } else { 1 };
    let time_engine = |engine: EngineKind, namespace: &str| {
        let mut best_ms = f64::INFINITY;
        let mut report = None;
        for _ in 0..reps {
            let started = Instant::now();
            let r = run_or_load(
                cache,
                namespace,
                &((cfg.clone(), ces), (traffic, 64_000_000u64)),
                || {
                    let mut fabric = RoundTripFabric::new(cfg.clone());
                    fabric.set_engine(engine);
                    let report = fabric.run_prefetch_experiment(ces as usize, traffic, 64_000_000);
                    if engine == EngineKind::Specialized {
                        assert_eq!(
                            fabric.last_run_engine(),
                            Some("specialized"),
                            "reference shape must stay specialization-eligible"
                        );
                    }
                    report
                },
            );
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1000.0);
            report = Some(r);
        }
        (best_ms, report.expect("at least one rep"))
    };
    let (spec_ms, spec_report) = time_engine(EngineKind::Specialized, "perf.table2_rk_spec/1");
    let (gen_ms, gen_report) = time_engine(EngineKind::Generic, "perf.table2_rk/1");
    assert!(spec_report.completed(), "reference traffic must drain");
    assert_eq!(
        spec_report, gen_report,
        "engines disagree on the reference run — bit-identity broken"
    );
    runs.push(RefRun {
        name: "table2_rk_prefetch",
        engine: "specialized",
        wall_ms: spec_ms,
        sim_cycles: Some(spec_report.total_net_cycles),
    });
    runs.push(RefRun {
        name: "table2_rk_prefetch_generic",
        engine: "generic",
        wall_ms: gen_ms,
        sim_cycles: Some(gen_report.total_net_cycles),
    });
    let engine_speedup = gen_ms / spec_ms;
    // The specialized engine's whole reason to exist. The honest
    // measured ratio on this host is ~4.5-5x (the run is memory-module
    // bound once backpressure saturates, so the network stepping the
    // engine specializes is only part of the wall clock); the floor
    // sits below the observed band with margin for shared-host noise,
    // not at a wished-for number. Only meaningful cold and at full
    // scale — smoke runs are too short to time.
    if cache.is_none() && !smoke {
        assert!(
            engine_speedup >= 3.0,
            "specialized engine regressed: {gen_ms:.1} ms generic vs {spec_ms:.1} ms \
             specialized ({engine_speedup:.2}x, need >= 3.0x)"
        );
    }

    // 2%-faulted trace run: the degraded fabric with full telemetry
    // attached — the most allocation- and branch-heavy configuration
    // the request path has.
    let trace_ces = if smoke { 2u64 } else { trace::CES as u64 };
    let started = Instant::now();
    let report = run_or_load(
        cache,
        "perf.faulted_trace/1",
        &(
            (trace::SEED, trace::FAULT_RATE),
            (trace_ces, trace::MAX_NET_CYCLES),
            trace::traffic(),
        ),
        || {
            let mut fabric = RoundTripFabric::new(FabricConfig::cedar());
            let plan = FaultPlan::generate(
                &FaultConfig::degraded(trace::SEED, trace::FAULT_RATE),
                &MachineShape::cedar(),
            )
            .expect("trace study config is valid");
            fabric.attach_faults(plan, RetryPolicy::fabric());
            let obs = Obs::new(ObsConfig::enabled());
            fabric.set_obs(&obs);
            fabric.run_prefetch_experiment(
                trace_ces as usize,
                trace::traffic(),
                trace::MAX_NET_CYCLES,
            )
        },
    );
    assert!(report.completed(), "faulted trace traffic must drain");
    runs.push(RefRun {
        name: "faulted_trace",
        // Faults and telemetry are both outside the specialized
        // family; this row pins the generic path's cost.
        engine: "generic",
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
        sim_cycles: Some(report.total_net_cycles),
    });

    // The hot-spot sweep, serial then parallel: the executor's
    // speedup on real sweep work, not a microbenchmark. Both passes
    // pin their thread count explicitly — serial at 1, parallel at
    // [`PARALLEL_THREADS`] — so the baseline always records a real
    // parallel run, whatever `CEDAR_THREADS` the environment carries.
    // (With a warm cache both passes serve hits, so the speedup
    // collapses to ~1 — the comparator only checks simulated fields.)
    let saved_threads = std::env::var(cedar_exec::THREADS_ENV).ok();
    std::env::set_var(cedar_exec::THREADS_ENV, "1");
    let started = Instant::now();
    let serial_points = hotspot::run_cached(cache);
    let serial_ms = started.elapsed().as_secs_f64() * 1000.0;
    std::env::set_var(cedar_exec::THREADS_ENV, PARALLEL_THREADS.to_string());
    let started = Instant::now();
    let parallel_points = hotspot::run_cached(cache);
    let parallel_ms = started.elapsed().as_secs_f64() * 1000.0;
    match &saved_threads {
        Some(v) => std::env::set_var(cedar_exec::THREADS_ENV, v),
        None => std::env::remove_var(cedar_exec::THREADS_ENV),
    }
    assert_eq!(
        serial_points, parallel_points,
        "determinism contract broken"
    );
    runs.push(RefRun {
        name: "hotspot_sweep",
        engine: "n/a",
        wall_ms: parallel_ms,
        sim_cycles: None,
    });
    let speedup = serial_ms / parallel_ms;
    // The pool must never make a cold sweep slower than serial on real
    // hardware, and with the full PARALLEL_THREADS complement of real
    // cores the batched-stealing deques must deliver real scaling.
    // Only meaningful when the work was actually simulated (cold
    // cache) on a machine with cores to use; the recorded `cores`
    // field lets history consumers apply the same gate.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cache.is_none() && cores >= PARALLEL_THREADS {
        assert!(
            speedup >= 2.5,
            "parallel sweep under-scaled: {serial_ms:.1} ms serial vs \
             {parallel_ms:.1} ms on {PARALLEL_THREADS} threads ({speedup:.2}x on \
             {cores} cores, need >= 2.5x)"
        );
    } else if cache.is_none() && cores >= 2 {
        assert!(
            speedup >= 0.85,
            "parallel sweep regressed below serial: {serial_ms:.1} ms serial vs \
             {parallel_ms:.1} ms on {PARALLEL_THREADS} threads ({speedup:.2}x, {cores} cores)"
        );
    }

    let peak_rss_kb = peak_rss_kb();
    let commit = cedar_track::meta::commit_id();
    let timestamp = cedar_track::meta::timestamp();
    let json = render_json(
        smoke,
        &commit,
        &timestamp,
        threads,
        peak_rss_kb,
        &runs,
        engine_speedup,
        serial_ms,
        parallel_ms,
        speedup,
        cores,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_perf.json");

    if let Some(history) = &track {
        let ingested = cedar_track::ingest::perf_report(&json).expect("ingest own report");
        let entry = cedar_track::ingest::build_entry(
            &[ingested],
            commit.clone(),
            timestamp.clone(),
            cedar_track::meta::host_fingerprint(),
            None,
        )
        .expect("build history entry");
        cedar_track::history::append(std::path::Path::new(history), &entry)
            .expect("append to benchmark history");
        println!("  tracked {} metrics to {history}", entry.metrics.len());
    }

    println!("perf baseline ({} mode, {threads} threads)", mode(smoke));
    for r in &runs {
        match r.cycles_per_sec() {
            Some(rate) => println!(
                "  {:<28} {:>9.1} ms  {:>12} net cycles  {:>10.2e} cycles/s  [{}]",
                r.name,
                r.wall_ms,
                r.sim_cycles.unwrap_or(0),
                rate,
                r.engine
            ),
            None => println!("  {:<28} {:>9.1} ms", r.name, r.wall_ms),
        }
    }
    println!("  engine specialized vs generic = {engine_speedup:.2}x on the reference run");
    println!(
        "  sweep serial {serial_ms:.1} ms / parallel {parallel_ms:.1} ms = {speedup:.2}x on {PARALLEL_THREADS} threads ({cores} cores)"
    );
    match peak_rss_kb {
        Some(kb) => println!("  peak RSS {kb} kB"),
        None => println!("  peak RSS unavailable (/proc not readable)"),
    }
    println!("  wrote {out_path}");
}

/// One reference-run row parsed back out of a `BENCH_perf.json`.
struct ParsedRun {
    name: String,
    wall_ms: f64,
    sim_cycles: Option<u64>,
}

/// Extracts the raw value text of `"key": <value>` from a JSON line
/// written by [`render_json`]. This is not a JSON parser; it only
/// reads the rigid single-line rows this binary itself emits.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|&(_, c)| c == ',' || c == '}')
        .map_or(rest.len(), |(i, _)| i);
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse_runs(path: &str) -> Vec<ParsedRun> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
    text.lines()
        .filter(|l| l.contains("\"wall_ms\""))
        .map(|l| ParsedRun {
            name: field(l, "name").expect("run row has a name").to_string(),
            wall_ms: field(l, "wall_ms")
                .and_then(|v| v.parse().ok())
                .expect("run row has wall_ms"),
            sim_cycles: match field(l, "sim_cycles") {
                None | Some("null") => None,
                Some(v) => Some(v.parse().expect("sim_cycles is integral")),
            },
        })
        .collect()
}

/// Compares a cold and a warm baseline: every simulated result field
/// must be identical, and the warm run's total reference wall-clock
/// must be at least 5x faster. Returns the process exit code. When
/// `out` is given, also writes a `cedar-bench-compare/1` report with
/// the cold/warm timings (regardless of verdict — the history should
/// record slow caches too).
fn compare_baselines(cold_path: &str, warm_path: &str, out: Option<&str>) -> i32 {
    let cold = parse_runs(cold_path);
    let warm = parse_runs(warm_path);
    let mut failures = 0;
    if cold.len() != warm.len() || cold.is_empty() {
        eprintln!(
            "FAIL: baseline shape mismatch: {} runs in {cold_path}, {} in {warm_path}",
            cold.len(),
            warm.len()
        );
        return 1;
    }
    for (c, w) in cold.iter().zip(&warm) {
        if c.name != w.name {
            eprintln!("FAIL: run order mismatch: {} vs {}", c.name, w.name);
            failures += 1;
            continue;
        }
        if c.sim_cycles != w.sim_cycles {
            eprintln!(
                "FAIL: {}: sim_cycles {:?} (cold) != {:?} (warm) — cache returned a different simulated result",
                c.name, c.sim_cycles, w.sim_cycles
            );
            failures += 1;
        }
    }
    let cold_ms: f64 = cold.iter().map(|r| r.wall_ms).sum();
    let warm_ms: f64 = warm.iter().map(|r| r.wall_ms).sum();
    let ratio = cold_ms / warm_ms;
    if let Some(path) = out {
        let mode = baseline_mode(cold_path);
        let report = format!(
            "{{\n  \"schema\": \"cedar-bench-compare/1\",\n  \"mode\": \"{mode}\",\n  \"cold_ms\": {cold_ms:.3},\n  \"warm_ms\": {warm_ms:.3},\n  \"warm_speedup\": {ratio:.3}\n}}\n"
        );
        std::fs::write(path, report).expect("write compare report");
        println!("  wrote compare report to {path}");
    }
    if ratio < 5.0 {
        eprintln!(
            "FAIL: warm run only {ratio:.2}x faster ({cold_ms:.1} ms cold vs {warm_ms:.1} ms warm); need >= 5x"
        );
        failures += 1;
    } else {
        println!(
            "warm cache is {ratio:.1}x faster ({cold_ms:.1} ms cold vs {warm_ms:.1} ms warm), simulated fields identical"
        );
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

/// Reads the run mode back out of a written baseline, for stamping the
/// compare report with the scope its numbers came from.
fn baseline_mode(path: &str) -> &'static str {
    let smoke = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.contains("\"smoke\""))
                .and_then(|l| field(l, "smoke").map(|v| v == "true"))
        })
        .unwrap_or(false);
    mode(smoke)
}

fn mode(smoke: bool) -> &'static str {
    if smoke {
        "smoke"
    } else {
        "full"
    }
}

/// Peak resident set size in kB, from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    commit: &str,
    timestamp: &str,
    threads: usize,
    peak_rss_kb: Option<u64>,
    runs: &[RefRun],
    engine_speedup: f64,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    cores: usize,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"cedar-bench-perf/4\",");
    let _ = writeln!(
        out,
        "  \"commit\": \"{}\",",
        cedar_obs::export::escape_json(commit)
    );
    let _ = writeln!(out, "  \"timestamp\": \"{timestamp}\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    match peak_rss_kb {
        Some(kb) => {
            let _ = writeln!(out, "  \"peak_rss_kb\": {kb},");
        }
        None => {
            let _ = writeln!(out, "  \"peak_rss_kb\": null,");
        }
    }
    let _ = writeln!(out, "  \"reference_runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let cycles = r
            .sim_cycles
            .map_or_else(|| "null".into(), |c| c.to_string());
        let rate = r
            .cycles_per_sec()
            .map_or_else(|| "null".into(), |c| format!("{c:.0}"));
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"engine\": \"{}\", \"wall_ms\": {:.3}, \"sim_cycles\": {}, \"sim_cycles_per_sec\": {}}}{}",
            r.name, r.engine, r.wall_ms, cycles, rate, comma
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"engine_speedup\": {engine_speedup:.3},");
    let _ = writeln!(out, "  \"sweep_suite\": {{");
    let _ = writeln!(out, "    \"name\": \"hotspot_sweep\",");
    let _ = writeln!(out, "    \"serial_ms\": {serial_ms:.3},");
    let _ = writeln!(out, "    \"serial_threads\": 1,");
    let _ = writeln!(out, "    \"parallel_ms\": {parallel_ms:.3},");
    let _ = writeln!(out, "    \"threads\": {},", PARALLEL_THREADS);
    let _ = writeln!(out, "    \"cores\": {cores},");
    let _ = writeln!(out, "    \"speedup\": {speedup:.3}");
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    out
}
