//! Runs the synchronization hot-spot study. Run with
//! `cargo run --release -p cedar-bench --bin hotspot`.

fn main() {
    cedar_bench::hotspot::print();
}
