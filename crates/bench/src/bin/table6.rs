//! Regenerates the paper's table6 experiment. Run with
//! `cargo run --release -p cedar-bench --bin table6`.

fn main() {
    cedar_bench::table6::print();
}
