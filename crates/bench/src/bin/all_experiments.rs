//! Runs every table- and figure-regeneration experiment in sequence —
//! the one-shot reproduction of the paper's evaluation section.

fn main() {
    let line = "=".repeat(72);
    for (name, run) in [
        ("Figures 1 & 2", cedar_bench::figures::print as fn()),
        ("Table 1", cedar_bench::table1::print),
        ("Table 2", cedar_bench::table2::print),
        ("Table 3", cedar_bench::table3::print),
        ("Table 4", cedar_bench::table4::print),
        ("Table 5", cedar_bench::table5::print),
        ("Table 6", cedar_bench::table6::print),
        ("Figure 3", cedar_bench::fig3::print),
        ("PPT4 scalability", cedar_bench::ppt4::print),
        ("Loop overheads", cedar_bench::overheads::print),
        ("Network ablation", cedar_bench::ablation_network::print),
        ("VM ablation", cedar_bench::ablation_vm::print),
        (
            "Barrier ablation (FLO52)",
            cedar_bench::ablation_barriers::print,
        ),
        (
            "Loop-nest ablation (DYFESM)",
            cedar_bench::ablation_loops::print,
        ),
        ("I/O ablation (BDNA)", cedar_bench::ablation_io::print),
        ("Scale-up study (PPT5)", cedar_bench::scaleup::print),
        ("Sync hot-spot study", cedar_bench::hotspot::print),
        ("Perfect what-ifs", cedar_bench::whatif::print),
        (
            "Network fidelity (32x32 dual-link)",
            cedar_bench::fidelity32::print,
        ),
        ("Degraded-mode fault sweep", cedar_bench::degraded::print),
        ("Request-path trace study", cedar_bench::trace::print),
    ] {
        println!("{line}\n{name}\n{line}");
        run();
        println!();
    }
}
