//! The machine zoo report: every machine × every workload, judged by
//! all five Practical Parallelism Tests.
//!
//! ```text
//! zoo [--smoke] [--out PATH] [--cache DIR] [--track HISTORY] [--cells-out PATH]
//! ```
//!
//! Runs the full zoo sweep — 8 machines × 4 workloads as a cached
//! parallel `cedar-exec` sweep — prints the cross-machine PPT matrix,
//! and writes `BENCH_zoo.json` (`cedar-bench-zoo/1`). `--smoke`
//! shrinks the simulated workloads to CI size; `--cache DIR` serves
//! warm cells from the content-addressed cache; `--cells-out PATH`
//! dumps the raw cell snapshots so CI can `cmp` a warm run against a
//! cold one byte for byte; `--track HISTORY` appends the report to
//! the cedar-track benchmark history.
//!
//! Every judged number is deterministic; only the timing fields
//! (`wall_ms`, `points_per_sec`) vary run to run.

use std::fmt::Write as _;
use std::time::Instant;

use cedar_snap::{CacheDir, Snapshot};
use cedar_zoo::judge::MachineVerdict;
use cedar_zoo::{cell, judge};

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_zoo.json");
    let mut cache_dir: Option<String> = None;
    let mut track: Option<String> = None;
    let mut cells_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--cache" => cache_dir = Some(args.next().expect("--cache requires a directory")),
            "--track" => track = Some(args.next().expect("--track requires a path")),
            "--cells-out" => cells_out = Some(args.next().expect("--cells-out requires a path")),
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: zoo [--smoke] [--out PATH] [--cache DIR] [--track HISTORY] [--cells-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let cache = cache_dir.map(|dir| CacheDir::new(dir).expect("open cache dir"));
    let threads = cedar_exec::threads();

    let started = Instant::now();
    let cells = cell::run_cached(cache.as_ref(), smoke);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let points_per_sec = cells.len() as f64 / (wall_ms / 1000.0);

    if let Some(path) = &cells_out {
        let mut bytes = Vec::new();
        for c in &cells {
            bytes.extend(c.to_snapshot_bytes());
        }
        std::fs::write(path, &bytes).expect("write cell snapshots");
    }

    let verdicts = judge::judge(&cells, smoke);
    let gain = judge::combining_gain(&verdicts);
    // The acceptance criterion the combining machine exists to meet:
    // on hot traffic, fetch-and-add combining must beat the plain
    // omega it is built from.
    assert!(
        gain > 1.0,
        "combining network failed to beat the plain omega on the hotspot ({gain:.2}x)"
    );

    let commit = cedar_track::meta::commit_id();
    let timestamp = cedar_track::meta::timestamp();
    let json = render_json(
        smoke,
        &commit,
        &timestamp,
        threads,
        cells.len(),
        wall_ms,
        points_per_sec,
        gain,
        &verdicts,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_zoo.json");

    if let Some(history) = &track {
        let ingested = cedar_track::ingest::zoo_report(&json).expect("ingest own report");
        let entry = cedar_track::ingest::build_entry(
            &[ingested],
            commit.clone(),
            timestamp.clone(),
            cedar_track::meta::host_fingerprint(),
            None,
        )
        .expect("build history entry");
        cedar_track::history::append(std::path::Path::new(history), &entry)
            .expect("append to benchmark history");
        println!("  tracked {} metrics to {history}", entry.metrics.len());
    }

    println!(
        "machine zoo ({} mode, {threads} threads): {} cells in {wall_ms:.1} ms\n",
        if smoke { "smoke" } else { "full" },
        cells.len()
    );
    print!("{}", judge::render_report(&verdicts));
    println!("wrote {out_path}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    commit: &str,
    timestamp: &str,
    threads: usize,
    cells: usize,
    wall_ms: f64,
    points_per_sec: f64,
    combining_gain: f64,
    verdicts: &[MachineVerdict],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"cedar-bench-zoo/1\",");
    let _ = writeln!(
        out,
        "  \"commit\": \"{}\",",
        cedar_obs::export::escape_json(commit)
    );
    let _ = writeln!(out, "  \"timestamp\": \"{timestamp}\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"cells\": {cells},");
    let _ = writeln!(out, "  \"wall_ms\": {wall_ms:.3},");
    let _ = writeln!(out, "  \"points_per_sec\": {points_per_sec:.3},");
    let _ = writeln!(out, "  \"combining_gain\": {combining_gain:.4},");
    let _ = writeln!(out, "  \"machines\": [");
    for (i, v) in verdicts.iter().enumerate() {
        let comma = if i + 1 < verdicts.len() { "," } else { "" };
        let s = &v.summary;
        let b = |p: bool| u8::from(p);
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"processors\": {}, \"ppt1\": {}, \"ppt2\": {}, \"ppt3\": {}, \"ppt4\": {}, \"ppt5\": {}, \"passed\": {}, \"efficiency_score\": {:.4}, \"instability\": {:.3}, \"ppt5_score\": {:.4}, \"hotspot_retention\": {:.4}, \"words_combined\": {:.0}}}{}",
            v.machine.name(),
            v.machine.processors(),
            b(s.ppt1.passes),
            b(s.ppt2.passes),
            b(s.ppt3.passes),
            b(!s.ppt4.any_unacceptable && s.ppt4.size_stable),
            b(s.ppt5.passes),
            s.passed(),
            s.efficiency_score(),
            s.ppt2.report.instability,
            s.ppt5.score,
            v.hotspot_retention(),
            v.words_combined.iter().sum::<f64>(),
            comma
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
