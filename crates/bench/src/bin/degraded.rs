//! Degraded-mode sweep: Table 2's latency/bandwidth columns under
//! deterministic fault injection. Run with
//! `cargo run --release -p cedar-bench --bin degraded -- [--cache DIR] [--resume DIR]`.
//!
//! `--cache DIR` serves already-measured `(rate, CEs)` grid points from
//! a content-addressed result cache and stores fresh ones. `--resume
//! DIR` runs each point through the auto-checkpointing runner: the
//! experiment checkpoints into DIR periodically and a killed
//! invocation picks up from its last checkpoint instead of restarting.
//! Output is byte-identical in every mode.

fn main() {
    let mut cache_dir: Option<String> = None;
    let mut resume_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => cache_dir = Some(args.next().expect("--cache requires a directory")),
            "--resume" => resume_dir = Some(args.next().expect("--resume requires a directory")),
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: degraded [--cache DIR] [--resume DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    let cache = cache_dir.map(|dir| cedar_snap::CacheDir::new(dir).expect("open cache dir"));

    if let Some(dir) = resume_dir {
        // Resumable mode runs the grid serially so each point owns one
        // stable checkpoint file named by its coordinates; if a point's
        // result is already cached, its checkpointed run is skipped
        // like any other hit.
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create resume dir");
        let mut grid = Vec::new();
        for &rate in &cedar_bench::degraded::RATES {
            for &ces in &cedar_bench::degraded::CES {
                grid.push((rate, ces));
            }
        }
        let points = cedar_exec::run_sweep_cached_on(
            1,
            cache.as_ref(),
            cedar_bench::degraded::CACHE_NAMESPACE,
            grid,
            |(rate, ces)| {
                let ckpt = dir.join(format!("degraded-r{rate}-c{ces}.ckpt"));
                cedar_bench::degraded::measure_resumable(rate, ces, &ckpt)
            },
        );
        print!("{}", cedar_bench::degraded::render(&points));
        eprintln!(
            "(resumable mode: {} points checkpointed into {})",
            points.len(),
            dir.display()
        );
    } else {
        print!("{}", cedar_bench::degraded::report_cached(cache.as_ref()));
    }
}
