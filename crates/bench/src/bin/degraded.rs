//! Degraded-mode sweep: Table 2's latency/bandwidth columns under
//! deterministic fault injection. Run with
//! `cargo run --release -p cedar-bench --bin degraded`.

fn main() {
    cedar_bench::degraded::print();
}
