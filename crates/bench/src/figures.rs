//! Figures 1 and 2: machine and cluster organization, rendered from
//! the live parameter set with structural checks.

use cedar_core::params::CedarParams;
use cedar_core::topology::{render_figure1, render_figure2, PortMap};

/// Renders Figure 1 for the paper machine.
#[must_use]
pub fn figure1() -> String {
    render_figure1(&CedarParams::paper())
}

/// Renders Figure 2 for the paper machine.
#[must_use]
pub fn figure2() -> String {
    render_figure2(&CedarParams::paper())
}

/// Prints both figures plus the port map summary.
pub fn print() {
    let params = CedarParams::paper();
    println!("{}", figure1());
    println!();
    println!("{}", figure2());
    let map = PortMap::of(&params);
    println!(
        "\nport map: {} CE ports (0..{}), {} memory-module ports on a {}-position network",
        map.ce_ports.len(),
        map.ce_ports.len(),
        map.module_ports.len(),
        params.fabric.net.ports()
    );
}
