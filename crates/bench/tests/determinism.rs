//! Serial-vs-parallel determinism: the sweep executor's contract is
//! that `CEDAR_THREADS=1` and `CEDAR_THREADS=4` produce byte-identical
//! results. This lives in its own integration-test binary with a
//! single `#[test]` because it mutates the process environment, which
//! must not race with other tests in the same process.

use std::env;

#[test]
fn sweeps_are_identical_serial_and_parallel() {
    let saved = env::var(cedar_exec::THREADS_ENV).ok();

    env::set_var(cedar_exec::THREADS_ENV, "1");
    assert_eq!(cedar_exec::threads(), 1);
    let table2_serial = format!("{:?}", cedar_bench::table2::run());
    let degraded_serial = format!("{:?}", cedar_bench::degraded::run());

    env::set_var(cedar_exec::THREADS_ENV, "4");
    assert_eq!(cedar_exec::threads(), 4);
    let table2_parallel = format!("{:?}", cedar_bench::table2::run());
    let degraded_parallel = format!("{:?}", cedar_bench::degraded::run());

    match saved {
        Some(v) => env::set_var(cedar_exec::THREADS_ENV, v),
        None => env::remove_var(cedar_exec::THREADS_ENV),
    }

    assert_eq!(
        table2_serial, table2_parallel,
        "Table 2 diverged between 1 and 4 threads"
    );
    assert_eq!(
        degraded_serial, degraded_parallel,
        "degraded-mode sweep diverged between 1 and 4 threads"
    );
}
