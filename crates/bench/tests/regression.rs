//! Golden-value regression tests over the experiment harness: every
//! regenerated table is pinned to its current measured values (with
//! tolerance), so a change anywhere in the stack that silently shifts
//! a reproduced result fails here rather than drifting unnoticed.
//! EXPERIMENTS.md records these same numbers next to the paper's.

fn within(measured: f64, golden: f64, rel: f64) -> bool {
    (measured - golden).abs() <= rel * golden.abs()
}

#[test]
fn table1_golden() {
    let rows = cedar_bench::table1::run();
    let golden: [(&str, [f64; 4]); 3] = [
        ("GM/no pref", [14.1, 28.3, 41.1, 53.8]),
        ("GM/pref", [50.8, 100.6, 119.8, 132.1]),
        ("GM/Cache", [52.1, 104.3, 156.4, 208.6]),
    ];
    for (row, (label, values)) in rows.iter().zip(golden.iter()) {
        assert_eq!(row.label, *label);
        for (m, g) in row.mflops.iter().zip(values.iter()) {
            assert!(
                within(*m, *g, 0.05),
                "{label}: measured {m} drifted from golden {g}"
            );
        }
    }
}

#[test]
fn table2_golden() {
    let rows = cedar_bench::table2::run();
    // (kernel, latency[3], interarrival[3]) as currently measured.
    let golden: [(&str, [f64; 3], [f64; 3]); 4] = [
        ("TM", [8.4, 8.6, 21.1], [1.1, 1.3, 2.1]),
        ("CG", [8.5, 9.3, 21.5], [1.0, 1.3, 2.1]),
        ("VF", [8.4, 9.1, 17.5], [1.0, 1.1, 1.5]),
        ("RK", [9.2, 19.7, 34.8], [1.0, 1.0, 2.0]),
    ];
    for (row, (kernel, lat, inter)) in rows.iter().zip(golden.iter()) {
        assert_eq!(row.kernel, *kernel);
        for (m, g) in row.latency.iter().zip(lat.iter()) {
            assert!(within(*m, *g, 0.10), "{kernel} latency {m} vs {g}");
        }
        for (m, g) in row.interarrival.iter().zip(inter.iter()) {
            assert!(within(*m, *g, 0.10), "{kernel} interarrival {m} vs {g}");
        }
    }
}

#[test]
fn table5_golden() {
    let rows = cedar_bench::table5::run();
    assert_eq!(rows[0].machine, "Cedar");
    assert!(within(rows[0].instability[0], 63.4, 0.02));
    assert_eq!(rows[0].exceptions_needed, Some(3));
    assert_eq!(rows[1].machine, "Cray YMP/8");
    assert_eq!(rows[1].exceptions_needed, Some(6));
    assert_eq!(rows[2].machine, "Cray-1");
    assert_eq!(rows[2].exceptions_needed, Some(2));
}

#[test]
fn fig3_golden_censuses() {
    use cedar_metrics::bands::PerfBand;
    let points = cedar_bench::fig3::run();
    let cedar_high = points
        .iter()
        .filter(|p| p.cedar_band == PerfBand::High)
        .count();
    let cedar_unacc = points
        .iter()
        .filter(|p| p.cedar_band == PerfBand::Unacceptable)
        .count();
    let ymp_high = points
        .iter()
        .filter(|p| p.ymp_band == PerfBand::High)
        .count();
    let ymp_unacc = points
        .iter()
        .filter(|p| p.ymp_band == PerfBand::Unacceptable)
        .count();
    assert_eq!((cedar_high, cedar_unacc), (2, 0));
    assert_eq!((ymp_high, ymp_unacc), (6, 1));
}

#[test]
fn overheads_golden() {
    let o = cedar_bench::overheads::run();
    assert!(
        within(o.xdoall_startup_us, 90.1, 0.02),
        "{}",
        o.xdoall_startup_us
    );
    assert!(
        within(o.xdoall_fetch_us, 30.1, 0.02),
        "{}",
        o.xdoall_fetch_us
    );
    assert!(o.cdoall_start_us < 10.0);
}

#[test]
fn vm_ablation_golden() {
    let outcomes = cedar_bench::ablation_vm::run();
    assert_eq!(outcomes[0].faults, 3_000);
    assert_eq!(outcomes[1].faults, 12_000);
    assert_eq!(outcomes[2].faults, 3_000);
    assert!(within(outcomes[1].vm_fraction, 0.50, 0.05));
}

#[test]
fn barrier_ablation_golden() {
    let outcomes = cedar_bench::ablation_barriers::run();
    assert!(within(outcomes[0].improvement, 2.70, 0.05));
    assert!(within(outcomes[0].original_overhead_fraction, 0.84, 0.05));
}

#[test]
fn io_ablation_golden() {
    let a = cedar_bench::ablation_io::run();
    assert!(within(a.app_formatted_s, 111.0, 0.01));
    assert!(within(a.app_unformatted_s, 70.0, 0.05));
}

#[test]
fn cm5_golden() {
    let cells = cedar_bench::ppt4::run_cm5();
    let bw3_32: Vec<f64> = cells
        .iter()
        .filter(|c| c.processors == 32 && c.bandwidth == 3)
        .map(|c| c.mflops)
        .collect();
    let lo = bw3_32.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = bw3_32.iter().cloned().fold(0.0, f64::max);
    assert!(
        within(lo, 26.7, 0.03) && within(hi, 29.8, 0.03),
        "{lo}..{hi}"
    );
}
