//! Model of Cedar's performance-monitoring hardware.
//!
//! The paper (§2, "Performance monitoring") describes external
//! hardware that collects time-stamped event traces and histograms of
//! hardware signals: "The event tracers can each collect 1M events and
//! the histogrammers have 64K 32-bit counters. These can be cascaded
//! to capture more events." Software can also post events, enabling
//! software event tracing.
//!
//! [`EventTracer`] and [`Histogrammer`] reproduce those units,
//! including the capacity limits and cascading. [`PerformanceMonitor`]
//! bundles tracers and histogrammers behind named signals, and is what
//! the Table 2 experiments attach to the prefetch unit to measure
//! first-word latency and interarrival time.

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::RunningStats;
use crate::time::Cycle;

/// Identifies a monitored hardware signal.
///
/// The real monitor could attach to "any accessible hardware signal";
/// here signals are named strings interned by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(usize);

impl SignalId {
    /// The raw index of this signal in its monitor.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signal#{}", self.0)
    }
}

/// One recorded event: a time stamp plus a 32-bit payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event occurred.
    pub at: Cycle,
    /// Event payload (e.g. a request id or an address tag).
    pub value: u32,
}

/// Capacity of one event-tracer unit, per the paper: 1M events.
pub const TRACER_UNIT_CAPACITY: usize = 1 << 20;

/// Number of counters in one histogrammer unit, per the paper: 64K.
pub const HISTOGRAMMER_UNIT_COUNTERS: usize = 1 << 16;

/// A time-stamped event capture buffer.
///
/// A single unit holds [`TRACER_UNIT_CAPACITY`] events; `cascade`
/// units multiply that. Once full, further events are dropped and
/// counted, exactly as a full hardware buffer would miss them.
///
/// # Examples
///
/// ```
/// use cedar_sim::monitor::EventTracer;
/// use cedar_sim::time::Cycle;
///
/// let mut t = EventTracer::new(1);
/// t.post(Cycle::new(10), 0xBEEF);
/// assert_eq!(t.records().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTracer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl EventTracer {
    /// Creates a tracer backed by `cascade` hardware units.
    ///
    /// # Panics
    ///
    /// Panics if `cascade` is zero.
    #[must_use]
    pub fn new(cascade: usize) -> Self {
        assert!(cascade > 0, "tracer needs at least one unit");
        EventTracer {
            records: Vec::new(),
            capacity: TRACER_UNIT_CAPACITY * cascade,
            dropped: 0,
        }
    }

    /// Records an event, or counts it as dropped if the buffer is full.
    pub fn post(&mut self, at: Cycle, value: u32) {
        if self.records.len() < self.capacity {
            self.records.push(TraceRecord { at, value });
        } else {
            self.dropped += 1;
        }
    }

    /// The captured events, in arrival order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Events that arrived after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the buffer (the "move data to workstation" step).
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.dropped = 0;
        std::mem::take(&mut self.records)
    }

    /// Inter-event gaps in cycles between consecutive records, the raw
    /// material for interarrival-time analysis (Table 2). Software
    /// posts are not guaranteed time-ordered the way hardware probes
    /// were, so an out-of-order pair clamps to a zero gap instead of
    /// underflowing.
    #[must_use]
    pub fn interarrival_cycles(&self) -> Vec<u64> {
        self.records
            .windows(2)
            .map(|w| w[1].at.saturating_since(w[0].at).as_u64())
            .collect()
    }
}

/// A bank of saturating 32-bit counters indexed by sample value.
///
/// A single unit provides [`HISTOGRAMMER_UNIT_COUNTERS`] counters;
/// `cascade` units extend the indexable range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogrammer {
    counters: Vec<u32>,
    out_of_range: u64,
}

impl Histogrammer {
    /// Creates a histogrammer backed by `cascade` hardware units.
    ///
    /// # Panics
    ///
    /// Panics if `cascade` is zero.
    #[must_use]
    pub fn new(cascade: usize) -> Self {
        assert!(cascade > 0, "histogrammer needs at least one unit");
        Histogrammer {
            counters: vec![0; HISTOGRAMMER_UNIT_COUNTERS * cascade],
            out_of_range: 0,
        }
    }

    /// Increments the counter for `sample`, saturating at `u32::MAX`;
    /// samples beyond the counter range are tallied separately.
    pub fn record(&mut self, sample: u64) {
        match self.counters.get_mut(sample as usize) {
            Some(c) => *c = c.saturating_add(1),
            None => self.out_of_range += 1,
        }
    }

    /// The count for `sample`, or `None` if beyond the range.
    #[must_use]
    pub fn count(&self, sample: u64) -> Option<u32> {
        self.counters.get(sample as usize).copied()
    }

    /// Samples that fell beyond the counter range.
    #[must_use]
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Number of counters available.
    #[must_use]
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// The mean sample value over all in-range records.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let mut n = 0u64;
        let mut sum = 0u128;
        for (v, &c) in self.counters.iter().enumerate() {
            n += u64::from(c);
            sum += (v as u128) * u128::from(c);
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.out_of_range = 0;
    }
}

/// Whether an experiment is currently collecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MonitorState {
    Stopped,
    Running,
}

/// The assembled performance monitor: named signals, each with a
/// tracer, a histogrammer, and running statistics.
///
/// Software tools "start and stop the experiments"; events posted
/// while stopped are ignored, mirroring the hardware gating.
///
/// # Examples
///
/// ```
/// use cedar_sim::monitor::PerformanceMonitor;
/// use cedar_sim::time::Cycle;
///
/// let mut mon = PerformanceMonitor::new();
/// let lat = mon.signal("prefetch.first_word_latency");
/// mon.start();
/// mon.post(lat, Cycle::new(100), 13);
/// mon.stop();
/// assert_eq!(mon.stats(lat).unwrap().count(), 1);
/// ```
#[derive(Debug)]
pub struct PerformanceMonitor {
    names: BTreeMap<String, SignalId>,
    tracers: Vec<EventTracer>,
    histograms: Vec<Histogrammer>,
    stats: Vec<RunningStats>,
    state: MonitorState,
}

impl PerformanceMonitor {
    /// Creates a monitor with no signals attached, in the stopped state.
    #[must_use]
    pub fn new() -> Self {
        PerformanceMonitor {
            names: BTreeMap::new(),
            tracers: Vec::new(),
            histograms: Vec::new(),
            stats: Vec::new(),
            state: MonitorState::Stopped,
        }
    }

    /// Returns the id for `name`, attaching probes on first use.
    pub fn signal(&mut self, name: &str) -> SignalId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = SignalId(self.tracers.len());
        self.names.insert(name.to_owned(), id);
        self.tracers.push(EventTracer::new(1));
        self.histograms.push(Histogrammer::new(1));
        self.stats.push(RunningStats::new());
        id
    }

    /// Looks up a signal id without attaching.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<SignalId> {
        self.names.get(name).copied()
    }

    /// Begins collecting.
    pub fn start(&mut self) {
        self.state = MonitorState::Running;
    }

    /// Stops collecting; subsequent posts are ignored.
    pub fn stop(&mut self) {
        self.state = MonitorState::Stopped;
    }

    /// Whether the monitor is collecting.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.state == MonitorState::Running
    }

    /// Posts an event with sample `value` at time `at`. Ignored while
    /// stopped or if `id` came from a different monitor.
    pub fn post(&mut self, id: SignalId, at: Cycle, value: u32) {
        if self.state != MonitorState::Running {
            return;
        }
        let Some(tracer) = self.tracers.get_mut(id.0) else {
            return;
        };
        tracer.post(at, value);
        self.histograms[id.0].record(u64::from(value));
        self.stats[id.0].record(f64::from(value));
    }

    /// Running statistics for a signal.
    #[must_use]
    pub fn stats(&self, id: SignalId) -> Option<&RunningStats> {
        self.stats.get(id.0)
    }

    /// The event trace for a signal.
    #[must_use]
    pub fn tracer(&self, id: SignalId) -> Option<&EventTracer> {
        self.tracers.get(id.0)
    }

    /// The histogram for a signal.
    #[must_use]
    pub fn histogrammer(&self, id: SignalId) -> Option<&Histogrammer> {
        self.histograms.get(id.0)
    }

    /// Names of every attached signal, in sorted order.
    pub fn signal_names(&self) -> impl Iterator<Item = &str> {
        self.names.keys().map(String::as_str)
    }

    /// Clears all collected data but keeps signal attachments.
    pub fn reset(&mut self) {
        for t in &mut self.tracers {
            t.drain();
        }
        for h in &mut self.histograms {
            h.reset();
        }
        for s in &mut self.stats {
            *s = RunningStats::new();
        }
    }
}

impl Default for PerformanceMonitor {
    fn default() -> Self {
        PerformanceMonitor::new()
    }
}

impl cedar_snap::Snapshot for SignalId {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_usize(self.0);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        Ok(SignalId(r.get_usize()?))
    }
}

cedar_snap::snapshot_struct!(TraceRecord { at, value });
cedar_snap::snapshot_struct!(EventTracer {
    records,
    capacity,
    dropped,
});
cedar_snap::snapshot_struct!(Histogrammer {
    counters,
    out_of_range,
});

impl cedar_snap::Snapshot for MonitorState {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u8(match self {
            MonitorState::Stopped => 0,
            MonitorState::Running => 1,
        });
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(MonitorState::Stopped),
            1 => Ok(MonitorState::Running),
            _ => Err(cedar_snap::SnapError::Invalid("monitor state tag")),
        }
    }
}

// Covers every field, including mid-window tracer buffers and the
// running/stopped gate, so a monitor restored mid-measurement
// continues exactly where it left off (interarrival gaps included).
cedar_snap::snapshot_struct!(PerformanceMonitor {
    names,
    tracers,
    histograms,
    stats,
    state,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_records_in_order() {
        let mut t = EventTracer::new(1);
        t.post(Cycle::new(1), 10);
        t.post(Cycle::new(4), 20);
        t.post(Cycle::new(9), 30);
        assert_eq!(t.interarrival_cycles(), vec![3, 5]);
    }

    #[test]
    fn tracer_capacity_is_one_meg_per_unit() {
        let t = EventTracer::new(2);
        assert_eq!(t.capacity(), 2 * (1 << 20));
    }

    #[test]
    fn tracer_drops_when_full() {
        let mut t = EventTracer::new(1);
        for i in 0..(TRACER_UNIT_CAPACITY as u64 + 5) {
            t.post(Cycle::new(i), 0);
        }
        assert_eq!(t.records().len(), TRACER_UNIT_CAPACITY);
        assert_eq!(t.dropped(), 5);
    }

    #[test]
    fn tracer_drain_empties() {
        let mut t = EventTracer::new(1);
        t.post(Cycle::new(0), 1);
        let drained = t.drain();
        assert_eq!(drained.len(), 1);
        assert!(t.records().is_empty());
    }

    #[test]
    fn interarrival_of_zero_or_one_records_is_empty() {
        let mut t = EventTracer::new(1);
        assert!(t.interarrival_cycles().is_empty(), "no records, no gaps");
        t.post(Cycle::new(42), 0);
        assert!(t.interarrival_cycles().is_empty(), "one record, no gaps");
    }

    #[test]
    fn interarrival_clamps_out_of_order_posts() {
        // Hardware probes arrive time-ordered; software posts might
        // not. An out-of-order pair must clamp to zero, not underflow.
        let mut t = EventTracer::new(1);
        t.post(Cycle::new(10), 0);
        t.post(Cycle::new(4), 0);
        t.post(Cycle::new(9), 0);
        assert_eq!(t.interarrival_cycles(), vec![0, 5]);
    }

    #[test]
    fn cascade_extends_capacity_across_the_unit_boundary() {
        let mut t = EventTracer::new(2);
        // Fill exactly one unit: nothing dropped, next post still fits.
        for i in 0..TRACER_UNIT_CAPACITY as u64 {
            t.post(Cycle::new(i), 0);
        }
        assert_eq!(t.dropped(), 0, "first unit's fill must not drop");
        t.post(Cycle::new(TRACER_UNIT_CAPACITY as u64), 0);
        assert_eq!(t.records().len(), TRACER_UNIT_CAPACITY + 1);
        assert_eq!(t.dropped(), 0, "cascade absorbs the overflow");
    }

    #[test]
    fn drain_resets_the_dropped_count() {
        let mut t = EventTracer::new(1);
        for i in 0..(TRACER_UNIT_CAPACITY as u64 + 3) {
            t.post(Cycle::new(i), 0);
        }
        assert_eq!(t.dropped(), 3);
        let _ = t.drain();
        assert_eq!(t.dropped(), 0, "drain starts a fresh capture window");
        t.post(Cycle::new(0), 0);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn histogrammer_out_of_range_boundary_is_exact() {
        let mut h = Histogrammer::new(1);
        h.record((1 << 16) - 1);
        assert_eq!(h.count((1 << 16) - 1), Some(1), "last counter in range");
        assert_eq!(h.out_of_range(), 0);
        h.record(1 << 16);
        h.record(u64::MAX);
        assert_eq!(h.out_of_range(), 2, "first index past the bank and beyond");
        // Out-of-range samples must not perturb in-range counters.
        assert_eq!(h.count((1 << 16) - 1), Some(1));
        h.reset();
        assert_eq!(h.out_of_range(), 0, "reset clears the tally");
    }

    #[test]
    fn histogrammer_counts_and_mean() {
        let mut h = Histogrammer::new(1);
        h.record(5);
        h.record(5);
        h.record(7);
        assert_eq!(h.count(5), Some(2));
        assert_eq!(h.count(7), Some(1));
        assert!((h.mean() - 17.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogrammer_range_is_64k_per_unit() {
        let mut h = Histogrammer::new(1);
        assert_eq!(h.counter_count(), 1 << 16);
        h.record(1 << 16);
        assert_eq!(h.out_of_range(), 1);
        let mut h2 = Histogrammer::new(2);
        h2.record(1 << 16);
        assert_eq!(h2.out_of_range(), 0);
    }

    #[test]
    fn monitor_gates_on_start_stop() {
        let mut mon = PerformanceMonitor::new();
        let sig = mon.signal("s");
        mon.post(sig, Cycle::new(0), 1); // ignored: stopped
        mon.start();
        mon.post(sig, Cycle::new(1), 2);
        mon.stop();
        mon.post(sig, Cycle::new(2), 3); // ignored: stopped
        assert_eq!(mon.stats(sig).unwrap().count(), 1);
        assert_eq!(mon.tracer(sig).unwrap().records().len(), 1);
    }

    #[test]
    fn monitor_signal_is_idempotent() {
        let mut mon = PerformanceMonitor::new();
        let a = mon.signal("x");
        let b = mon.signal("x");
        assert_eq!(a, b);
        assert_eq!(mon.lookup("x"), Some(a));
        assert_eq!(mon.lookup("y"), None);
    }

    #[test]
    fn monitor_reset_keeps_signals() {
        let mut mon = PerformanceMonitor::new();
        let sig = mon.signal("s");
        mon.start();
        mon.post(sig, Cycle::new(0), 9);
        mon.reset();
        assert_eq!(mon.stats(sig).unwrap().count(), 0);
        assert_eq!(mon.lookup("s"), Some(sig));
    }

    #[test]
    fn monitor_lists_signal_names_sorted() {
        let mut mon = PerformanceMonitor::new();
        mon.signal("b");
        mon.signal("a");
        let names: Vec<_> = mon.signal_names().collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn tracer_restored_mid_window_preserves_interarrival_gaps() {
        // Regression: interarrival_cycles spans the checkpoint
        // boundary, so the restore path must carry the partial record
        // window (and the dropped tally) — not start a fresh one.
        use cedar_snap::Snapshot;
        let mut t = EventTracer::new(1);
        t.post(Cycle::new(10), 1);
        t.post(Cycle::new(17), 2);
        let bytes = t.to_snapshot_bytes();
        let mut restored = EventTracer::from_snapshot_bytes(&bytes).unwrap();
        for tracer in [&mut t, &mut restored] {
            tracer.post(Cycle::new(21), 3);
            tracer.post(Cycle::new(30), 4);
        }
        assert_eq!(restored.interarrival_cycles(), t.interarrival_cycles());
        assert_eq!(restored.interarrival_cycles(), vec![7, 4, 9]);
        assert_eq!(restored.records(), t.records());
        assert_eq!(restored.dropped(), t.dropped());
    }

    #[test]
    fn monitor_restored_mid_window_continues_bit_identically() {
        use cedar_snap::Snapshot;
        let mut mon = PerformanceMonitor::new();
        let lat = mon.signal("latency");
        let gap = mon.signal("gap");
        mon.start();
        mon.post(lat, Cycle::new(5), 40);
        mon.post(gap, Cycle::new(6), 7);
        mon.post(lat, Cycle::new(9), 44);
        // Checkpoint mid-measurement, while still running.
        let bytes = mon.to_snapshot_bytes();
        let mut restored = PerformanceMonitor::from_snapshot_bytes(&bytes).unwrap();
        assert!(restored.is_running(), "running/stopped gate must survive");
        assert_eq!(restored.lookup("latency"), Some(lat));
        for m in [&mut mon, &mut restored] {
            m.post(lat, Cycle::new(14), 52);
            m.post(gap, Cycle::new(15), 9);
            m.stop();
            m.post(lat, Cycle::new(16), 99); // ignored: stopped
        }
        for sig in [lat, gap] {
            assert_eq!(restored.stats(sig), mon.stats(sig));
            assert_eq!(restored.tracer(sig), mon.tracer(sig));
            assert_eq!(
                restored.tracer(sig).unwrap().interarrival_cycles(),
                mon.tracer(sig).unwrap().interarrival_cycles()
            );
            assert_eq!(restored.histogrammer(sig), mon.histogrammer(sig));
        }
    }

    #[test]
    fn monitor_stopped_state_survives_restore() {
        use cedar_snap::Snapshot;
        let mut mon = PerformanceMonitor::new();
        let sig = mon.signal("s");
        let bytes = mon.to_snapshot_bytes();
        let mut restored = PerformanceMonitor::from_snapshot_bytes(&bytes).unwrap();
        assert!(!restored.is_running());
        restored.post(sig, Cycle::new(0), 1); // ignored: stopped
        assert_eq!(restored.stats(sig).unwrap().count(), 0);
    }
}
