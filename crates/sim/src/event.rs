//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by simulated time with strict FIFO
//! tie-breaking for events scheduled at the same cycle, so a
//! simulation that schedules the same events in the same order always
//! replays identically. This determinism is load-bearing: the paper's
//! measurements (Table 2) are reproduced by replaying identical
//! request streams through the network model.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// A pending event: its due time plus a sequence number for FIFO
/// tie-breaking.
#[derive(Debug)]
struct Entry<T> {
    due: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, for
        // ties, the first-scheduled) entry is popped first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use cedar_sim::event::EventQueue;
/// use cedar_sim::time::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(3), "b");
/// q.schedule(Cycle::new(3), "c"); // same cycle: FIFO order preserved
/// q.schedule(Cycle::new(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    last_popped: Option<Cycle>,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: None,
        }
    }

    /// Schedules `payload` to fire at absolute time `due`.
    ///
    /// Scheduling in the past (before the last popped event) is
    /// rejected because it would silently reorder causality.
    ///
    /// # Panics
    ///
    /// Panics if `due` precedes the time of the most recently popped
    /// event.
    pub fn schedule(&mut self, due: Cycle, payload: T) {
        if let Some(now) = self.last_popped {
            assert!(
                due >= now,
                "event scheduled in the past: due {due} but simulation already at {now}"
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { due, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let entry = self.heap.pop()?;
        debug_assert!(
            self.last_popped.is_none_or(|now| entry.due >= now),
            "heap yielded an event before the current time"
        );
        self.last_popped = Some(entry.due);
        Some((entry.due, entry.payload))
    }

    /// Returns the due time of the earliest pending event without
    /// removing it.
    #[inline]
    #[must_use]
    pub fn peek_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.due)
    }

    /// The number of pending events.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event, i.e. the current
    /// simulation time, if any event has fired yet.
    #[inline]
    #[must_use]
    pub fn now(&self) -> Option<Cycle> {
        self.last_popped
    }

    /// Drops all pending events and resets the clock and the FIFO
    /// tie-break counter: a cleared queue is indistinguishable from a
    /// newly built one, so a simulation reusing the allocation replays
    /// identically to one starting fresh.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.last_popped = None;
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T: cedar_snap::Snapshot> cedar_snap::Snapshot for EventQueue<T> {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        // BinaryHeap iteration order is unspecified, so canonicalize:
        // entries sorted by (due, seq) — their exact pop order. The
        // restored heap may lay its array out differently, but pop
        // order (the only observable) is identical because (due, seq)
        // is a total order.
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_by_key(|e| (e.due, e.seq));
        w.put_usize(entries.len());
        for e in entries {
            e.due.snap(w);
            w.put_u64(e.seq);
            e.payload.snap(w);
        }
        w.put_u64(self.next_seq);
        self.last_popped.snap(w);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        let len = r.get_usize()?;
        if len > r.remaining() {
            return Err(cedar_snap::SnapError::Truncated);
        }
        let mut heap = BinaryHeap::with_capacity(len);
        for _ in 0..len {
            let due = Cycle::restore(r)?;
            let seq = r.get_u64()?;
            let payload = T::restore(r)?;
            heap.push(Entry { due, seq, payload });
        }
        Ok(EventQueue {
            heap,
            next_seq: r.get_u64()?,
            last_popped: Option::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CycleDelta;
    use cedar_snap::Snapshot;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), 10);
        q.schedule(Cycle::new(1), 1);
        q.schedule(Cycle::new(5), 5);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, [1, 5, 10]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), None);
        q.schedule(Cycle::new(3), ());
        q.pop();
        assert_eq!(q.now(), Some(Cycle::new(3)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.schedule(Cycle::new(5), ());
    }

    #[test]
    fn allows_scheduling_at_current_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), 1);
        q.pop();
        q.schedule(Cycle::new(10), 2); // same time as `now` is fine
        assert_eq!(q.pop(), Some((Cycle::new(10), 2)));
    }

    #[test]
    fn peek_due_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(2), ());
        assert_eq!(q.peek_due(), Some(Cycle::new(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_resets_clock() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(10), ());
        q.pop();
        q.clear();
        assert!(q.is_empty());
        // After clear we may schedule earlier than the old clock.
        q.schedule(Cycle::new(1), ());
        assert_eq!(q.pop(), Some((Cycle::new(1), ())));
    }

    #[test]
    fn clear_resets_the_tie_break_counter() {
        let mut fresh = EventQueue::new();
        let mut reused = EventQueue::new();
        for i in 0..3 {
            reused.schedule(Cycle::new(7), i);
        }
        while reused.pop().is_some() {}
        reused.clear();
        // After clear, the reused queue must be indistinguishable from
        // a fresh one — including the private seq numbers visible via
        // Debug, which a stale counter would shift.
        for q in [&mut fresh, &mut reused] {
            q.schedule(Cycle::new(5), 100);
            q.schedule(Cycle::new(5), 200);
        }
        assert_eq!(format!("{fresh:?}"), format!("{reused:?}"));
        assert_eq!(fresh.pop(), reused.pop());
    }

    #[test]
    fn restored_queue_pops_in_identical_order() {
        let mut q = EventQueue::new();
        // Mixed times with FIFO ties, taken mid-run so the clock and
        // the seq counter are both nonzero at checkpoint time.
        for i in 0..20u64 {
            q.schedule(Cycle::new(5 + i % 3), i);
        }
        q.pop();
        q.pop();
        let bytes = q.to_snapshot_bytes();
        let mut restored = EventQueue::<u64>::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), q.len());
        assert_eq!(restored.now(), q.now());
        // Both queues must drain identically and accept identical
        // follow-up scheduling (same seq counter).
        for queue in [&mut q, &mut restored] {
            queue.schedule(Cycle::new(9), 999);
        }
        loop {
            let a = q.pop();
            let b = restored.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_causal() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(1), "a");
        let (t, _) = q.pop().unwrap();
        // Event handlers typically schedule follow-ups relative to now.
        q.schedule(t + CycleDelta::new(4), "b");
        q.schedule(t + CycleDelta::new(2), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
