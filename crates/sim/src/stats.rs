//! Statistics primitives: counters, running moments, and histograms.
//!
//! These are the building blocks of the performance-monitor model in
//! [`crate::monitor`] and of every measurement the experiment harness
//! reports (latencies, interarrival times, bandwidths, MFLOPS).

use std::fmt;

/// A saturating event counter.
///
/// Cedar's histogrammers used 32-bit hardware counters; [`Counter`]
/// mirrors that by saturating at `u64::MAX` instead of wrapping (the
/// wider width avoids saturation in long software runs while keeping
/// the never-wraps contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter { value: 0 }
    }

    /// Adds one to the counter, saturating.
    pub fn increment(&mut self) {
        self.add(1);
    }

    /// Adds `n` to the counter, saturating.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// The current count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.value
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// # Examples
///
/// ```
/// use cedar_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Same as [`RunningStats::new`]: a derived `Default` would zero
/// `min`/`max` instead of using the infinities `record` folds against.
impl Default for RunningStats {
    fn default() -> Self {
        RunningStats::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// The number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The arithmetic mean, or 0.0 if no observations were recorded.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance, or 0.0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bin histogram over `u64` samples.
///
/// Cedar's hardware histogrammers provided 64 K 32-bit counters and
/// could be cascaded for more. [`Histogram`] models one unit: samples
/// beyond the configured range land in a saturating overflow bucket
/// (cascading is modelled by [`crate::monitor::Histogrammer`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    bin_width: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets of `bin_width` units each.
    ///
    /// Sample `x` lands in bucket `x / bin_width`, or in the overflow
    /// bucket if that exceeds the bin count.
    ///
    /// # Panics
    ///
    /// Panics if `bins` or `bin_width` is zero.
    #[must_use]
    pub fn new(bins: usize, bin_width: u64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(bin_width > 0, "bin width must be nonzero");
        Histogram {
            bins: vec![0; bins],
            bin_width,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (sample / self.bin_width) as usize;
        match self.bins.get_mut(idx) {
            Some(bin) => *bin += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
    }

    /// The count in bucket `idx`, or `None` if out of range.
    #[must_use]
    pub fn bin(&self, idx: usize) -> Option<u64> {
        self.bins.get(idx).copied()
    }

    /// The number of buckets (excluding overflow).
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// The width of each bucket in sample units.
    #[must_use]
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Samples that fell past the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The mean of recorded samples approximated by bin midpoints
    /// (overflow samples are excluded). Returns 0.0 when empty.
    #[must_use]
    pub fn approx_mean(&self) -> f64 {
        let counted = self.total - self.overflow;
        if counted == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mid = i as f64 * self.bin_width as f64 + self.bin_width as f64 / 2.0;
                mid * c as f64
            })
            .sum();
        sum / counted as f64
    }

    /// The smallest sample value `v` such that at least `q` of the
    /// recorded (non-overflow) mass lies at or below `v`'s bucket.
    /// Returns `None` when empty. `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        let counted = self.total - self.overflow;
        if counted == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * counted as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper edge of the bucket.
                return Some((i as u64 + 1) * self.bin_width - 1);
            }
        }
        Some(self.bins.len() as u64 * self.bin_width - 1)
    }

    /// Clears all buckets.
    pub fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.total = 0;
    }
}

cedar_snap::snapshot_struct!(Counter { value });
cedar_snap::snapshot_struct!(RunningStats {
    count,
    mean,
    m2,
    min,
    max,
});
cedar_snap::snapshot_struct!(Histogram {
    bins,
    bin_width,
    overflow,
    total,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.increment();
        c.add(4);
        assert_eq!(c.value(), 5);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.add(10);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn running_stats_moments() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.record(x));

        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        xs[..37].iter().for_each(|&x| left.record(x));
        xs[37..].iter().for_each(|&x| right.record(x));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.record(1.0);
        s.record(3.0);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(4, 10);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(39);
        h.record(40); // overflow
        assert_eq!(h.bin(0), Some(2));
        assert_eq!(h.bin(1), Some(1));
        assert_eq!(h.bin(3), Some(1));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = Histogram::new(100, 1);
        for x in 0..100 {
            h.record(x);
        }
        assert!((h.approx_mean() - 50.0).abs() < 1.0);
        let median = h.approx_quantile(0.5).unwrap();
        assert!((49..=51).contains(&median), "median was {median}");
    }

    #[test]
    fn histogram_quantile_empty() {
        let h = Histogram::new(4, 1);
        assert_eq!(h.approx_quantile(0.5), None);
    }

    #[test]
    fn histogram_reset() {
        let mut h = Histogram::new(2, 1);
        h.record(0);
        h.record(5);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.bin(0), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0, 1);
    }
}
