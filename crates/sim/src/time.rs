//! Cycle-based simulated time.
//!
//! All Cedar subsystem models advance in units of the CE instruction
//! cycle (170 ns on the real machine). [`Cycle`] is an absolute point
//! on the simulated clock, [`CycleDelta`] a span between two points,
//! and [`ClockPeriod`] converts spans to wall-clock seconds so that
//! kernel and application models can report times in the units the
//! paper uses (seconds, microseconds, MFLOPS).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute point in simulated time, measured in clock cycles.
///
/// `Cycle` is a newtype over `u64`; it is `Copy`, totally ordered, and
/// only supports the arithmetic that makes sense for absolute times
/// (adding a [`CycleDelta`], subtracting another `Cycle`).
///
/// # Examples
///
/// ```
/// use cedar_sim::time::{Cycle, CycleDelta};
///
/// let start = Cycle::new(100);
/// let end = start + CycleDelta::new(13);
/// assert_eq!(end - start, CycleDelta::new(13));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The origin of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates an absolute time at `cycles` cycles past the origin.
    #[must_use]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Saturating difference: `self - other`, or zero if `other` is later.
    #[must_use]
    pub fn saturating_since(self, other: Cycle) -> CycleDelta {
        CycleDelta(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<CycleDelta> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: CycleDelta) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<CycleDelta> for Cycle {
    fn add_assign(&mut self, rhs: CycleDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = CycleDelta;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self` (underflow).
    fn sub(self, rhs: Cycle) -> CycleDelta {
        CycleDelta(self.0 - rhs.0)
    }
}

/// A span of simulated time, measured in clock cycles.
///
/// # Examples
///
/// ```
/// use cedar_sim::time::CycleDelta;
///
/// let a = CycleDelta::new(8) + CycleDelta::new(5);
/// assert_eq!(a.as_u64(), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CycleDelta(u64);

impl CycleDelta {
    /// The empty span.
    pub const ZERO: CycleDelta = CycleDelta(0);
    /// A single cycle.
    pub const ONE: CycleDelta = CycleDelta(1);

    /// Creates a span of `cycles` cycles.
    #[must_use]
    pub const fn new(cycles: u64) -> Self {
        CycleDelta(cycles)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the span as a floating-point cycle count.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Multiplies the span by an integer factor.
    #[must_use]
    pub const fn times(self, n: u64) -> CycleDelta {
        CycleDelta(self.0 * n)
    }
}

impl fmt::Display for CycleDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for CycleDelta {
    type Output = CycleDelta;

    fn add(self, rhs: CycleDelta) -> CycleDelta {
        CycleDelta(self.0 + rhs.0)
    }
}

impl AddAssign for CycleDelta {
    fn add_assign(&mut self, rhs: CycleDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for CycleDelta {
    type Output = CycleDelta;

    fn sub(self, rhs: CycleDelta) -> CycleDelta {
        CycleDelta(self.0 - rhs.0)
    }
}

impl std::iter::Sum for CycleDelta {
    fn sum<I: Iterator<Item = CycleDelta>>(iter: I) -> CycleDelta {
        iter.fold(CycleDelta::ZERO, Add::add)
    }
}

/// The duration of one clock cycle in seconds, used to convert
/// simulated cycle counts to wall-clock time.
///
/// # Examples
///
/// ```
/// use cedar_sim::time::{ClockPeriod, CycleDelta};
///
/// // Cedar CE: 170 ns instruction cycle.
/// let clk = ClockPeriod::from_nanos(170.0);
/// let t = clk.to_seconds(CycleDelta::new(1_000_000));
/// assert!((t - 0.17e-3 * 1000.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ClockPeriod {
    seconds: f64,
}

impl ClockPeriod {
    /// Creates a clock period from a duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not strictly positive and finite.
    #[must_use]
    pub fn from_seconds(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "clock period must be positive and finite, got {seconds}"
        );
        ClockPeriod { seconds }
    }

    /// Creates a clock period from a duration in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `nanos` is not strictly positive and finite.
    #[must_use]
    pub fn from_nanos(nanos: f64) -> Self {
        ClockPeriod::from_seconds(nanos * 1e-9)
    }

    /// The period in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.seconds
    }

    /// The clock frequency in hertz.
    #[must_use]
    pub fn frequency_hz(self) -> f64 {
        1.0 / self.seconds
    }

    /// Converts a span of cycles to seconds.
    #[must_use]
    pub fn to_seconds(self, delta: CycleDelta) -> f64 {
        delta.as_f64() * self.seconds
    }

    /// Converts a duration in seconds to a whole number of cycles,
    /// rounding up (a partial cycle still occupies a full cycle).
    #[must_use]
    pub fn to_cycles(self, seconds: f64) -> CycleDelta {
        CycleDelta::new((seconds / self.seconds).ceil() as u64)
    }
}

impl cedar_snap::Snapshot for Cycle {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        Ok(Cycle(r.get_u64()?))
    }
}

impl cedar_snap::Snapshot for CycleDelta {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        Ok(CycleDelta(r.get_u64()?))
    }
}

impl cedar_snap::Snapshot for ClockPeriod {
    fn snap(&self, w: &mut cedar_snap::SnapWriter) {
        w.put_f64(self.seconds);
    }
    fn restore(r: &mut cedar_snap::SnapReader<'_>) -> Result<Self, cedar_snap::SnapError> {
        let seconds = r.get_f64()?;
        if !(seconds.is_finite() && seconds > 0.0) {
            return Err(cedar_snap::SnapError::Invalid("clock period not positive"));
        }
        Ok(ClockPeriod { seconds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_ordering_and_arithmetic() {
        let a = Cycle::new(10);
        let b = a + CycleDelta::new(3);
        assert!(b > a);
        assert_eq!(b - a, CycleDelta::new(3));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn cycle_saturating_since_clamps_to_zero() {
        let a = Cycle::new(10);
        let b = Cycle::new(20);
        assert_eq!(a.saturating_since(b), CycleDelta::ZERO);
        assert_eq!(b.saturating_since(a), CycleDelta::new(10));
    }

    #[test]
    fn delta_sum_and_times() {
        let total: CycleDelta = (1..=4).map(CycleDelta::new).sum();
        assert_eq!(total, CycleDelta::new(10));
        assert_eq!(CycleDelta::new(3).times(4), CycleDelta::new(12));
    }

    #[test]
    fn clock_period_round_trips() {
        let clk = ClockPeriod::from_nanos(170.0);
        assert!((clk.frequency_hz() - 5_882_352.94).abs() / clk.frequency_hz() < 1e-6);
        let span = CycleDelta::new(1000);
        let secs = clk.to_seconds(span);
        assert_eq!(clk.to_cycles(secs), span);
    }

    #[test]
    fn clock_period_rounds_partial_cycles_up() {
        let clk = ClockPeriod::from_nanos(100.0);
        assert_eq!(clk.to_cycles(250e-9), CycleDelta::new(3));
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn clock_period_rejects_zero() {
        let _ = ClockPeriod::from_seconds(0.0);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(Cycle::new(7).to_string(), "cycle 7");
        assert_eq!(CycleDelta::new(7).to_string(), "7 cycles");
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = Cycle::ZERO;
        t += CycleDelta::new(5);
        t += CycleDelta::new(8);
        assert_eq!(t, Cycle::new(13));
    }
}
