//! `cedar-sim` — discrete-event simulation substrate for the Cedar
//! multiprocessor reproduction.
//!
//! The Cedar paper measures the machine with external hardware: event
//! tracers that time-stamp signals and histogrammers that count them.
//! This crate provides the software equivalents used by every other
//! crate in the workspace:
//!
//! * [`time`] — the cycle-based clock ([`Cycle`], [`CycleDelta`]) and
//!   conversions to wall-clock seconds for a given clock period
//!   (Cedar's CE cycle is 170 ns).
//! * [`event`] — a deterministic event queue ([`EventQueue`]) with
//!   FIFO tie-breaking, the heart of the cycle-level simulations in
//!   `cedar-net` and `cedar-mem`.
//! * [`rng`] — a small, dependency-free deterministic PRNG
//!   ([`SplitMix64`]) so that every simulated experiment is
//!   reproducible bit-for-bit.
//! * [`stats`] — running statistics, histograms and counters.
//! * [`monitor`] — a model of Cedar's performance-monitoring hardware:
//!   [`EventTracer`] (1M-event capture buffers) and
//!   [`Histogrammer`] (64K × 32-bit counters), cascadable exactly as
//!   the paper describes.
//! * [`watchdog`] — a no-progress detector ([`Watchdog`]) so degraded
//!   or fault-injected simulations abort with a diagnostic instead of
//!   spinning forever.
//!
//! # Examples
//!
//! ```
//! use cedar_sim::event::EventQueue;
//! use cedar_sim::time::Cycle;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(Cycle::new(5), "late");
//! q.schedule(Cycle::new(2), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Cycle::new(2), "early"));
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod monitor;
pub mod rng;
pub mod stats;
pub mod time;
pub mod watchdog;

pub use event::EventQueue;
pub use monitor::{EventTracer, Histogrammer, PerformanceMonitor};
pub use rng::SplitMix64;
pub use stats::{Counter, Histogram, RunningStats};
pub use time::{ClockPeriod, Cycle, CycleDelta};
pub use watchdog::{Watchdog, WatchdogReport};
