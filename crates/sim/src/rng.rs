//! Deterministic pseudo-random number generation.
//!
//! The simulator must be reproducible bit-for-bit: Table 2's latency
//! and interarrival measurements come from replaying fixed request
//! streams, and the paper itself reports repeated experiments agreeing
//! within 10%. [`SplitMix64`] is a tiny, well-studied generator
//! (Steele, Lea & Flood 2014) adequate for workload jitter and
//! address-stream generation; it keeps `cedar-sim` dependency-free.

/// A deterministic 64-bit PRNG using the SplitMix64 algorithm.
///
/// # Examples
///
/// ```
/// use cedar_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed yields a distinct,
    /// reproducible stream.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire 2016), which is
    /// slightly biased for enormous bounds but far below anything
    /// observable in this workload-modelling context.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Deterministically derives an independent child generator, e.g.
    /// one per simulated processor.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

cedar_snap::snapshot_struct!(SplitMix64 { state });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn next_bool_matches_probability() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} far from 0.25");
    }

    #[test]
    fn next_bool_extremes() {
        let mut rng = SplitMix64::new(1);
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.next_bool(2.0));
        assert!(!rng.next_bool(-1.0));
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent_a = SplitMix64::new(42);
        let mut parent_b = SplitMix64::new(42);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        assert_eq!(child_a.next_u64(), child_b.next_u64());
        assert_ne!(child_a.next_u64(), parent_a.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn next_below_zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
