//! Simulation watchdog: no-progress / livelock detection.
//!
//! The real Cedar kept running degraded — redundant network copies,
//! per-module synchronization processors — but a *simulation* of a
//! degraded machine can deadlock outright (an injected barrier fault
//! means the arrival count never completes) or livelock (a retry storm
//! that never drains). [`Watchdog`] bounds that: callers feed it the
//! current simulated time and a monotone progress counter, and once no
//! progress has been observed for the configured cycle budget it
//! returns a [`WatchdogReport`] diagnostic instead of letting the
//! simulation spin forever.

use std::fmt;

/// Deadline-based no-progress detector.
///
/// # Examples
///
/// ```
/// use cedar_sim::watchdog::Watchdog;
///
/// let mut dog = Watchdog::new(100, "barrier wait");
/// assert!(dog.observe(0, 0).is_ok());
/// assert!(dog.observe(50, 1).is_ok());   // progress resets the budget
/// assert!(dog.observe(149, 1).is_ok());  // within budget
/// let report = dog.observe(151, 1).unwrap_err();
/// assert!(report.to_string().contains("barrier wait"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watchdog {
    /// Cycles of no progress tolerated before tripping.
    budget: u64,
    /// What the watchdog is guarding, named in the diagnostic.
    context: String,
    /// Progress counter value at the last observed advance.
    last_progress: Option<u64>,
    /// Simulated cycle at which progress last advanced.
    progress_at: u64,
    /// Set once tripped; further observations keep failing.
    tripped: bool,
    /// Last trace span noted for the guarded context, named in the
    /// diagnostic so a stall report points at the stage that stuck.
    last_span: Option<String>,
}

impl Watchdog {
    /// Creates a watchdog that trips after `budget` cycles without
    /// progress. `context` names the guarded activity in diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero (a zero budget would trip on the
    /// first observation and is always a caller bug).
    #[must_use]
    pub fn new(budget: u64, context: &str) -> Self {
        assert!(budget > 0, "watchdog budget must be nonzero");
        Watchdog {
            budget,
            context: context.to_owned(),
            last_progress: None,
            progress_at: 0,
            tripped: false,
            last_span: None,
        }
    }

    /// Notes the most recent trace span seen for the guarded context.
    /// If the watchdog later trips, the report names this span, so the
    /// diagnostic says not just *which* context stalled but *where* in
    /// the request path it was last seen alive.
    pub fn note_span(&mut self, span: impl Into<String>) {
        self.last_span = Some(span.into());
    }

    /// The configured no-progress budget in cycles.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The simulated cycle at which progress last advanced. Together
    /// with [`budget`](Self::budget) this bounds how far a simulator
    /// may fast-forward an idle stretch without changing when a
    /// serial, cycle-by-cycle run would have tripped.
    #[must_use]
    pub fn progress_cycle(&self) -> u64 {
        self.progress_at
    }

    /// Feeds one observation: the current simulated cycle and the
    /// current value of a monotone progress counter (requests
    /// completed, barrier arrivals seen, events popped — anything that
    /// only moves when the simulation is getting somewhere).
    ///
    /// # Errors
    ///
    /// Returns a [`WatchdogReport`] once `now` is more than the budget
    /// past the last observed progress, and on every observation
    /// thereafter.
    pub fn observe(&mut self, now: u64, progress: u64) -> Result<(), WatchdogReport> {
        match self.last_progress {
            Some(last) if progress <= last => {}
            _ => {
                // First observation or progress advanced.
                self.last_progress = Some(progress);
                self.progress_at = now;
            }
        }
        if self.tripped || now.saturating_sub(self.progress_at) > self.budget {
            self.tripped = true;
            return Err(WatchdogReport {
                context: self.context.clone(),
                stalled_since: self.progress_at,
                now,
                budget: self.budget,
                progress: self.last_progress.unwrap_or(0),
                last_span: self.last_span.clone(),
            });
        }
        Ok(())
    }

    /// Whether the watchdog has tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Re-arms a tripped (or running) watchdog as of cycle `now`,
    /// forgetting all prior progress history. Supervisors use this when
    /// the guarded entity is deliberately replaced — a hung worker
    /// killed and restarted gets a fresh budget, not an instant re-trip
    /// inherited from its dead predecessor.
    pub fn rearm(&mut self, now: u64) {
        self.tripped = false;
        self.last_progress = None;
        self.progress_at = now;
        self.last_span = None;
    }
}

cedar_snap::snapshot_struct!(Watchdog {
    budget,
    context,
    last_progress,
    progress_at,
    tripped,
    last_span,
});

/// Diagnostic emitted when a [`Watchdog`] detects no progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// What was being guarded.
    pub context: String,
    /// Simulated cycle of the last observed progress.
    pub stalled_since: u64,
    /// Simulated cycle at which the watchdog tripped.
    pub now: u64,
    /// The no-progress budget that was exceeded.
    pub budget: u64,
    /// The progress counter's final value.
    pub progress: u64,
    /// The last trace span noted via [`Watchdog::note_span`], if any.
    pub last_span: Option<String>,
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog: no progress in {} ({} cycles without progress since cycle {}, \
             budget {}, progress counter stuck at {})",
            self.context,
            self.now - self.stalled_since,
            self.stalled_since,
            self.budget,
            self.progress
        )?;
        if let Some(span) = &self.last_span {
            write!(f, ", last span seen: {span}")?;
        }
        Ok(())
    }
}

impl std::error::Error for WatchdogReport {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_never_trips() {
        let mut dog = Watchdog::new(10, "test");
        for t in 0..100 {
            assert!(dog.observe(t, t).is_ok(), "progress every cycle");
        }
        assert!(!dog.is_tripped());
    }

    #[test]
    fn stall_trips_after_budget() {
        let mut dog = Watchdog::new(10, "stall");
        assert!(dog.observe(0, 5).is_ok());
        assert!(dog.observe(10, 5).is_ok(), "exactly at budget is fine");
        let err = dog.observe(11, 5).unwrap_err();
        assert_eq!(err.stalled_since, 0);
        assert_eq!(err.now, 11);
        assert_eq!(err.progress, 5);
        assert!(dog.is_tripped());
    }

    #[test]
    fn progress_resets_the_clock() {
        let mut dog = Watchdog::new(10, "test");
        assert!(dog.observe(0, 0).is_ok());
        assert!(dog.observe(9, 1).is_ok());
        assert!(dog.observe(19, 1).is_ok(), "budget counts from cycle 9");
        assert!(dog.observe(20, 1).is_err());
    }

    #[test]
    fn tripped_watchdog_stays_tripped() {
        let mut dog = Watchdog::new(5, "test");
        assert!(dog.observe(0, 0).is_ok());
        assert!(dog.observe(6, 0).is_err());
        // Later progress does not un-trip it.
        assert!(dog.observe(7, 99).is_err());
    }

    #[test]
    fn regressing_progress_counter_counts_as_stall() {
        let mut dog = Watchdog::new(10, "test");
        assert!(dog.observe(0, 10).is_ok());
        assert!(dog.observe(5, 3).is_ok(), "regression is not progress");
        assert!(dog.observe(11, 3).is_err());
    }

    #[test]
    fn rearm_gives_a_replaced_entity_a_fresh_budget() {
        let mut dog = Watchdog::new(5, "worker 2");
        dog.note_span("job 9");
        assert!(dog.observe(0, 0).is_ok());
        assert!(dog.observe(6, 0).is_err());
        assert!(dog.is_tripped());
        // The restarted worker gets a fresh budget from its first
        // observation, carries no stale span, and is not instantly
        // re-tripped by its dead predecessor's history.
        dog.rearm(100);
        assert!(!dog.is_tripped());
        assert!(dog.observe(105, 0).is_ok());
        assert!(dog.observe(110, 0).is_ok(), "budget counts from 105");
        let report = dog.observe(111, 0).unwrap_err();
        assert_eq!(report.stalled_since, 105);
        assert_eq!(report.last_span, None);
    }

    #[test]
    fn report_diagnostic_names_the_context() {
        let mut dog = Watchdog::new(3, "multicluster barrier at cell 10");
        dog.observe(0, 0).unwrap();
        let report = dog.observe(100, 0).unwrap_err();
        let msg = report.to_string();
        assert!(msg.contains("multicluster barrier at cell 10"), "{msg}");
        assert!(msg.contains("budget 3"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "budget must be nonzero")]
    fn zero_budget_rejected() {
        let _ = Watchdog::new(0, "bad");
    }

    #[test]
    fn report_names_the_last_noted_span() {
        let mut dog = Watchdog::new(3, "fabric");
        dog.observe(0, 0).unwrap();
        dog.note_span("mem_service (packet 77)");
        let report = dog.observe(100, 0).unwrap_err();
        assert_eq!(report.last_span.as_deref(), Some("mem_service (packet 77)"));
        let msg = report.to_string();
        assert!(
            msg.contains("last span seen: mem_service (packet 77)"),
            "{msg}"
        );
    }

    #[test]
    fn report_without_span_omits_the_clause() {
        let mut dog = Watchdog::new(3, "fabric");
        dog.observe(0, 0).unwrap();
        let report = dog.observe(100, 0).unwrap_err();
        assert_eq!(report.last_span, None);
        assert!(!report.to_string().contains("last span"));
    }
}
