//! Randomized property tests for the simulation substrate, driven by
//! the crate's own deterministic SplitMix64 generator (no external
//! test dependencies).

use cedar_sim::event::EventQueue;
use cedar_sim::rng::SplitMix64;
use cedar_sim::stats::{Histogram, RunningStats};
use cedar_sim::time::{ClockPeriod, Cycle, CycleDelta};

const CASES: usize = 64;

/// Popping the event queue yields events in nondecreasing time order,
/// with FIFO order among equal times.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = SplitMix64::new(0x51e1);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(200) as usize;
        let times: Vec<u64> = (0..len).map(|_| rng.next_below(100)).collect();
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(Cycle::new(t), (t, seq));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((due, (t, seq))) = q.pop() {
            assert_eq!(due, Cycle::new(t));
            if let Some((lt, lseq)) = last {
                assert!(t >= lt, "time order violated");
                if t == lt {
                    assert!(seq > lseq, "FIFO violated for equal times");
                }
            }
            last = Some((t, seq));
        }
    }
}

/// Welford streaming statistics agree with the naive two-pass
/// computation.
#[test]
fn running_stats_match_naive() {
    let mut rng = SplitMix64::new(0x51e2);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(300) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let mut s = RunningStats::new();
        xs.iter().for_each(|&x| s.record(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        let scale = 1.0f64.max(mean.abs()).max(var.abs());
        assert!((s.mean() - mean).abs() / scale < 1e-9);
        assert!((s.variance() - var).abs() / scale.max(var) < 1e-6);
        assert_eq!(s.min(), xs.iter().cloned().reduce(f64::min));
        assert_eq!(s.max(), xs.iter().cloned().reduce(f64::max));
    }
}

/// Merging partitioned statistics equals computing them whole.
#[test]
fn running_stats_merge_associative() {
    let mut rng = SplitMix64::new(0x51e3);
    for _ in 0..CASES {
        let len = 2 + rng.next_below(198) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (rng.next_f64() - 0.5) * 2e3).collect();
        let split = rng.next_below(len as u64) as usize;
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        xs[..split].iter().for_each(|&x| left.record(x));
        xs[split..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }
}

/// Histogram totals are conserved and bin sums match.
#[test]
fn histogram_conserves_samples() {
    let mut rng = SplitMix64::new(0x51e4);
    for _ in 0..CASES {
        let len = rng.next_below(300) as usize;
        let xs: Vec<u64> = (0..len).map(|_| rng.next_below(200)).collect();
        let mut h = Histogram::new(16, 8); // covers 0..128
        xs.iter().for_each(|&x| h.record(x));
        let binned: u64 = (0..16).map(|i| h.bin(i).unwrap()).sum();
        assert_eq!(binned + h.overflow(), xs.len() as u64);
        assert_eq!(h.total(), xs.len() as u64);
        let expected_overflow = xs.iter().filter(|&&x| x >= 128).count() as u64;
        assert_eq!(h.overflow(), expected_overflow);
    }
}

/// SplitMix64 bounded sampling is in range and deterministic.
#[test]
fn rng_bounded_and_reproducible() {
    let mut meta = SplitMix64::new(0x51e5);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(1_000_000);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            assert!(x < bound);
            assert_eq!(x, b.next_below(bound));
        }
    }
}

/// Clock conversions round-trip: cycles -> seconds -> cycles.
#[test]
fn clock_round_trips() {
    let mut rng = SplitMix64::new(0x51e6);
    for _ in 0..CASES {
        let period_ns = 1.0 + rng.next_f64() * 999.0;
        let cycles = rng.next_below(1_000_000_000);
        let clk = ClockPeriod::from_nanos(period_ns);
        let secs = clk.to_seconds(CycleDelta::new(cycles));
        let back = clk.to_cycles(secs);
        assert!(
            back.as_u64().abs_diff(cycles) <= 1,
            "{} vs {}",
            back.as_u64(),
            cycles
        );
    }
}
