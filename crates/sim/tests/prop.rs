//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use cedar_sim::event::EventQueue;
use cedar_sim::rng::SplitMix64;
use cedar_sim::stats::{Histogram, RunningStats};
use cedar_sim::time::{ClockPeriod, Cycle, CycleDelta};

proptest! {
    /// Popping the event queue yields events in nondecreasing time
    /// order, with FIFO order among equal times.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..100, 1..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(Cycle::new(t), (t, seq));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((due, (t, seq))) = q.pop() {
            prop_assert_eq!(due, Cycle::new(t));
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated for equal times");
                }
            }
            last = Some((t, seq));
        }
    }

    /// Welford streaming statistics agree with the naive two-pass
    /// computation.
    #[test]
    fn running_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = RunningStats::new();
        xs.iter().for_each(|&x| s.record(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        let scale = 1.0f64.max(mean.abs()).max(var.abs());
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((s.variance() - var).abs() / scale.max(var) < 1e-6);
        prop_assert_eq!(s.min(), xs.iter().cloned().reduce(f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().reduce(f64::max));
    }

    /// Merging partitioned statistics equals computing them whole.
    #[test]
    fn running_stats_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        split in 0usize..200,
    ) {
        let split = split % xs.len();
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        xs[..split].iter().for_each(|&x| left.record(x));
        xs[split..].iter().for_each(|&x| right.record(x));
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Histogram totals are conserved and bin sums match.
    #[test]
    fn histogram_conserves_samples(xs in prop::collection::vec(0u64..200, 0..300)) {
        let mut h = Histogram::new(16, 8); // covers 0..128
        xs.iter().for_each(|&x| h.record(x));
        let binned: u64 = (0..16).map(|i| h.bin(i).unwrap()).sum();
        prop_assert_eq!(binned + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
        let expected_overflow = xs.iter().filter(|&&x| x >= 128).count() as u64;
        prop_assert_eq!(h.overflow(), expected_overflow);
    }

    /// SplitMix64 bounded sampling is in range and deterministic.
    #[test]
    fn rng_bounded_and_reproducible(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }

    /// Clock conversions round-trip: cycles -> seconds -> cycles.
    #[test]
    fn clock_round_trips(period_ns in 1.0f64..1000.0, cycles in 0u64..1_000_000_000) {
        let clk = ClockPeriod::from_nanos(period_ns);
        let secs = clk.to_seconds(CycleDelta::new(cycles));
        let back = clk.to_cycles(secs);
        prop_assert!(back.as_u64().abs_diff(cycles) <= 1, "{} vs {}", back.as_u64(), cycles);
    }
}
