//! Randomized property tests for the judging-parallelism metrics,
//! driven by the simulator's deterministic SplitMix64 generator.

use cedar_metrics::bands::{acceptable_threshold, classify, high_threshold, PerfBand};
use cedar_metrics::stability::{instability, stability};
use cedar_sim::rng::SplitMix64;

const CASES: usize = 64;

fn rates(rng: &mut SplitMix64, len: usize, hi: f64) -> Vec<f64> {
    (0..len).map(|_| 0.01 + rng.next_f64() * hi).collect()
}

/// The prefix/suffix exclusion scan is optimal: no choice of e
/// exclusions beats it (brute force cross-check).
#[test]
fn stability_exclusion_is_optimal() {
    fn subsets(items: &[usize], k: usize) -> Vec<Vec<usize>> {
        if k == 0 {
            return vec![vec![]];
        }
        if items.len() < k {
            return vec![];
        }
        let mut out = subsets(&items[1..], k - 1)
            .into_iter()
            .map(|mut s| {
                s.push(items[0]);
                s
            })
            .collect::<Vec<_>>();
        out.extend(subsets(&items[1..], k));
        out
    }

    let mut rng = SplitMix64::new(0x3171);
    for _ in 0..CASES {
        let len = 4 + rng.next_below(5) as usize;
        let e = (rng.next_below(3) as usize).min(len - 2);
        let mut perf = rates(&mut rng, len, 1000.0);
        let fast = stability(&perf, e).stability;
        // Brute force over all exclusion subsets of size e.
        let n = perf.len();
        let mut best = f64::NEG_INFINITY;
        let indices: Vec<usize> = (0..n).collect();
        for drop in subsets(&indices, e) {
            let kept: Vec<f64> = perf
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &v)| v)
                .collect();
            let min = kept.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = kept.iter().cloned().fold(0.0, f64::max);
            best = best.max(min / max);
        }
        assert!((fast - best).abs() < 1e-9, "fast {fast} vs brute {best}");
        // While we're here: sorting the input must not change anything.
        perf.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((stability(&perf, e).stability - fast).abs() < 1e-12);
    }
}

/// Instability is monotone nonincreasing in the exclusion count.
#[test]
fn more_exclusions_never_hurt() {
    let mut rng = SplitMix64::new(0x3172);
    for _ in 0..CASES {
        let len = 5 + rng.next_below(7) as usize;
        let perf = rates(&mut rng, len, 1000.0);
        let max_e = perf.len() - 2;
        let mut last = f64::INFINITY;
        for e in 0..=max_e.min(4) {
            let inst = instability(&perf, e);
            assert!(inst <= last + 1e-12, "e={e}: {inst} > {last}");
            assert!(inst >= 1.0 - 1e-12, "instability is at least 1");
            last = inst;
        }
    }
}

/// Scale invariance: multiplying every rate by a positive constant
/// leaves stability unchanged.
#[test]
fn stability_is_scale_invariant() {
    let mut rng = SplitMix64::new(0x3173);
    for _ in 0..CASES {
        let len = 3 + rng.next_below(7) as usize;
        let perf = rates(&mut rng, len, 100.0);
        let scale = 0.01 + rng.next_f64() * 1000.0;
        let scaled: Vec<f64> = perf.iter().map(|&p| p * scale).collect();
        assert!((instability(&perf, 0) - instability(&scaled, 0)).abs() < 1e-6);
    }
}

/// Band classification is monotone in speedup and consistent with its
/// thresholds.
#[test]
fn bands_are_monotone() {
    let mut rng = SplitMix64::new(0x3174);
    for _ in 0..CASES {
        let speedup = rng.next_f64() * 64.0;
        let p = 2usize.pow(1 + rng.next_below(6) as u32);
        let band = classify(speedup, p);
        match band {
            PerfBand::High => assert!(speedup >= high_threshold(p)),
            PerfBand::Intermediate => {
                assert!(speedup < high_threshold(p));
                assert!(speedup >= acceptable_threshold(p));
            }
            PerfBand::Unacceptable => assert!(speedup < acceptable_threshold(p)),
        }
        // More speedup never demotes.
        let better = classify(speedup + 1.0, p);
        assert!(better >= band);
    }
}
