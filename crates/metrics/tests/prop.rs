//! Property-based tests for the judging-parallelism metrics.

use proptest::prelude::*;

use cedar_metrics::bands::{acceptable_threshold, classify, high_threshold, PerfBand};
use cedar_metrics::stability::{instability, stability};

proptest! {
    /// The prefix/suffix exclusion scan is optimal: no choice of e
    /// exclusions beats it (brute force cross-check).
    #[test]
    fn stability_exclusion_is_optimal(
        mut perf in prop::collection::vec(0.01f64..1000.0, 4..9),
        e in 0usize..3,
    ) {
        prop_assume!(perf.len() >= e + 2);
        let fast = stability(&perf, e).stability;
        // Brute force over all exclusion subsets of size e.
        let n = perf.len();
        let mut best = f64::NEG_INFINITY;
        let mut indices: Vec<usize> = (0..n).collect();
        fn subsets(items: &[usize], k: usize) -> Vec<Vec<usize>> {
            if k == 0 {
                return vec![vec![]];
            }
            if items.len() < k {
                return vec![];
            }
            let mut out = subsets(&items[1..], k - 1)
                .into_iter()
                .map(|mut s| {
                    s.push(items[0]);
                    s
                })
                .collect::<Vec<_>>();
            out.extend(subsets(&items[1..], k));
            out
        }
        for drop in subsets(&indices.split_off(0), e) {
            let kept: Vec<f64> = perf
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &v)| v)
                .collect();
            let min = kept.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = kept.iter().cloned().fold(0.0, f64::max);
            best = best.max(min / max);
        }
        prop_assert!((fast - best).abs() < 1e-9, "fast {fast} vs brute {best}");
        // While we're here: sorting the input must not change anything.
        perf.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!((stability(&perf, e).stability - fast).abs() < 1e-12);
    }

    /// Instability is monotone nonincreasing in the exclusion count.
    #[test]
    fn more_exclusions_never_hurt(perf in prop::collection::vec(0.01f64..1000.0, 5..12)) {
        let max_e = perf.len() - 2;
        let mut last = f64::INFINITY;
        for e in 0..=max_e.min(4) {
            let inst = instability(&perf, e);
            prop_assert!(inst <= last + 1e-12, "e={e}: {inst} > {last}");
            prop_assert!(inst >= 1.0 - 1e-12, "instability is at least 1");
            last = inst;
        }
    }

    /// Scale invariance: multiplying every rate by a positive constant
    /// leaves stability unchanged.
    #[test]
    fn stability_is_scale_invariant(
        perf in prop::collection::vec(0.01f64..100.0, 3..10),
        scale in 0.01f64..1000.0,
    ) {
        let scaled: Vec<f64> = perf.iter().map(|&p| p * scale).collect();
        prop_assert!((instability(&perf, 0) - instability(&scaled, 0)).abs() < 1e-6);
    }

    /// Band classification is monotone in speedup and consistent with
    /// its thresholds.
    #[test]
    fn bands_are_monotone(speedup in 0.0f64..64.0, p_pow in 1u32..=6) {
        let p = 2usize.pow(p_pow);
        let band = classify(speedup, p);
        match band {
            PerfBand::High => prop_assert!(speedup >= high_threshold(p)),
            PerfBand::Intermediate => {
                prop_assert!(speedup < high_threshold(p));
                prop_assert!(speedup >= acceptable_threshold(p));
            }
            PerfBand::Unacceptable => prop_assert!(speedup < acceptable_threshold(p)),
        }
        // More speedup never demotes.
        let better = classify(speedup + 1.0, p);
        prop_assert!(better >= band);
    }
}
