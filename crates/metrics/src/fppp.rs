//! The Fundamental Principle of Parallel Processing (FPPP).
//!
//! §4.3: "**Clock speed is interchangeable with parallelism while (A)
//! maintaining delivered performance, that is (B) stable over a
//! certain class of computations.**" A slow-clocked, wide machine
//! demonstrates the FPPP against a fast-clocked, narrow one if it
//! delivers comparable rates (A) with comparable stability (B). This
//! module scores that comparison — the laboratory-level criterion the
//! paper builds PPT1 and PPT2 from.

use crate::stability::{instability, STABLE_INSTABILITY_BOUND};

/// One machine's side of an FPPP comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineEnsemble {
    /// Machine name.
    pub name: String,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Processor count.
    pub processors: usize,
    /// Delivered rates over the common code ensemble (e.g. MFLOPS).
    pub rates: Vec<f64>,
}

impl MachineEnsemble {
    /// Builds an ensemble record.
    ///
    /// # Panics
    ///
    /// Panics if the rates are empty or the clock/processor counts are
    /// degenerate.
    #[must_use]
    pub fn new(name: &str, clock_ns: f64, processors: usize, rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "need at least one rate");
        assert!(clock_ns > 0.0, "clock period must be positive");
        assert!(processors > 0, "need processors");
        MachineEnsemble {
            name: name.to_owned(),
            clock_ns,
            processors,
            rates,
        }
    }

    /// Harmonic-mean delivered rate (the ensemble-level "delivered
    /// performance" the FPPP's part A compares).
    #[must_use]
    pub fn harmonic_mean_rate(&self) -> f64 {
        let inv: f64 = self.rates.iter().map(|r| 1.0 / r).sum();
        self.rates.len() as f64 / inv
    }

    /// Raw parallelism × clock product relative to a 1-processor
    /// machine at this clock: the "interchangeability budget".
    #[must_use]
    pub fn parallelism_clock_product(&self) -> f64 {
        self.processors as f64 / self.clock_ns
    }
}

/// The FPPP verdict for a wide/slow machine against a narrow/fast one.
#[derive(Debug, Clone, PartialEq)]
pub struct FpppVerdict {
    /// Delivered-rate ratio (wide / narrow), harmonic means.
    pub delivered_ratio: f64,
    /// Part A: delivered performance maintained within `tolerance`.
    pub maintains_performance: bool,
    /// Instability of the wide machine at the given exception count.
    pub wide_instability: f64,
    /// Instability of the narrow machine.
    pub narrow_instability: f64,
    /// Part B: the wide machine is at least workstation-stable.
    pub stable: bool,
    /// Both parts hold.
    pub demonstrated: bool,
}

/// Scores the FPPP: does `wide` (high parallelism, slow clock) match
/// `narrow` (low parallelism, fast clock) in delivered performance
/// within `tolerance` (e.g. 0.5 = within 2×), with workstation-level
/// stability at `exceptions` exclusions?
///
/// # Panics
///
/// Panics if the ensembles have different lengths (the comparison must
/// run the same codes) or `tolerance` is not in `(0, 1]`.
#[must_use]
pub fn fppp_check(
    wide: &MachineEnsemble,
    narrow: &MachineEnsemble,
    exceptions: usize,
    tolerance: f64,
) -> FpppVerdict {
    assert_eq!(
        wide.rates.len(),
        narrow.rates.len(),
        "ensembles must cover the same codes"
    );
    assert!(
        tolerance > 0.0 && tolerance <= 1.0,
        "tolerance must be in (0, 1]"
    );
    let delivered_ratio = wide.harmonic_mean_rate() / narrow.harmonic_mean_rate();
    let maintains_performance = delivered_ratio >= tolerance;
    let wide_instability = instability(&wide.rates, exceptions);
    let narrow_instability = instability(&narrow.rates, exceptions);
    let stable = wide_instability <= STABLE_INSTABILITY_BOUND;
    FpppVerdict {
        delivered_ratio,
        maintains_performance,
        wide_instability,
        narrow_instability,
        stable,
        demonstrated: maintains_performance && stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn narrow() -> MachineEnsemble {
        // A YMP-like machine: fast clock, few processors.
        MachineEnsemble::new("fast-narrow", 6.0, 8, vec![20.0, 25.0, 30.0, 18.0, 22.0])
    }

    #[test]
    fn interchangeability_demonstrated_when_both_parts_hold() {
        let wide = MachineEnsemble::new("slow-wide", 170.0, 32, vec![15.0, 18.0, 22.0, 14.0, 17.0]);
        let v = fppp_check(&wide, &narrow(), 0, 0.5);
        assert!(v.maintains_performance, "within 2x: {}", v.delivered_ratio);
        assert!(v.stable, "In = {}", v.wide_instability);
        assert!(v.demonstrated);
    }

    #[test]
    fn unstable_wide_machine_fails_part_b() {
        let wide =
            MachineEnsemble::new("erratic-wide", 170.0, 32, vec![40.0, 0.5, 35.0, 30.0, 28.0]);
        let v = fppp_check(&wide, &narrow(), 0, 0.5);
        assert!(!v.stable);
        assert!(!v.demonstrated, "instability must veto the FPPP");
    }

    #[test]
    fn slow_wide_machine_fails_part_a() {
        let wide = MachineEnsemble::new("weak-wide", 170.0, 32, vec![2.0, 2.5, 3.0, 2.2, 2.4]);
        let v = fppp_check(&wide, &narrow(), 0, 0.5);
        assert!(!v.maintains_performance);
        assert!(!v.demonstrated);
    }

    #[test]
    fn exceptions_can_rescue_stability() {
        let wide =
            MachineEnsemble::new("one-outlier", 170.0, 32, vec![15.0, 0.5, 18.0, 16.0, 17.0]);
        assert!(!fppp_check(&wide, &narrow(), 0, 0.5).stable);
        assert!(fppp_check(&wide, &narrow(), 1, 0.5).stable);
    }

    #[test]
    fn parallelism_clock_product() {
        // 32 CEs at 170 ns vs 8 at 6 ns: the narrow machine has ~7x the
        // raw budget — which is why Cedar's delivered deficit (the
        // paper's harmonic-mean ratio of 7.4) is exactly the clock gap,
        // not a parallelism failure.
        let wide = MachineEnsemble::new("cedar", 170.0, 32, vec![1.0]);
        let ratio = narrow().parallelism_clock_product() / wide.parallelism_clock_product();
        assert!((ratio - 7.08).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "same codes")]
    fn mismatched_ensembles_rejected() {
        let wide = MachineEnsemble::new("w", 170.0, 32, vec![1.0, 2.0]);
        let _ = fppp_check(&wide, &narrow(), 0, 0.5);
    }
}
