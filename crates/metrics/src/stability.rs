//! Stability and instability over an ensemble of computations.
//!
//! "We now define stability, St, on P processors of an ensemble of
//! computations over K codes as follows:
//! St(P, Nᵢ, K, e) = min performance(K, e) / max performance(K, e),
//! where … e computations are excluded from the ensemble because their
//! results are outliers … Instability, In, is defined as the inverse
//! of Stability."
//!
//! Excluded computations are chosen to *maximize* stability (that is
//! what "outlier" means operationally: the e codes whose removal most
//! tightens the ensemble). For a sorted ensemble the optimum always
//! removes a prefix and/or suffix, so the exact optimum is found by
//! scanning the e+1 prefix/suffix splits.
//!
//! "We will define a system as *stable* if 1/5 < St(K, e) for small e,
//! and as unstable otherwise" — the workstation-level instability of
//! about 5 observed from the VAX 780 through modern workstations.

/// The workstation-level instability bound: systems with In ≤ 5 are
/// stable in the paper's sense.
pub const STABLE_INSTABILITY_BOUND: f64 = 5.0;

/// Outcome of a stability computation.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// St = min/max over the retained ensemble.
    pub stability: f64,
    /// In = 1/St.
    pub instability: f64,
    /// Values dropped from the low end.
    pub dropped_low: Vec<f64>,
    /// Values dropped from the high end.
    pub dropped_high: Vec<f64>,
}

impl StabilityReport {
    /// Whether the system is stable by the workstation criterion.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.instability <= STABLE_INSTABILITY_BOUND
    }
}

/// Computes St(·, K, e): the best achievable min/max ratio after
/// excluding `e` outliers.
///
/// # Panics
///
/// Panics if fewer than `e + 2` values remain to form a ratio, or if
/// any performance value is not strictly positive.
#[must_use]
pub fn stability(performances: &[f64], e: usize) -> StabilityReport {
    assert!(
        performances.len() >= e + 2,
        "need at least e+2 = {} values, got {}",
        e + 2,
        performances.len()
    );
    assert!(
        performances.iter().all(|&p| p > 0.0 && p.is_finite()),
        "performances must be positive and finite"
    );
    let mut sorted = performances.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let k = sorted.len();
    let mut best = (0usize, f64::NEG_INFINITY);
    for low in 0..=e {
        let high = e - low;
        let ratio = sorted[low] / sorted[k - 1 - high];
        if ratio > best.1 {
            best = (low, ratio);
        }
    }
    let (low, ratio) = best;
    let high = e - low;
    StabilityReport {
        stability: ratio,
        instability: 1.0 / ratio,
        dropped_low: sorted[..low].to_vec(),
        dropped_high: sorted[k - high..].to_vec(),
    }
}

/// Convenience: the instability In(K, e).
#[must_use]
pub fn instability(performances: &[f64], e: usize) -> f64 {
    stability(performances, e).instability
}

/// The smallest number of exclusions that brings the ensemble to
/// workstation-level stability (In ≤ 5), or `None` if even dropping
/// all but two cannot.
#[must_use]
pub fn exceptions_to_stability(performances: &[f64]) -> Option<usize> {
    (0..=performances.len().saturating_sub(2))
        .find(|&e| instability(performances, e) <= STABLE_INSTABILITY_BOUND)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ensemble_is_perfectly_stable() {
        let r = stability(&[3.0, 3.0, 3.0], 0);
        assert_eq!(r.stability, 1.0);
        assert_eq!(r.instability, 1.0);
        assert!(r.is_stable());
    }

    #[test]
    fn instability_is_max_over_min() {
        let r = stability(&[1.0, 2.0, 10.0], 0);
        assert_eq!(r.instability, 10.0);
        assert!(!r.is_stable());
    }

    #[test]
    fn exclusions_pick_the_best_side() {
        // One terrible outlier: dropping it from the low side is best.
        let perf = [0.1, 5.0, 6.0, 7.0];
        let r = stability(&perf, 1);
        assert_eq!(r.dropped_low, vec![0.1]);
        assert!(r.dropped_high.is_empty());
        assert!((r.instability - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn exclusions_split_both_sides_when_optimal() {
        // One low and one high outlier: e = 2 should drop one each.
        let perf = [0.1, 4.0, 5.0, 6.0, 100.0];
        let r = stability(&perf, 2);
        assert_eq!(r.dropped_low, vec![0.1]);
        assert_eq!(r.dropped_high, vec![100.0]);
        assert!((r.instability - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn exclusion_result_beats_all_alternatives() {
        // Exhaustive cross-check on a small ensemble.
        let perf = [0.5, 1.0, 3.0, 9.0, 12.0, 40.0];
        let e = 2;
        let best = stability(&perf, e).stability;
        // Brute force: all C(6,2) exclusion pairs.
        let mut brute = f64::NEG_INFINITY;
        for i in 0..perf.len() {
            for j in i + 1..perf.len() {
                let kept: Vec<f64> = perf
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != i && k != j)
                    .map(|(_, &v)| v)
                    .collect();
                let min = kept.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = kept.iter().cloned().fold(0.0, f64::max);
                brute = brute.max(min / max);
            }
        }
        assert!(
            (best - brute).abs() < 1e-12,
            "prefix/suffix scan must be optimal"
        );
    }

    #[test]
    fn workstation_level_example() {
        // Instability ~5 is the historical workstation level: stable.
        let perf = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = stability(&perf, 0);
        assert_eq!(r.instability, 5.0);
        assert!(r.is_stable());
    }

    #[test]
    fn exceptions_to_stability_counts_minimum() {
        // 100 and 0.1 both need to go before In <= 5.
        let perf = [0.1, 1.0, 2.0, 4.0, 100.0];
        assert_eq!(exceptions_to_stability(&perf), Some(2));
        let stable = [1.0, 2.0, 3.0];
        assert_eq!(exceptions_to_stability(&stable), Some(0));
    }

    #[test]
    fn exceptions_none_when_hopeless() {
        // Only two values, wildly apart, no room to drop any.
        assert_eq!(exceptions_to_stability(&[1.0, 1000.0]), None);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_performance_rejected() {
        let _ = stability(&[1.0, 0.0, 2.0], 0);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_many_exclusions_rejected() {
        let _ = stability(&[1.0, 2.0, 3.0], 2);
    }
}
