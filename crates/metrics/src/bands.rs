//! Speedup, efficiency, and the paper's acceptable-performance levels.
//!
//! "We shall use P/2 and P/(2 log P), for P ≥ 8, as levels that denote
//! **high performance** and **acceptable performance**, respectively.
//! We refer to speedups in the three bands defined by these two levels
//! as high, intermediate, or unacceptable."

use std::fmt;

/// Speedup of a parallel time over a reference (serial) time.
///
/// # Panics
///
/// Panics if `parallel_time` is not strictly positive.
#[must_use]
pub fn speedup(serial_time: f64, parallel_time: f64) -> f64 {
    assert!(
        parallel_time > 0.0,
        "parallel time must be positive, got {parallel_time}"
    );
    serial_time / parallel_time
}

/// Efficiency: speedup over processor count.
///
/// # Panics
///
/// Panics if `processors` is zero.
#[must_use]
pub fn efficiency(speedup: f64, processors: usize) -> f64 {
    assert!(processors > 0, "need at least one processor");
    speedup / processors as f64
}

/// The three performance bands of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PerfBand {
    /// Below P / (2·log₂ P).
    Unacceptable,
    /// Between the two levels.
    Intermediate,
    /// At or above P/2.
    High,
}

impl fmt::Display for PerfBand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfBand::High => write!(f, "high"),
            PerfBand::Intermediate => write!(f, "intermediate"),
            PerfBand::Unacceptable => write!(f, "unacceptable"),
        }
    }
}

/// The high-performance speedup threshold: P/2.
#[must_use]
pub fn high_threshold(processors: usize) -> f64 {
    processors as f64 / 2.0
}

/// The acceptable-performance speedup threshold: P / (2·log₂ P).
///
/// # Panics
///
/// Panics if `processors` < 2 (the log is degenerate).
#[must_use]
pub fn acceptable_threshold(processors: usize) -> f64 {
    assert!(processors >= 2, "thresholds need P >= 2");
    let p = processors as f64;
    p / (2.0 * p.log2())
}

/// Classifies a speedup on `processors` processors into its band.
#[must_use]
pub fn classify(speedup: f64, processors: usize) -> PerfBand {
    if speedup >= high_threshold(processors) {
        PerfBand::High
    } else if speedup >= acceptable_threshold(processors) {
        PerfBand::Intermediate
    } else {
        PerfBand::Unacceptable
    }
}

/// Classifies by efficiency (the Table 6 formulation: E_P > .5 high,
/// E_P > 1/(2 log P) intermediate).
#[must_use]
pub fn classify_efficiency(efficiency: f64, processors: usize) -> PerfBand {
    classify(efficiency * processors as f64, processors)
}

/// Band census of an ensemble — the shape of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandCount {
    /// Codes in the high band.
    pub high: usize,
    /// Codes in the intermediate band.
    pub intermediate: usize,
    /// Codes in the unacceptable band.
    pub unacceptable: usize,
}

impl BandCount {
    /// Counts bands over an ensemble of speedups.
    #[must_use]
    pub fn of_speedups(speedups: &[f64], processors: usize) -> Self {
        let mut count = BandCount::default();
        for &s in speedups {
            match classify(s, processors) {
                PerfBand::High => count.high += 1,
                PerfBand::Intermediate => count.intermediate += 1,
                PerfBand::Unacceptable => count.unacceptable += 1,
            }
        }
        count
    }

    /// Total codes counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.high + self.intermediate + self.unacceptable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_efficiency_basics() {
        assert_eq!(speedup(100.0, 10.0), 10.0);
        assert_eq!(efficiency(16.0, 32), 0.5);
    }

    #[test]
    fn thresholds_match_paper_examples() {
        // P = 32: high at 16, acceptable at 32/(2*5) = 3.2.
        assert_eq!(high_threshold(32), 16.0);
        assert!((acceptable_threshold(32) - 3.2).abs() < 1e-12);
        // P = 8: high at 4, acceptable at 8/6 = 1.333.
        assert_eq!(high_threshold(8), 4.0);
        assert!((acceptable_threshold(8) - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(16.0, 32), PerfBand::High);
        assert_eq!(classify(15.99, 32), PerfBand::Intermediate);
        assert_eq!(classify(3.2, 32), PerfBand::Intermediate);
        assert_eq!(classify(3.19, 32), PerfBand::Unacceptable);
    }

    #[test]
    fn efficiency_classification_is_consistent() {
        assert_eq!(classify_efficiency(0.5, 32), PerfBand::High);
        assert_eq!(classify_efficiency(0.2, 32), PerfBand::Intermediate);
        assert_eq!(classify_efficiency(0.05, 32), PerfBand::Unacceptable);
    }

    #[test]
    fn band_count_census() {
        let speedups = [20.0, 10.0, 5.0, 1.0, 17.0];
        let count = BandCount::of_speedups(&speedups, 32);
        assert_eq!(count.high, 2);
        assert_eq!(count.intermediate, 2);
        assert_eq!(count.unacceptable, 1);
        assert_eq!(count.total(), 5);
    }

    #[test]
    fn bands_are_ordered() {
        assert!(PerfBand::High > PerfBand::Intermediate);
        assert!(PerfBand::Intermediate > PerfBand::Unacceptable);
    }

    #[test]
    fn display_names() {
        assert_eq!(PerfBand::High.to_string(), "high");
        assert_eq!(PerfBand::Unacceptable.to_string(), "unacceptable");
    }

    #[test]
    #[should_panic(expected = "parallel time must be positive")]
    fn zero_time_rejected() {
        let _ = speedup(1.0, 0.0);
    }
}
