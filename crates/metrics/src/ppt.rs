//! The Practical Parallelism Tests.
//!
//! PPT1 (Delivered Performance), PPT2 (Stable Performance), PPT3
//! (Portability/Programmability — evaluated through restructuring
//! efficiency, Table 6), PPT4 (Code and Architecture Scalability),
//! and PPT5 (Reimplementability). The paper defers PPT5 as a design
//! property; the machine zoo scores it anyway, from model-complexity
//! proxies ([`ModelComplexity`]) — how much of the machine is
//! commodity parts versus calibrated custom mechanisms — so that
//! every machine in the zoo gets a verdict on all five tests.
//! [`PptSummary`] aggregates the five verdicts into the zoo's
//! cross-machine efficiency score.

use crate::bands::{classify, BandCount, PerfBand};
use crate::stability::{stability, StabilityReport, STABLE_INSTABILITY_BOUND};

/// PPT1: "The parallel system delivers performance, as measured in
/// speedup or computational rate, for a useful set of codes." The
/// paper passes a machine whose ensemble is *on average acceptable* —
/// delivering at least intermediate parallel performance.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt1Verdict {
    /// Band census of the ensemble.
    pub bands: BandCount,
    /// Whether the machine passes (no majority of unacceptables, and
    /// at least one non-unacceptable code).
    pub passes: bool,
}

/// Evaluates PPT1 over per-code speedups.
#[must_use]
pub fn ppt1(speedups: &[f64], processors: usize) -> Ppt1Verdict {
    let bands = BandCount::of_speedups(speedups, processors);
    let acceptable = bands.high + bands.intermediate;
    Ppt1Verdict {
        passes: acceptable > bands.unacceptable && acceptable > 0,
        bands,
    }
}

/// PPT2: "The performance demonstrated in Test 1 is within a specified
/// stability range as the computations vary."
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt2Verdict {
    /// The stability report at the given exclusion count.
    pub report: StabilityReport,
    /// Exclusions used.
    pub exceptions: usize,
    /// Whether the machine reaches workstation-level stability
    /// (In ≤ 5) with those exclusions.
    pub passes: bool,
}

/// Evaluates PPT2 over per-code computational rates with `e` allowed
/// exceptions.
#[must_use]
pub fn ppt2(rates: &[f64], e: usize) -> Ppt2Verdict {
    let report = stability(rates, e);
    Ppt2Verdict {
        passes: report.instability <= STABLE_INSTABILITY_BOUND,
        exceptions: e,
        report,
    }
}

/// PPT3: "The system supports a programming environment in which
/// performance is portable" — evaluated, as the paper does with
/// Table 6, through *restructuring efficiency*: how much of the
/// best-known (manually tuned) rate the automatic/portable path
/// recovers per code.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt3Verdict {
    /// Per-code `portable_rate / best_rate`, clamped to 1, in input
    /// order.
    pub ratios: Vec<f64>,
    /// Codes whose portable path recovers at least half the tuned
    /// rate.
    pub recovered: usize,
    /// Whether at least half of the codes recover half the tuned
    /// rate through the portable path.
    pub passes: bool,
}

/// Evaluates PPT3 over paired per-code rates: `portable` is the
/// automatic/compiler path, `best` the manually tuned one.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or any best
/// rate is non-positive.
#[must_use]
pub fn ppt3(portable: &[f64], best: &[f64]) -> Ppt3Verdict {
    assert_eq!(portable.len(), best.len(), "rate vectors must pair up");
    assert!(!portable.is_empty(), "need at least one code");
    let ratios: Vec<f64> = portable
        .iter()
        .zip(best)
        .map(|(&p, &b)| {
            assert!(b > 0.0, "best rate must be positive, got {b}");
            (p / b).min(1.0)
        })
        .collect();
    let recovered = ratios.iter().filter(|&&r| r >= 0.5).count();
    Ppt3Verdict {
        passes: 2 * recovered >= ratios.len(),
        recovered,
        ratios,
    }
}

/// Reimplementability proxies for PPT5: how buildable the machine is
/// from parts someone else could buy, without re-deriving the
/// original team's tuning.
///
/// The counts are structural facts about each model in the zoo: a
/// calibrated parameter is a number that had to be measured or fit
/// (clock ratios, service times, link rates); a custom mechanism is a
/// hardware subsystem with no commodity equivalent (a combining
/// switch, a global sync processor, a hand-built vector pipe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelComplexity {
    /// Parameters that had to be calibrated against the real machine.
    pub calibrated_parameters: usize,
    /// Custom hardware mechanisms with no commodity equivalent.
    pub custom_mechanisms: usize,
    /// Percentage of the machine buildable from commodity parts.
    pub commodity_parts_pct: u8,
}

/// PPT5: "The system is reimplementable in future technologies" —
/// scored from [`ModelComplexity`] instead of deferred.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt5Verdict {
    /// Reimplementability score in (0, 1]: the commodity fraction
    /// discounted by every custom mechanism and calibrated parameter.
    pub score: f64,
    /// Whether the score clears [`REIMPLEMENTABLE_SCORE`].
    pub passes: bool,
}

/// PPT5 pass threshold: machines at or above this score are judged
/// rebuildable in a future technology generation.
pub const REIMPLEMENTABLE_SCORE: f64 = 0.4;

/// Evaluates PPT5 from complexity proxies. Each custom mechanism
/// costs a quarter of the commodity fraction, each calibrated
/// parameter two percent — so a machine that is mostly commodity
/// parts with one custom shell (a T3D) passes, while one whose
/// performance lives in bespoke switches and a long calibration list
/// (Cedar, the Ultracomputer) does not. This encodes the standard
/// reimplementability objection to combining hardware.
///
/// # Panics
///
/// Panics if `commodity_parts_pct` exceeds 100.
#[must_use]
pub fn ppt5(complexity: &ModelComplexity) -> Ppt5Verdict {
    assert!(
        complexity.commodity_parts_pct <= 100,
        "commodity percentage must be 0..=100, got {}",
        complexity.commodity_parts_pct
    );
    let commodity = f64::from(complexity.commodity_parts_pct) / 100.0;
    let penalty = 1.0
        + 0.25 * complexity.custom_mechanisms as f64
        + 0.02 * complexity.calibrated_parameters as f64;
    let score = commodity / penalty;
    Ppt5Verdict {
        passes: score >= REIMPLEMENTABLE_SCORE,
        score,
    }
}

/// All five verdicts for one machine, plus the composite efficiency
/// score the zoo report ranks machines by.
#[derive(Debug, Clone, PartialEq)]
pub struct PptSummary {
    /// PPT1 over the machine's best-effort speedup ensemble.
    pub ppt1: Ppt1Verdict,
    /// PPT2 over the machine's rate ensemble.
    pub ppt2: Ppt2Verdict,
    /// PPT3 over the portable-vs-tuned rate pairs.
    pub ppt3: Ppt3Verdict,
    /// PPT4 over the (P, N) scalability grid.
    pub ppt4: Ppt4Verdict,
    /// PPT5 from the machine's complexity proxies.
    pub ppt5: Ppt5Verdict,
}

impl PptSummary {
    /// How many of the five tests the machine passes (PPT4 passes
    /// when no cell is unacceptable and the rates are size-stable).
    #[must_use]
    pub fn passed(&self) -> usize {
        [
            self.ppt1.passes,
            self.ppt2.passes,
            self.ppt3.passes,
            !self.ppt4.any_unacceptable && self.ppt4.size_stable,
            self.ppt5.passes,
        ]
        .iter()
        .filter(|&&p| p)
        .count()
    }

    /// Composite efficiency score in [0, 1]: the mean of one
    /// normalized component per test. Deterministic — a pure
    /// function of the five verdicts.
    #[must_use]
    pub fn efficiency_score(&self) -> f64 {
        let census = self.ppt1.bands;
        let s1 = if census.total() == 0 {
            0.0
        } else {
            (census.high + census.intermediate) as f64 / census.total() as f64
        };
        let s2 = (STABLE_INSTABILITY_BOUND / self.ppt2.report.instability).min(1.0);
        let s3 = self.ppt3.ratios.iter().sum::<f64>() / self.ppt3.ratios.len() as f64;
        let band = match self.ppt4.overall_band {
            PerfBand::High => 1.0,
            PerfBand::Intermediate => 0.6,
            PerfBand::Unacceptable => 0.2,
        };
        let s4 = if self.ppt4.size_stable {
            band
        } else {
            band * 0.8
        };
        let s5 = self.ppt5.score.min(1.0);
        (s1 + s2 + s3 + s4 + s5) / 5.0
    }
}

/// One point of a PPT4 scalability study: a (processors, problem
/// size) cell with its speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// Processor count.
    pub processors: usize,
    /// Problem size N.
    pub problem_size: usize,
    /// Speedup over the serial version.
    pub speedup: f64,
}

/// PPT4 verdict over a (P, N) grid: the band reached in every cell,
/// and the acceptability criterion of §4.3 — High/Intermediate
/// efficiency plus a size-stability range of
/// `.5 < St(P, N, 1, 0) ≤ 1` as N varies at fixed P.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt4Verdict {
    /// Band of each grid point, in input order.
    pub bands: Vec<(ScalabilityPoint, PerfBand)>,
    /// Whether any point fell in the unacceptable band.
    pub any_unacceptable: bool,
    /// Whether performance is size-stable (per-processor-count rate
    /// variation within 2× across problem sizes).
    pub size_stable: bool,
    /// Scalable with at least this band everywhere.
    pub overall_band: PerfBand,
}

/// Evaluates PPT4 over scalability measurements. `rates` gives the
/// computational rate (e.g. MFLOPS) of each point for the
/// size-stability check; it must parallel `points`.
///
/// # Panics
///
/// Panics if the two slices differ in length or are empty.
#[must_use]
pub fn ppt4(points: &[ScalabilityPoint], rates: &[f64]) -> Ppt4Verdict {
    assert_eq!(points.len(), rates.len(), "points and rates must pair up");
    assert!(!points.is_empty(), "need at least one point");
    let bands: Vec<(ScalabilityPoint, PerfBand)> = points
        .iter()
        .map(|&pt| (pt, classify(pt.speedup, pt.processors)))
        .collect();
    let any_unacceptable = bands.iter().any(|(_, b)| *b == PerfBand::Unacceptable);
    // Size stability: at each processor count, min/max rate over N
    // must stay above 0.5 (instability of 2, the workstation
    // data-size-variation level the paper cites).
    let mut size_stable = true;
    let mut procs: Vec<usize> = points.iter().map(|p| p.processors).collect();
    procs.sort_unstable();
    procs.dedup();
    for p in procs {
        let rs: Vec<f64> = points
            .iter()
            .zip(rates)
            .filter(|(pt, _)| pt.processors == p)
            .map(|(_, &r)| r)
            .collect();
        if rs.len() >= 2 {
            let min = rs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = rs.iter().cloned().fold(0.0, f64::max);
            if min / max <= 0.5 {
                size_stable = false;
            }
        }
    }
    let overall_band = bands.iter().map(|(_, b)| *b).min().expect("non-empty grid");
    Ppt4Verdict {
        bands,
        any_unacceptable,
        size_stable,
        overall_band,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppt1_passes_intermediate_ensemble() {
        // Mostly intermediate speedups on 32 processors.
        let speedups = [10.0, 8.0, 5.0, 4.0, 20.0, 2.0];
        let v = ppt1(&speedups, 32);
        assert!(v.passes);
        assert_eq!(v.bands.high, 1);
        assert_eq!(v.bands.unacceptable, 1);
    }

    #[test]
    fn ppt1_fails_mostly_unacceptable() {
        let speedups = [1.0, 2.0, 1.5, 20.0];
        let v = ppt1(&speedups, 32);
        assert!(!v.passes);
    }

    #[test]
    fn ppt2_with_exceptions() {
        // SPICE-like poor performer plus a star performer.
        let rates = [0.5, 6.9, 8.2, 9.2, 11.2, 31.7];
        assert!(!ppt2(&rates, 0).passes, "raw ensemble unstable");
        let with_two = ppt2(&rates, 2);
        assert!(with_two.passes, "two exceptions suffice here");
        assert_eq!(with_two.exceptions, 2);
    }

    #[test]
    fn ppt4_grid_bands_and_size_stability() {
        let points = vec![
            ScalabilityPoint {
                processors: 32,
                problem_size: 10_000,
                speedup: 17.0,
            },
            ScalabilityPoint {
                processors: 32,
                problem_size: 172_000,
                speedup: 20.0,
            },
            ScalabilityPoint {
                processors: 8,
                problem_size: 10_000,
                speedup: 5.0,
            },
        ];
        let rates = vec![34.0, 48.0, 20.0];
        let v = ppt4(&points, &rates);
        assert!(!v.any_unacceptable);
        assert_eq!(v.bands[0].1, PerfBand::High);
        assert_eq!(v.overall_band, PerfBand::High);
        assert!(v.size_stable, "34/48 = 0.71 > 0.5");
    }

    #[test]
    fn ppt4_flags_size_instability() {
        let points = vec![
            ScalabilityPoint {
                processors: 32,
                problem_size: 1_000,
                speedup: 16.5,
            },
            ScalabilityPoint {
                processors: 32,
                problem_size: 172_000,
                speedup: 20.0,
            },
        ];
        let rates = vec![10.0, 48.0]; // 10/48 < 0.5
        let v = ppt4(&points, &rates);
        assert!(!v.size_stable);
    }

    #[test]
    fn ppt4_overall_band_is_the_weakest_cell() {
        let points = vec![
            ScalabilityPoint {
                processors: 32,
                problem_size: 1_000,
                speedup: 5.0,
            },
            ScalabilityPoint {
                processors: 32,
                problem_size: 172_000,
                speedup: 20.0,
            },
        ];
        let rates = vec![30.0, 48.0];
        let v = ppt4(&points, &rates);
        assert_eq!(v.overall_band, PerfBand::Intermediate);
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn ppt4_mismatched_inputs_rejected() {
        let _ = ppt4(
            &[ScalabilityPoint {
                processors: 8,
                problem_size: 1,
                speedup: 1.0,
            }],
            &[],
        );
    }

    #[test]
    #[should_panic(expected = "need at least one point")]
    fn ppt4_empty_grid_rejected() {
        let _ = ppt4(&[], &[]);
    }

    #[test]
    fn ppt4_single_cell_grid() {
        // One cell: its band is the overall band, and with a single
        // rate per processor count the size-stability check is
        // vacuously true.
        let point = ScalabilityPoint {
            processors: 32,
            problem_size: 10_000,
            speedup: 17.0,
        };
        let v = ppt4(&[point], &[34.0]);
        assert_eq!(v.bands.len(), 1);
        assert_eq!(v.overall_band, PerfBand::High);
        assert!(v.size_stable);
        assert!(!v.any_unacceptable);
    }

    #[test]
    fn ppt4_single_processor_machines_classify_high() {
        // P = 1: classify() hits the high threshold (0.5) before the
        // acceptable threshold's P >= 2 panic, so uniprocessor zoo
        // rows are safe.
        let point = ScalabilityPoint {
            processors: 1,
            problem_size: 1_000,
            speedup: 1.0,
        };
        let v = ppt4(&[point], &[2.0]);
        assert_eq!(v.overall_band, PerfBand::High);
    }

    /// Deterministic permutation schedule: rotate by one, swap ends.
    fn permutations<T: Clone>(xs: &[T]) -> Vec<Vec<T>> {
        let mut rotated = xs.to_vec();
        rotated.rotate_left(1);
        let mut swapped = xs.to_vec();
        if swapped.len() >= 2 {
            let last = swapped.len() - 1;
            swapped.swap(0, last);
        }
        vec![rotated, swapped]
    }

    #[test]
    fn ppt1_verdict_is_permutation_invariant() {
        let speedups = [10.0, 8.0, 5.0, 4.0, 20.0, 2.0, 17.0, 1.0];
        let base = ppt1(&speedups, 32);
        for perm in permutations(&speedups) {
            let v = ppt1(&perm, 32);
            assert_eq!(v.bands, base.bands);
            assert_eq!(v.passes, base.passes);
        }
    }

    #[test]
    fn ppt2_verdict_is_permutation_invariant() {
        let rates = [0.5, 6.9, 8.2, 9.2, 11.2, 31.7, 3.3];
        let base = ppt2(&rates, 2);
        for perm in permutations(&rates) {
            let v = ppt2(&perm, 2);
            assert_eq!(v.passes, base.passes);
            assert_eq!(v.report.instability, base.report.instability);
        }
    }

    #[test]
    fn ppt3_verdict_is_permutation_invariant() {
        let portable = [5.0, 2.0, 8.0, 1.0];
        let best = [10.0, 10.0, 8.0, 9.0];
        let base = ppt3(&portable, &best);
        // Permute the *pairs* together.
        let pairs: Vec<(f64, f64)> = portable.iter().copied().zip(best).collect();
        for perm in permutations(&pairs) {
            let (p, b): (Vec<f64>, Vec<f64>) = perm.into_iter().unzip();
            let v = ppt3(&p, &b);
            assert_eq!(v.passes, base.passes);
            assert_eq!(v.recovered, base.recovered);
        }
    }

    #[test]
    fn ppt4_aggregates_are_permutation_invariant() {
        let points = [
            ScalabilityPoint {
                processors: 32,
                problem_size: 10_000,
                speedup: 17.0,
            },
            ScalabilityPoint {
                processors: 32,
                problem_size: 172_000,
                speedup: 20.0,
            },
            ScalabilityPoint {
                processors: 8,
                problem_size: 10_000,
                speedup: 2.0,
            },
        ];
        let rates = [34.0, 48.0, 20.0];
        let base = ppt4(&points, &rates);
        let cells: Vec<(ScalabilityPoint, f64)> = points.iter().copied().zip(rates).collect();
        for perm in permutations(&cells) {
            let (p, r): (Vec<ScalabilityPoint>, Vec<f64>) = perm.into_iter().unzip();
            let v = ppt4(&p, &r);
            // Per-cell bands follow input order; the aggregates must
            // not.
            assert_eq!(v.any_unacceptable, base.any_unacceptable);
            assert_eq!(v.size_stable, base.size_stable);
            assert_eq!(v.overall_band, base.overall_band);
        }
    }

    #[test]
    fn verdicts_are_deterministic_across_calls() {
        let speedups = [10.0, 8.0, 5.0];
        let rates = [6.9, 8.2, 9.2];
        assert_eq!(ppt1(&speedups, 32), ppt1(&speedups, 32));
        assert_eq!(ppt2(&rates, 1), ppt2(&rates, 1));
        assert_eq!(ppt3(&rates, &rates), ppt3(&rates, &rates));
    }

    #[test]
    fn ppt3_recovery_threshold() {
        // 3 of 4 codes recover half the tuned rate: passes.
        let v = ppt3(&[5.0, 5.0, 9.0, 1.0], &[10.0, 10.0, 9.0, 10.0]);
        assert!(v.passes);
        assert_eq!(v.recovered, 3);
        assert_eq!(v.ratios[2], 1.0, "ratios clamp at 1");
        // 1 of 4: fails.
        let v = ppt3(&[1.0, 1.0, 9.0, 1.0], &[10.0, 10.0, 9.0, 10.0]);
        assert!(!v.passes);
    }

    #[test]
    #[should_panic(expected = "need at least one code")]
    fn ppt3_empty_rejected() {
        let _ = ppt3(&[], &[]);
    }

    #[test]
    fn ppt5_commodity_machines_pass_custom_ones_fail() {
        // A workstation: all commodity, nothing calibrated.
        let workstation = ppt5(&ModelComplexity {
            calibrated_parameters: 2,
            custom_mechanisms: 0,
            commodity_parts_pct: 100,
        });
        assert!(workstation.passes);
        // A combining-network machine: the classic objection.
        let ultra = ppt5(&ModelComplexity {
            calibrated_parameters: 6,
            custom_mechanisms: 5,
            commodity_parts_pct: 35,
        });
        assert!(!ultra.passes);
        assert!(workstation.score > ultra.score);
    }

    #[test]
    fn summary_counts_and_scores() {
        let summary = PptSummary {
            ppt1: ppt1(&[20.0, 10.0, 5.0, 1.0], 32),
            ppt2: ppt2(&[6.9, 8.2, 9.2, 11.2], 0),
            ppt3: ppt3(&[5.0, 9.0], &[10.0, 9.0]),
            ppt4: ppt4(
                &[ScalabilityPoint {
                    processors: 32,
                    problem_size: 10_000,
                    speedup: 17.0,
                }],
                &[34.0],
            ),
            ppt5: ppt5(&ModelComplexity {
                calibrated_parameters: 2,
                custom_mechanisms: 0,
                commodity_parts_pct: 100,
            }),
        };
        assert_eq!(summary.passed(), 5);
        let score = summary.efficiency_score();
        assert!(score > 0.0 && score <= 1.0);
        // Deterministic.
        assert_eq!(score, summary.clone().efficiency_score());
    }
}
