//! The Practical Parallelism Tests.
//!
//! PPT1 (Delivered Performance), PPT2 (Stable Performance), PPT3
//! (Portability/Programmability — evaluated through restructuring
//! efficiency, Table 6), and PPT4 (Code and Architecture Scalability).
//! PPT5 (reimplementability) is a design property the paper defers,
//! as do we.

use crate::bands::{classify, BandCount, PerfBand};
use crate::stability::{stability, StabilityReport, STABLE_INSTABILITY_BOUND};

/// PPT1: "The parallel system delivers performance, as measured in
/// speedup or computational rate, for a useful set of codes." The
/// paper passes a machine whose ensemble is *on average acceptable* —
/// delivering at least intermediate parallel performance.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt1Verdict {
    /// Band census of the ensemble.
    pub bands: BandCount,
    /// Whether the machine passes (no majority of unacceptables, and
    /// at least one non-unacceptable code).
    pub passes: bool,
}

/// Evaluates PPT1 over per-code speedups.
#[must_use]
pub fn ppt1(speedups: &[f64], processors: usize) -> Ppt1Verdict {
    let bands = BandCount::of_speedups(speedups, processors);
    let acceptable = bands.high + bands.intermediate;
    Ppt1Verdict {
        passes: acceptable > bands.unacceptable && acceptable > 0,
        bands,
    }
}

/// PPT2: "The performance demonstrated in Test 1 is within a specified
/// stability range as the computations vary."
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt2Verdict {
    /// The stability report at the given exclusion count.
    pub report: StabilityReport,
    /// Exclusions used.
    pub exceptions: usize,
    /// Whether the machine reaches workstation-level stability
    /// (In ≤ 5) with those exclusions.
    pub passes: bool,
}

/// Evaluates PPT2 over per-code computational rates with `e` allowed
/// exceptions.
#[must_use]
pub fn ppt2(rates: &[f64], e: usize) -> Ppt2Verdict {
    let report = stability(rates, e);
    Ppt2Verdict {
        passes: report.instability <= STABLE_INSTABILITY_BOUND,
        exceptions: e,
        report,
    }
}

/// One point of a PPT4 scalability study: a (processors, problem
/// size) cell with its speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// Processor count.
    pub processors: usize,
    /// Problem size N.
    pub problem_size: usize,
    /// Speedup over the serial version.
    pub speedup: f64,
}

/// PPT4 verdict over a (P, N) grid: the band reached in every cell,
/// and the acceptability criterion of §4.3 — High/Intermediate
/// efficiency plus a size-stability range of
/// `.5 < St(P, N, 1, 0) ≤ 1` as N varies at fixed P.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt4Verdict {
    /// Band of each grid point, in input order.
    pub bands: Vec<(ScalabilityPoint, PerfBand)>,
    /// Whether any point fell in the unacceptable band.
    pub any_unacceptable: bool,
    /// Whether performance is size-stable (per-processor-count rate
    /// variation within 2× across problem sizes).
    pub size_stable: bool,
    /// Scalable with at least this band everywhere.
    pub overall_band: PerfBand,
}

/// Evaluates PPT4 over scalability measurements. `rates` gives the
/// computational rate (e.g. MFLOPS) of each point for the
/// size-stability check; it must parallel `points`.
///
/// # Panics
///
/// Panics if the two slices differ in length or are empty.
#[must_use]
pub fn ppt4(points: &[ScalabilityPoint], rates: &[f64]) -> Ppt4Verdict {
    assert_eq!(points.len(), rates.len(), "points and rates must pair up");
    assert!(!points.is_empty(), "need at least one point");
    let bands: Vec<(ScalabilityPoint, PerfBand)> = points
        .iter()
        .map(|&pt| (pt, classify(pt.speedup, pt.processors)))
        .collect();
    let any_unacceptable = bands.iter().any(|(_, b)| *b == PerfBand::Unacceptable);
    // Size stability: at each processor count, min/max rate over N
    // must stay above 0.5 (instability of 2, the workstation
    // data-size-variation level the paper cites).
    let mut size_stable = true;
    let mut procs: Vec<usize> = points.iter().map(|p| p.processors).collect();
    procs.sort_unstable();
    procs.dedup();
    for p in procs {
        let rs: Vec<f64> = points
            .iter()
            .zip(rates)
            .filter(|(pt, _)| pt.processors == p)
            .map(|(_, &r)| r)
            .collect();
        if rs.len() >= 2 {
            let min = rs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = rs.iter().cloned().fold(0.0, f64::max);
            if min / max <= 0.5 {
                size_stable = false;
            }
        }
    }
    let overall_band = bands.iter().map(|(_, b)| *b).min().expect("non-empty grid");
    Ppt4Verdict {
        bands,
        any_unacceptable,
        size_stable,
        overall_band,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppt1_passes_intermediate_ensemble() {
        // Mostly intermediate speedups on 32 processors.
        let speedups = [10.0, 8.0, 5.0, 4.0, 20.0, 2.0];
        let v = ppt1(&speedups, 32);
        assert!(v.passes);
        assert_eq!(v.bands.high, 1);
        assert_eq!(v.bands.unacceptable, 1);
    }

    #[test]
    fn ppt1_fails_mostly_unacceptable() {
        let speedups = [1.0, 2.0, 1.5, 20.0];
        let v = ppt1(&speedups, 32);
        assert!(!v.passes);
    }

    #[test]
    fn ppt2_with_exceptions() {
        // SPICE-like poor performer plus a star performer.
        let rates = [0.5, 6.9, 8.2, 9.2, 11.2, 31.7];
        assert!(!ppt2(&rates, 0).passes, "raw ensemble unstable");
        let with_two = ppt2(&rates, 2);
        assert!(with_two.passes, "two exceptions suffice here");
        assert_eq!(with_two.exceptions, 2);
    }

    #[test]
    fn ppt4_grid_bands_and_size_stability() {
        let points = vec![
            ScalabilityPoint {
                processors: 32,
                problem_size: 10_000,
                speedup: 17.0,
            },
            ScalabilityPoint {
                processors: 32,
                problem_size: 172_000,
                speedup: 20.0,
            },
            ScalabilityPoint {
                processors: 8,
                problem_size: 10_000,
                speedup: 5.0,
            },
        ];
        let rates = vec![34.0, 48.0, 20.0];
        let v = ppt4(&points, &rates);
        assert!(!v.any_unacceptable);
        assert_eq!(v.bands[0].1, PerfBand::High);
        assert_eq!(v.overall_band, PerfBand::High);
        assert!(v.size_stable, "34/48 = 0.71 > 0.5");
    }

    #[test]
    fn ppt4_flags_size_instability() {
        let points = vec![
            ScalabilityPoint {
                processors: 32,
                problem_size: 1_000,
                speedup: 16.5,
            },
            ScalabilityPoint {
                processors: 32,
                problem_size: 172_000,
                speedup: 20.0,
            },
        ];
        let rates = vec![10.0, 48.0]; // 10/48 < 0.5
        let v = ppt4(&points, &rates);
        assert!(!v.size_stable);
    }

    #[test]
    fn ppt4_overall_band_is_the_weakest_cell() {
        let points = vec![
            ScalabilityPoint {
                processors: 32,
                problem_size: 1_000,
                speedup: 5.0,
            },
            ScalabilityPoint {
                processors: 32,
                problem_size: 172_000,
                speedup: 20.0,
            },
        ];
        let rates = vec![30.0, 48.0];
        let v = ppt4(&points, &rates);
        assert_eq!(v.overall_band, PerfBand::Intermediate);
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn ppt4_mismatched_inputs_rejected() {
        let _ = ppt4(
            &[ScalabilityPoint {
                processors: 8,
                problem_size: 1,
                speedup: 1.0,
            }],
            &[],
        );
    }
}
