//! `cedar-metrics` — the paper's methodology for judging parallel
//! systems (§4.3).
//!
//! The paper proposes five Practical Parallelism Tests (PPTs) built on
//! a small set of measures:
//!
//! * speedup and efficiency, with **performance levels**: *high* means
//!   speedup ≥ P/2 (efficiency ≥ 1/2), *acceptable/intermediate* means
//!   speedup ≥ P/(2·log₂P), anything lower is *unacceptable*
//!   ([`bands`]);
//! * **stability** St(P, Nᵢ, K, e) = min performance / max performance
//!   over an ensemble of K codes with e outliers excluded, and its
//!   inverse **instability**; a system is *stable* if St > 1/5, the
//!   level workstations have historically delivered on the Perfect
//!   codes ([`mod@stability`]);
//! * the PPT evaluators themselves ([`ppt`]).
//!
//! This crate is deliberately free of simulator dependencies: it
//! consumes plain performance numbers, so the same methodology applies
//! to the Cedar model, the analytic baselines, or anything else.
//!
//! # Examples
//!
//! ```
//! use cedar_metrics::bands::{classify, PerfBand};
//!
//! // 20x speedup on 32 processors: 20 >= 16 = P/2 -> high.
//! assert_eq!(classify(20.0, 32), PerfBand::High);
//! // 5x speedup on 32 processors: 3.2 <= 5 < 16 -> intermediate.
//! assert_eq!(classify(5.0, 32), PerfBand::Intermediate);
//! ```

#![warn(missing_docs)]

pub mod bands;
pub mod fppp;
pub mod ppt;
pub mod stability;

pub use bands::{classify, efficiency, speedup, BandCount, PerfBand};
pub use fppp::{fppp_check, FpppVerdict, MachineEnsemble};
pub use ppt::{
    ModelComplexity, Ppt1Verdict, Ppt2Verdict, Ppt3Verdict, Ppt4Verdict, Ppt5Verdict, PptSummary,
    ScalabilityPoint,
};
pub use stability::{instability, stability, StabilityReport};
