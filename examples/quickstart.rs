//! Quickstart: build the Cedar machine, run a kernel on it, touch the
//! programming model, and read the performance monitor.
//!
//! Run with `cargo run --release --example quickstart`.

use cedar::core::{CedarParams, CedarSystem};
use cedar::kernels::rank_update::{self, RankUpdateVersion};
use cedar::mem::sync::SyncInstruction;
use cedar::runtime::loops::{xdoall, Schedule, Work};
use cedar::sim::time::Cycle;

fn main() {
    // 1. The machine, exactly as the paper describes it: 4 clusters x
    //    8 vector CEs, two omega networks, interleaved global memory.
    let mut cedar = CedarSystem::new(CedarParams::paper());
    println!(
        "Cedar: {} CEs, {:.0} MFLOPS peak, {:.0} MFLOPS effective peak",
        cedar.params().total_ces(),
        cedar.params().peak_mflops(),
        cedar.params().effective_peak_mflops()
    );

    // 2. Run Table 1's rank-64 update in all three access modes.
    println!("\nrank-64 update (n = 1024) on 4 clusters:");
    for version in RankUpdateVersion::ALL {
        let report = rank_update::simulate(&mut cedar, 1024, version, 4);
        println!("  {:12} {:6.1} MFLOPS", version.label(), report.mflops);
    }

    // 3. The CEDAR FORTRAN programming model: a self-scheduled XDOALL
    //    computing a real sum while simulated time is accounted.
    let mut sum = 0u64;
    let report = xdoall(&mut cedar, 1024, Schedule::SelfScheduled, |i| {
        sum += i * i;
        Work::new(500.0, 2.0)
    });
    println!(
        "\nXDOALL over 1024 iterations: sum of squares = {sum}, \
         makespan {:.2} ms, imbalance {:.2}",
        report.makespan_seconds() * 1e3,
        report.imbalance()
    );

    // 4. Memory-based synchronization: a ticket counter served by the
    //    memory module's synchronization processor.
    let t0 = cedar
        .global_mut()
        .sync_op(0, SyncInstruction::fetch_and_add(1));
    let t1 = cedar
        .global_mut()
        .sync_op(0, SyncInstruction::fetch_and_add(1));
    println!(
        "\nTest-And-Operate tickets: {} then {}",
        t0.old_value, t1.old_value
    );

    // 5. The performance monitor (the external measurement hardware).
    let signal = cedar.monitor_mut().signal("example.latency");
    cedar.monitor_mut().start();
    for (i, sample) in [13u32, 14, 13, 15, 13].into_iter().enumerate() {
        cedar
            .monitor_mut()
            .post(signal, Cycle::new(i as u64 * 10), sample);
    }
    cedar.monitor_mut().stop();
    let stats = cedar.monitor().stats(signal).expect("signal exists");
    println!(
        "monitor saw {} events, mean latency {:.1} cycles",
        stats.count(),
        stats.mean()
    );
}
