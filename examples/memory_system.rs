//! A tour of the memory system: watch contention build on the omega
//! networks as processors join, exactly the Table 2 measurement, and
//! see the cache/cluster/global cost hierarchy the programmer works
//! against.
//!
//! Run with `cargo run --release --example memory_system`.

use cedar::core::costmodel::AccessMode;
use cedar::core::{CedarParams, CedarSystem};
use cedar::mem::address::PAddr;
use cedar::mem::cache::{CacheConfig, SharedCache};
use cedar::net::fabric::PrefetchTraffic;

fn main() {
    let mut cedar = CedarSystem::new(CedarParams::paper());

    println!("Global-memory contention (prefetched 32-word blocks):");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "CEs", "latency", "interarrival", "words/cyc"
    );
    for ces in [1usize, 8, 16, 32] {
        let profile = cedar.measure_memory(PrefetchTraffic::compiler_default(8), ces);
        println!(
            "{ces:>6} {:>12.1} {:>14.2} {:>12.2}",
            profile.latency, profile.interarrival, profile.words_per_cycle
        );
    }
    println!("(paper: minimal latency 8 cycles, growing to 14-18 at 32 CEs)\n");

    println!("Cost per delivered word by operand home (8 CEs active):");
    for (label, mode) in [
        ("cluster cache", AccessMode::ClusterCache),
        ("cluster memory", AccessMode::ClusterMemory),
        (
            "global + prefetch",
            AccessMode::GlobalPrefetch(PrefetchTraffic::compiler_default(8)),
        ),
        ("global, no prefetch", AccessMode::GlobalNoPrefetch),
    ] {
        let cpw = cedar.cycles_per_word(mode, 8);
        println!("  {label:20} {cpw:5.2} cycles/word");
    }

    // The write-back shared cache at work: stream, reuse, evict.
    let mut cache = SharedCache::new(CacheConfig::cedar());
    for pass in 0..2 {
        for line in 0..1024u64 {
            cache.access(PAddr::in_cluster(line * 32), pass == 1);
        }
    }
    println!(
        "\nshared cache after two 32 KB passes: hit rate {:.0}%, {} writebacks pending-capable lines",
        cache.hit_rate() * 100.0,
        cache.writeback_count()
    );
    // Blow the 512 KB capacity and watch reuse vanish.
    for line in 0..32_768u64 {
        cache.access(PAddr::in_cluster(line * 32), false);
    }
    let before = cache.hit_count();
    for line in 0..1024u64 {
        cache.access(PAddr::in_cluster(line * 32), false);
    }
    println!(
        "after streaming 1 MB (twice the cache), re-touching the first 32 KB hits {} of 1024 lines",
        cache.hit_count() - before
    );
}
