//! The Perfect Benchmarks study end-to-end: calibrate the code
//! profiles against the published Table 3, then interrogate the
//! forward model — which codes suffer without Cedar synchronization,
//! which without prefetch, and what the hand optimizations buy.
//!
//! Run with `cargo run --release --example perfect_study`.

use cedar::core::{CedarParams, CedarSystem};
use cedar::metrics::stability::{exceptions_to_stability, instability};
use cedar::perfect::model::ExecutionModel;
use cedar::perfect::transformations::Transformation;
use cedar::perfect::versions::Version;

fn main() {
    let mut cedar = CedarSystem::new(CedarParams::paper());
    let model = ExecutionModel::calibrate(&mut cedar);

    println!("Perfect Benchmarks on the modelled Cedar machine\n");
    println!(
        "{:8} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "code", "auto (s)", "manual", "sync hurt", "pref hurt", "MFLOPS"
    );
    for code in model.codes() {
        let auto = model.time(code, Version::Automatable);
        let manual = model.time(code, Version::Manual);
        let sync_pct = (model.time(code, Version::NoSync) / auto - 1.0) * 100.0;
        let pref_pct = (model.time(code, Version::NoPrefetch) / model.time(code, Version::NoSync)
            - 1.0)
            * 100.0;
        println!(
            "{:8} {:>9.0} {:>9.0} {:>10.0}% {:>10.0}% {:>9.1}",
            code.name,
            auto,
            manual,
            sync_pct,
            pref_pct,
            model.mflops(code, Version::Automatable)
        );
    }

    // Which mechanisms matter most, per the profiles.
    let most_sync = model
        .codes()
        .iter()
        .max_by(|a, b| a.sched_events.partial_cmp(&b.sched_events).unwrap())
        .expect("nonempty");
    let most_pref = model
        .codes()
        .iter()
        .max_by(|a, b| {
            a.prefetched_seconds
                .partial_cmp(&b.prefetched_seconds)
                .unwrap()
        })
        .expect("nonempty");
    println!(
        "\nfinest-grained code: {} ({:.0}k scheduling events)",
        most_sync.name,
        most_sync.sched_events / 1e3
    );
    println!(
        "heaviest prefetch user: {} ({:.1} s of prefetched fetching)",
        most_pref.name, most_pref.prefetched_seconds
    );

    // The restructuring technology behind the automatable column.
    println!("\nthe automatable transformations (applied by hand, §3.3):");
    for t in Transformation::ALL {
        println!("  - {t}: relies on {}", t.machine_hook());
    }

    // The stability picture (Table 5's Cedar row).
    let rates = model.cedar_mflops_ensemble();
    println!(
        "\nCedar MFLOPS ensemble: In(13,0) = {:.1}, In(13,2) = {:.1}; \
         {} exceptions reach workstation stability",
        instability(&rates, 0),
        instability(&rates, 2),
        exceptions_to_stability(&rates).map_or("no".to_owned(), |e| e.to_string())
    );
}
