//! The PPT4 scalability study as a user would run it: solve a real
//! Poisson system with the conjugate-gradient kernel (verifying the
//! numerics), then sweep processors and problem sizes on the simulated
//! machine and classify each point into the paper's performance bands.
//!
//! Run with `cargo run --release --example cg_scaling`.

use cedar::core::{CedarParams, CedarSystem};
use cedar::kernels::cg::{self, Penta};
use cedar::metrics::bands::{classify, PerfBand};

fn main() {
    // Real numerics first: solve A x = b on a 40x40 grid.
    let a = Penta::laplacian(40);
    let n = a.n();
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
    let mut b = vec![0.0; n];
    a.matvec(&x_true, &mut b);
    let sol = cg::solve(&a, &b, 1e-10, 10 * n);
    let err: f64 = sol
        .x
        .iter()
        .zip(&x_true)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    println!(
        "CG solved the {n}-unknown Poisson system in {} iterations \
         (residual {:.2e}, error vs manufactured solution {:.2e})\n",
        sol.iterations, sol.residual, err
    );

    // Then the machine study: MFLOPS and band per (P, N).
    let mut cedar = CedarSystem::new(CedarParams::paper());
    let sizes = [1_000usize, 4_000, 10_000, 16_000, 48_000, 172_000];
    println!("CG iteration performance on simulated Cedar (MFLOPS / band):");
    print!("{:>5}", "P\\N");
    for n in sizes {
        print!(" {n:>9}");
    }
    println!();
    for p in [2usize, 4, 8, 16, 32] {
        print!("{p:>5}");
        for n in sizes {
            let report = cg::simulate_iteration(&mut cedar, n, p);
            let speedup = cg::speedup(&mut cedar, n, p);
            let tag = match classify(speedup, p) {
                PerfBand::High => 'H',
                PerfBand::Intermediate => 'I',
                PerfBand::Unacceptable => 'U',
            };
            print!(" {:>7.1}/{tag}", report.mflops);
        }
        println!();
    }
    println!(
        "\nThe paper: 34-48 MFLOPS at 32 CEs for N in [10K, 172K], with the\n\
         high-performance band starting between N = 10K and 16K."
    );
}
