//! The saturation knee of the serving tier.
//!
//! Starts an in-process cedar-serve server, then pushes closed-loop
//! load through it at increasing client counts and prints offered load
//! against p50/p99 latency — the knee where queueing delay takes over
//! from service time, the serving-tier analogue of the paper's
//! hot-spot saturation curves.
//!
//! ```text
//! cargo run --release --example service_study
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use cedar::serve::config::ServeConfig;
use cedar::serve::server::start;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

fn main() {
    let handle = start(ServeConfig {
        // A deliberately narrow server so the knee appears at small
        // client counts: two workers, small batches.
        workers: 2,
        batch_max: 4,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    println!("serving on {addr}\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>10}",
        "clients", "requests", "rps", "p50_us", "p99_us"
    );

    let mut spec_idx = 0u64;
    for clients in [1usize, 2, 4, 8, 16] {
        let per_client = 12;
        let base = spec_idx;
        spec_idx += (clients * per_client) as u64;
        let started = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let stream = TcpStream::connect(&addr).expect("connect");
                        stream.set_nodelay(true).ok();
                        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                        let mut writer = stream;
                        let mut times = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            // Unique fraction per request: measure
                            // execution, not the dedup path.
                            let ppm = 1 + (base + (c * per_client + i) as u64) % 900_000;
                            let line = format!(
                                "{{\"op\":\"run\",\"job\":{{\"type\":\"hotspot\",\
                                 \"fraction\":{},\"ces\":2,\"blocks\":1}}}}\n",
                                ppm as f64 / 1e6
                            );
                            let sent = Instant::now();
                            writer.write_all(line.as_bytes()).expect("send");
                            let mut reply = String::new();
                            reader.read_line(&mut reply).expect("recv");
                            assert!(
                                reply.contains("\"status\":\"ok\"")
                                    || reply.contains("\"status\":\"degraded\""),
                                "unexpected reply: {reply}"
                            );
                            times.push(sent.elapsed().as_micros() as u64);
                        }
                        times
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        latencies.sort_unstable();
        println!(
            "{:>8} {:>10} {:>12.1} {:>10} {:>10}",
            clients,
            latencies.len(),
            latencies.len() as f64 / elapsed,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        );
    }

    println!("\nqueue depth and latency histograms live at http://{addr}/metrics");
    handle.shutdown();
    println!("drained cleanly");
}
