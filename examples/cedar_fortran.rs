//! A whole application written with the CEDAR FORTRAN program layer,
//! then optimized step by step the way §4.2 optimizes the Perfect
//! codes: global operands → explicit distribution into cluster
//! memory, multicluster barriers → per-cluster barriers, formatted →
//! unformatted I/O.
//!
//! Run with `cargo run --release --example cedar_fortran`.

use cedar::core::{CedarParams, CedarSystem};
use cedar::runtime::io::RecordFormat;
use cedar::runtime::loops::Schedule;
use cedar::runtime::program::{execute, OperandHome, Program};

/// A synthetic ARC2D-like sweep: read the grid, relax it, write the
/// result — parameterized by the three optimization choices.
fn application(home: OperandHome, cheap_barriers: bool, unformatted: bool) -> Program {
    let steps = 200;
    let mut p = Program::new().serial(50_000, 0.0);
    if matches!(home, OperandHome::ClusterCache | OperandHome::ClusterMemory) {
        // The optimized versions pay for explicit distribution.
        p = p.move_to_cluster(262_144);
    }
    for _ in 0..steps {
        p = p.xdoall(8_192, Schedule::Static, 128.0, 256.0, home);
        p = if cheap_barriers {
            p.cluster_barrier()
        } else {
            p.multicluster_barrier()
        };
    }
    if matches!(home, OperandHome::ClusterCache | OperandHome::ClusterMemory) {
        p = p.move_to_global(262_144);
    }
    let format = if unformatted {
        RecordFormat::Unformatted
    } else {
        RecordFormat::Formatted
    };
    p.io(format, 100_000)
}

fn main() {
    let mut cedar = CedarSystem::new(CedarParams::paper());
    let versions: [(&str, OperandHome, bool, bool); 4] = [
        (
            "naive (global, heavyweight)",
            OperandHome::GlobalUnprefetched,
            false,
            false,
        ),
        (
            "+ compiler prefetch",
            OperandHome::GlobalPrefetched,
            false,
            false,
        ),
        (
            "+ data distribution & cheap barriers",
            OperandHome::ClusterCache,
            true,
            false,
        ),
        ("+ unformatted I/O", OperandHome::ClusterCache, true, true),
    ];
    println!("Optimizing a CEDAR FORTRAN application, one transformation at a time:\n");
    let mut baseline = None;
    for (label, home, cheap, unf) in versions {
        let report = execute(&mut cedar, &application(home, cheap, unf));
        let base = *baseline.get_or_insert(report.seconds);
        println!(
            "{label:40} {:8.2} s  ({:4.1}x, {:6.1} MFLOPS)",
            report.seconds,
            base / report.seconds,
            report.mflops
        );
        println!(
            "  breakdown: parallel {:.0}% | sched {:.0}% | moves {:.0}% | barriers {:.0}% | io {:.0}% | serial {:.0}%",
            report.breakdown.parallel / report.cycles * 100.0,
            report.breakdown.scheduling / report.cycles * 100.0,
            report.breakdown.movement / report.cycles * 100.0,
            report.breakdown.barriers / report.cycles * 100.0,
            report.breakdown.io / report.cycles * 100.0,
            report.breakdown.serial / report.cycles * 100.0,
        );
    }
    println!("\nEach row is one of §4.2's hand-optimization moves applied to the");
    println!("same program structure — the ARC2D/FLO52/BDNA playbook in miniature.");
}
