//! The software-coherence story: globally shared data with cluster
//! copies kept consistent by the runtime, exactly as §2's one-sentence
//! design decision ("coherence … is maintained in software") plays out
//! for a program.
//!
//! Run with `cargo run --release --example shared_memory`.

use cedar::core::{CedarParams, CedarSystem};
use cedar::runtime::shared::SharedArray;
use cedar::runtime::task::XylemScheduler;

fn main() {
    let mut cedar = CedarSystem::new(CedarParams::paper());

    // A shared table of 256 words, written by cluster 0, then read and
    // updated round-robin by all four clusters.
    let mut table = SharedArray::new(&mut cedar, 0, 0, 256);
    for i in 0..256 {
        table.write(&mut cedar, 0, i, i * i);
    }
    let after_init = table.movement_cycles();
    println!(
        "cluster 0 initialized the table: {:.0} cycles of coherence movement",
        after_init
    );

    // Good behaviour: each cluster works on its own quarter.
    let mut partitioned = SharedArray::new(&mut cedar, 4096, 4096, 256);
    for c in 0..4usize {
        for i in (c as u64 * 64)..((c as u64 + 1) * 64) {
            partitioned.write(&mut cedar, c, i, i);
        }
    }
    println!(
        "partitioned updates: {:.0} cycles of movement ({} fetches, {} write-backs)",
        partitioned.movement_cycles(),
        partitioned.directory().fetch_count(),
        partitioned.directory().writeback_count(),
    );

    // Bad behaviour: four clusters ping-pong ownership of one word.
    let mut pingpong = SharedArray::new(&mut cedar, 8192, 8192, 256);
    for round in 0..16u64 {
        let cluster = (round % 4) as usize;
        let old = pingpong.read(&mut cedar, cluster, 0);
        pingpong.write(&mut cedar, cluster, 0, old + 1);
    }
    println!(
        "ping-pong counter: {:.0} cycles of movement ({} fetches, {} write-backs) for 16 increments",
        pingpong.movement_cycles(),
        pingpong.directory().fetch_count(),
        pingpong.directory().writeback_count(),
    );
    println!(
        "  -> which is why counters live in global memory and use the sync processors instead\n"
    );

    // Verify the data really is coherent across clusters.
    assert_eq!(pingpong.read(&mut cedar, 3, 0), 16);
    table.flush(&mut cedar);
    assert_eq!(cedar.global_mut().read_word(255), 255 * 255);
    println!("all cross-cluster reads observed the latest writes (verified)");

    // And the Xylem scheduler running cluster tasks over the machine,
    // event-driven.
    let mut xylem = XylemScheduler::new(4);
    for (i, work) in [3.0e6, 1.0e6, 2.5e6, 0.5e6, 4.0e6, 1.5e6]
        .iter()
        .enumerate()
    {
        xylem.spawn(&format!("phase-{i}"), *work);
    }
    let makespan = xylem.run_event_driven();
    println!(
        "\nXylem ran 6 cluster tasks (12.5M cycles of work) on 4 clusters in {:.1} ms",
        makespan * 170e-9 * 1e3
    );
}
