//! The §4.3 methodology applied as a library: take three machines'
//! Perfect ensembles and put them through the Practical Parallelism
//! Tests — delivered performance, stability, and scalability bands.
//!
//! Run with `cargo run --release --example judging_machines`.

use cedar::baselines::{cm5::Cm5Model, cray1};
use cedar::core::{CedarParams, CedarSystem};
use cedar::metrics::fppp::{fppp_check, MachineEnsemble};
use cedar::metrics::ppt::{ppt1, ppt2};
use cedar::metrics::stability::exceptions_to_stability;
use cedar::perfect::manual::{fig3_cedar_efficiencies, fig3_width, MACHINE_CES};
use cedar::perfect::model::ExecutionModel;

fn main() {
    let mut cedar = CedarSystem::new(CedarParams::paper());
    let model = ExecutionModel::calibrate(&mut cedar);

    // PPT1 on Cedar's manually optimized codes: does the machine
    // deliver for a useful set of codes?
    let speedups: Vec<f64> = fig3_cedar_efficiencies(&model)
        .iter()
        .map(|p| p.efficiency * fig3_width(p.name) as f64)
        .collect();
    let v1 = ppt1(&speedups, MACHINE_CES);
    println!(
        "PPT1 (Cedar, manual codes): {} high / {} intermediate / {} unacceptable -> {}",
        v1.bands.high,
        v1.bands.intermediate,
        v1.bands.unacceptable,
        if v1.passes { "PASS" } else { "FAIL" }
    );

    // PPT2: stability with a small number of exceptions.
    for (machine, rates) in [
        ("Cedar", model.cedar_mflops_ensemble()),
        ("Cray YMP/8", model.ymp_mflops_ensemble()),
        ("Cray-1", cray1::rates()),
    ] {
        let needed = exceptions_to_stability(&rates);
        let at2 = ppt2(&rates, 2);
        println!(
            "PPT2 ({machine:10}): In(13,2) = {:5.1}; needs {} exceptions -> {}",
            at2.report.instability,
            needed.map_or("-".to_owned(), |e| e.to_string()),
            if needed.is_some_and(|e| e <= 3) {
                "stable with few exceptions"
            } else {
                "unstable"
            }
        );
    }

    // PPT4 snapshot: the CM-5 never reaches the high band on the
    // banded matvec, at any of its machine sizes.
    let cm5 = Cm5Model::paper();
    println!("\nPPT4 (CM-5 banded matvec): band by machine size, N = 256K");
    for p in [32usize, 256, 512] {
        println!(
            "  {p:>4} nodes: bw3 {}, bw11 {}",
            cm5.band(262_144, 3, p),
            cm5.band(262_144, 11, p)
        );
    }
    println!(
        "\nconclusion (paper): for these problems, the CM-5 is scalable with\n\
         intermediate performance; up to 32 processors Cedar is scalable with\n\
         high performance for many problem sizes."
    );

    // The FPPP itself: is 32 slow processors interchangeable with 8
    // fast ones? Compare Cedar's Perfect MFLOPS against the YMP's,
    // asking for delivered performance within the raw clock gap and
    // workstation-level stability at two exceptions.
    let cedar_ensemble = MachineEnsemble::new("Cedar", 170.0, 32, model.cedar_mflops_ensemble());
    let ymp_ensemble = MachineEnsemble::new("YMP/8", 6.0, 8, model.ymp_mflops_ensemble());
    let clock_gap =
        cedar_ensemble.parallelism_clock_product() / ymp_ensemble.parallelism_clock_product();
    let verdict = fppp_check(&cedar_ensemble, &ymp_ensemble, 3, clock_gap);
    println!(
        "\nFPPP: Cedar delivers {:.2}x the YMP's harmonic-mean rate with a {:.2}x\n\
         parallelism-times-clock budget; stability In(13,3) = {:.1} -> {}",
        verdict.delivered_ratio,
        clock_gap,
        verdict.wide_instability,
        if verdict.demonstrated {
            "clock speed and parallelism interchanged (FPPP demonstrated)"
        } else {
            "not demonstrated at this tolerance"
        }
    );
}
