//! Degraded mode: inject a deterministic fault schedule, watch the
//! watchdog turn a silent multicluster-barrier hang into a diagnostic,
//! then run the same round on the healthy machine.
//!
//! ```text
//! cargo run --release --example degraded_mode
//! ```

use cedar::core::{CedarParams, CedarSystem};
use cedar::faults::{CedarError, FaultConfig, FaultPlan, MachineShape, RetryPolicy};
use cedar::runtime::sync::{run_multicluster_round, GlobalBarrier};
use cedar::sim::watchdog::Watchdog;

fn main() {
    // Kill the sync processor on memory module 3 and run a 32-way
    // multicluster barrier whose cell lives there.
    let mut machine = CedarSystem::new(CedarParams::paper());
    let plan = FaultPlan::generate(
        &FaultConfig::dead_sync_processor(42, 3),
        &MachineShape::cedar(),
    )
    .unwrap();
    machine.attach_faults(&plan, RetryPolicy::sync());

    let barrier = GlobalBarrier::new(3, 32);
    let mut dog = Watchdog::new(50_000, "multicluster barrier");
    match run_multicluster_round(&mut machine, &barrier, &mut dog) {
        Err(CedarError::Stalled(report)) => println!("diagnosed: {report}"),
        other => panic!("a dead sync processor must deadlock the barrier: {other:?}"),
    }

    // A lossy-but-alive machine recovers through the robust arrival
    // path: each fetch-and-add is verified by read-back and reissued
    // until it commits.
    let mut lossy = CedarSystem::new(CedarParams::paper());
    let plan =
        FaultPlan::generate(&FaultConfig::degraded(42, 0.40), &MachineShape::cedar()).unwrap();
    lossy.attach_faults(&plan, RetryPolicy::sync());
    let retry = RetryPolicy::sync();
    let mut completions = 0;
    for _ in 0..32 {
        if barrier.arrive_robust(&mut lossy, &retry).unwrap() {
            completions += 1;
        }
    }
    println!(
        "lossy machine completed the round ({completions} completer) despite {} lost sync updates",
        lossy.global().sync_lost_count()
    );

    // And the healthy machine sails through under the same watchdog.
    let mut healthy = CedarSystem::new(CedarParams::paper());
    let mut dog = Watchdog::new(50_000, "multicluster barrier");
    let done = run_multicluster_round(&mut healthy, &barrier, &mut dog).unwrap();
    println!("healthy machine completed the round at cycle {done}");
}
